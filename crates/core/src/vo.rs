//! Virtual Organization management (paper §2.1).
//!
//! Each server manages "a tree-like Virtual Organization structure ...
//! rooted in a list of administrators". Groups are named hierarchically
//! (`A`, `A.1`, `A.2`, ...) and each carries two DN lists — members and
//! admins. The rules implemented here are exactly the paper's:
//!
//! * the root `admins` group is populated statically from the server
//!   configuration on each restart and may create/delete groups at all
//!   levels;
//! * group administrators may add/delete members and manage groups at
//!   lower levels in their branch;
//! * membership is hierarchical *downward*: "group members of higher level
//!   groups are automatically members of lower level groups in the same
//!   branch";
//! * member entries are DN *prefixes*: `/O=doesciencegrid.org/OU=People`
//!   admits every individual under that CA branch.
//!
//! Membership checks sit on the per-request authorization path (every
//! group-based ACL consults them), so the manager keeps an
//! epoch-invalidated cache of *compiled* group records — entries parsed
//! into [`DistinguishedName`] prefixes once at load instead of on every
//! check. Entries are tagged with the `vo.groups` bucket generation;
//! any group write makes every cached record stale on its next lookup,
//! so revocations are visible on the very next check.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use clarens_db::Store;
use clarens_pki::dn::DistinguishedName;
use clarens_wire::{json, Value};

use crate::cache::{CacheStats, Sharded};

/// DB bucket for group records.
pub const VO_BUCKET: &str = "vo.groups";
/// The reserved root group.
pub const ADMINS_GROUP: &str = "admins";

/// A VO group record.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Group {
    /// Member DN (prefix) strings.
    pub members: Vec<String>,
    /// Administrator DN (prefix) strings.
    pub admins: Vec<String>,
}

impl Group {
    fn to_value(&self) -> Value {
        Value::structure([
            (
                "members",
                Value::Array(self.members.iter().cloned().map(Value::from).collect()),
            ),
            (
                "admins",
                Value::Array(self.admins.iter().cloned().map(Value::from).collect()),
            ),
        ])
    }

    fn from_value(value: &Value) -> Option<Group> {
        let list = |k: &str| -> Option<Vec<String>> {
            Some(
                value
                    .get(k)?
                    .as_array()?
                    .iter()
                    .filter_map(|v| v.as_str().map(str::to_owned))
                    .collect(),
            )
        };
        Some(Group {
            members: list("members")?,
            admins: list("admins")?,
        })
    }
}

/// VO errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VoError {
    /// Actor lacks the privilege for the operation.
    NotAuthorized(String),
    /// Group name invalid or parent missing.
    BadGroup(String),
    /// Group already exists / does not exist.
    Conflict(String),
}

impl std::fmt::Display for VoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VoError::NotAuthorized(m) => write!(f, "not authorized: {m}"),
            VoError::BadGroup(m) => write!(f, "bad group: {m}"),
            VoError::Conflict(m) => write!(f, "conflict: {m}"),
        }
    }
}

impl std::error::Error for VoError {}

/// Does `dn` match any of the (prefix) entries?
fn dn_matches_any(dn: &DistinguishedName, entries: &[String]) -> bool {
    entries.iter().any(|entry| {
        DistinguishedName::parse(entry)
            .map(|prefix| dn.has_prefix(&prefix))
            .unwrap_or(false)
    })
}

/// A group with its DN-prefix entries parsed once at load. Unparseable
/// entries are dropped, which matches [`dn_matches_any`]: an entry that
/// fails to parse can never match anything.
struct CompiledGroup {
    members: Vec<DistinguishedName>,
    admins: Vec<DistinguishedName>,
}

impl CompiledGroup {
    fn compile(group: &Group) -> CompiledGroup {
        let parse = |entries: &[String]| {
            entries
                .iter()
                .filter_map(|e| DistinguishedName::parse(e).ok())
                .collect()
        };
        CompiledGroup {
            members: parse(&group.members),
            admins: parse(&group.admins),
        }
    }
}

fn compiled_matches(dn: &DistinguishedName, prefixes: &[DistinguishedName]) -> bool {
    prefixes.iter().any(|prefix| dn.has_prefix(prefix))
}

/// A group name followed by its ancestors, nearest first:
/// `A.1.x` → `A.1.x`, `A.1`, `A`. Borrows from the input — no per-check
/// allocation.
fn self_and_ancestors(name: &str) -> impl Iterator<Item = &str> {
    std::iter::successors(Some(name), |n| n.rfind('.').map(|pos| &n[..pos]))
}

fn valid_group_name(name: &str) -> bool {
    !name.is_empty()
        && name != ADMINS_GROUP
        && name.split('.').all(|segment| {
            !segment.is_empty()
                && segment
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        })
}

/// The VO manager.
pub struct VoManager {
    store: Arc<Store>,
    caching: bool,
    /// Generation handle of [`VO_BUCKET`]; every group write bumps it.
    generation: Arc<AtomicU64>,
    /// Compiled group records tagged with the bucket generation. The inner
    /// `Option` caches "group does not exist" too.
    compiled: Sharded<String, Option<Arc<CompiledGroup>>>,
}

impl VoManager {
    /// Create the manager and (re)populate the root `admins` group from the
    /// configured DNs — "populated statically ... on each server restart".
    pub fn new(store: Arc<Store>, admin_dns: &[String]) -> Self {
        VoManager::with_caching(store, admin_dns, true)
    }

    /// Like [`VoManager::new`], but with the compiled-group cache
    /// explicitly enabled or disabled (benchmarks compare the two).
    pub fn with_caching(store: Arc<Store>, admin_dns: &[String], caching: bool) -> Self {
        let generation = store.generation_handle(VO_BUCKET);
        let manager = VoManager {
            store,
            caching,
            generation,
            compiled: Sharded::new(),
        };
        let root = Group {
            members: admin_dns.to_vec(),
            admins: admin_dns.to_vec(),
        };
        manager.save(ADMINS_GROUP, &root);
        manager
    }

    /// Hit/miss counters of the compiled-group cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.compiled.stats()
    }

    /// Load a compiled group through the cache. `generation` must have
    /// been read from the bucket *before* this call so a concurrent write
    /// can only cause a spurious miss, never a stale hit.
    fn compiled(&self, name: &str, generation: u64) -> Option<Arc<CompiledGroup>> {
        if let Some(cached) = self.compiled.get(name, generation) {
            return cached;
        }
        let loaded = self
            .group(name)
            .map(|group| Arc::new(CompiledGroup::compile(&group)));
        self.compiled
            .insert(name.to_owned(), generation, loaded.clone());
        loaded
    }

    fn save(&self, name: &str, group: &Group) {
        let _ = self.store.put(
            VO_BUCKET,
            name,
            json::to_string(&group.to_value()).into_bytes(),
        );
    }

    /// Load a group record.
    pub fn group(&self, name: &str) -> Option<Group> {
        let bytes = self.store.get(VO_BUCKET, name)?;
        let text = String::from_utf8(bytes).ok()?;
        Group::from_value(&json::parse(&text).ok()?)
    }

    /// All group names (sorted).
    pub fn list_groups(&self) -> Vec<String> {
        self.store.keys(VO_BUCKET)
    }

    /// Is `dn` a site administrator (member of the root `admins` group)?
    pub fn is_site_admin(&self, dn: &DistinguishedName) -> bool {
        if self.caching {
            let generation = self.generation.load(Ordering::SeqCst);
            return self
                .compiled(ADMINS_GROUP, generation)
                .map(|g| compiled_matches(dn, &g.members) || compiled_matches(dn, &g.admins))
                .unwrap_or(false);
        }
        self.group(ADMINS_GROUP)
            .map(|g| dn_matches_any(dn, &g.members) || dn_matches_any(dn, &g.admins))
            .unwrap_or(false)
    }

    /// Is `dn` an administrator of `group` (directly, via an ancestor
    /// group, or as a site admin)?
    pub fn is_admin(&self, group_name: &str, dn: &DistinguishedName) -> bool {
        if self.is_site_admin(dn) {
            return true;
        }
        if self.caching {
            let generation = self.generation.load(Ordering::SeqCst);
            return self_and_ancestors(group_name).any(|name| {
                self.compiled(name, generation)
                    .map(|g| compiled_matches(dn, &g.admins))
                    .unwrap_or(false)
            });
        }
        self_and_ancestors(group_name).any(|name| {
            self.group(name)
                .map(|g| dn_matches_any(dn, &g.admins))
                .unwrap_or(false)
        })
    }

    /// Is `dn` a member of `group`? Membership is inherited downward from
    /// ancestor groups, admins count as members, and site admins are
    /// members of everything.
    pub fn is_member(&self, group_name: &str, dn: &DistinguishedName) -> bool {
        if self.is_site_admin(dn) {
            return true;
        }
        if self.caching {
            let generation = self.generation.load(Ordering::SeqCst);
            return self_and_ancestors(group_name).any(|name| {
                self.compiled(name, generation)
                    .map(|g| compiled_matches(dn, &g.members) || compiled_matches(dn, &g.admins))
                    .unwrap_or(false)
            });
        }
        self_and_ancestors(group_name).any(|name| {
            self.group(name)
                .map(|g| dn_matches_any(dn, &g.members) || dn_matches_any(dn, &g.admins))
                .unwrap_or(false)
        })
    }

    /// Create a group. Top-level groups require site admin; subgroups
    /// require admin of the parent (or any ancestor).
    pub fn create_group(&self, actor: &DistinguishedName, name: &str) -> Result<(), VoError> {
        if !valid_group_name(name) {
            return Err(VoError::BadGroup(format!("invalid group name {name:?}")));
        }
        if self.group(name).is_some() {
            return Err(VoError::Conflict(format!("group {name:?} exists")));
        }
        match name.rfind('.') {
            None => {
                if !self.is_site_admin(actor) {
                    return Err(VoError::NotAuthorized(
                        "only site admins may create top-level groups".into(),
                    ));
                }
            }
            Some(pos) => {
                let parent = &name[..pos];
                if self.group(parent).is_none() {
                    return Err(VoError::BadGroup(format!(
                        "parent {parent:?} does not exist"
                    )));
                }
                if !self.is_admin(parent, actor) {
                    return Err(VoError::NotAuthorized(format!(
                        "{actor} is not an admin of {parent:?}"
                    )));
                }
            }
        }
        self.save(name, &Group::default());
        Ok(())
    }

    /// Delete a group and all its subgroups. Requires admin of the group's
    /// parent branch (deleting `A.1` needs admin of `A` or higher; deleting
    /// a top-level group needs site admin).
    pub fn delete_group(&self, actor: &DistinguishedName, name: &str) -> Result<(), VoError> {
        if name == ADMINS_GROUP {
            return Err(VoError::BadGroup("cannot delete the admins group".into()));
        }
        if self.group(name).is_none() {
            return Err(VoError::Conflict(format!("group {name:?} does not exist")));
        }
        let authorized = match name.rfind('.') {
            None => self.is_site_admin(actor),
            Some(pos) => self.is_admin(&name[..pos], actor),
        };
        if !authorized {
            return Err(VoError::NotAuthorized(format!(
                "{actor} may not delete {name:?}"
            )));
        }
        // Delete the group and every subgroup beneath it.
        let _ = self.store.delete(VO_BUCKET, name);
        let prefix = format!("{name}.");
        for (key, _) in self.store.scan_prefix(VO_BUCKET, &prefix) {
            let _ = self.store.delete(VO_BUCKET, &key);
        }
        Ok(())
    }

    /// Add a member DN (prefix) to a group. Requires group admin.
    pub fn add_member(
        &self,
        actor: &DistinguishedName,
        group_name: &str,
        member: &str,
    ) -> Result<(), VoError> {
        self.modify(actor, group_name, |g| {
            if !g.members.contains(&member.to_owned()) {
                g.members.push(member.to_owned());
            }
        })
    }

    /// Remove a member DN from a group. Requires group admin.
    pub fn remove_member(
        &self,
        actor: &DistinguishedName,
        group_name: &str,
        member: &str,
    ) -> Result<(), VoError> {
        self.modify(actor, group_name, |g| g.members.retain(|m| m != member))
    }

    /// Add an administrator DN to a group. Requires group admin.
    pub fn add_admin(
        &self,
        actor: &DistinguishedName,
        group_name: &str,
        admin: &str,
    ) -> Result<(), VoError> {
        self.modify(actor, group_name, |g| {
            if !g.admins.contains(&admin.to_owned()) {
                g.admins.push(admin.to_owned());
            }
        })
    }

    /// Remove an administrator DN from a group. Requires group admin.
    pub fn remove_admin(
        &self,
        actor: &DistinguishedName,
        group_name: &str,
        admin: &str,
    ) -> Result<(), VoError> {
        self.modify(actor, group_name, |g| g.admins.retain(|a| a != admin))
    }

    fn modify(
        &self,
        actor: &DistinguishedName,
        group_name: &str,
        mutate: impl FnOnce(&mut Group),
    ) -> Result<(), VoError> {
        if group_name == ADMINS_GROUP && !self.is_site_admin(actor) {
            return Err(VoError::NotAuthorized(
                "only site admins may edit admins".into(),
            ));
        }
        let mut group = self
            .group(group_name)
            .ok_or_else(|| VoError::Conflict(format!("group {group_name:?} does not exist")))?;
        if group_name != ADMINS_GROUP && !self.is_admin(group_name, actor) {
            return Err(VoError::NotAuthorized(format!(
                "{actor} is not an admin of {group_name:?}"
            )));
        }
        mutate(&mut group);
        self.save(group_name, &group);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn(text: &str) -> DistinguishedName {
        DistinguishedName::parse(text).unwrap()
    }

    fn setup() -> (VoManager, DistinguishedName) {
        let admin = "/O=grid/OU=People/CN=root-admin";
        let manager = VoManager::new(Arc::new(Store::in_memory()), &[admin.to_owned()]);
        (manager, dn(admin))
    }

    #[test]
    fn admins_group_populated_from_config() {
        let (vo, admin) = setup();
        assert!(vo.is_site_admin(&admin));
        assert!(!vo.is_site_admin(&dn("/O=grid/OU=People/CN=nobody")));
        let group = vo.group(ADMINS_GROUP).unwrap();
        assert_eq!(group.members.len(), 1);
    }

    #[test]
    fn admins_repopulated_on_restart() {
        let store = Arc::new(Store::in_memory());
        {
            let vo = VoManager::new(Arc::clone(&store), &["/O=g/CN=old".to_owned()]);
            assert!(vo.is_site_admin(&dn("/O=g/CN=old")));
        }
        // "Restart" with a different config: old admin must be gone.
        let vo = VoManager::new(store, &["/O=g/CN=new".to_owned()]);
        assert!(!vo.is_site_admin(&dn("/O=g/CN=old")));
        assert!(vo.is_site_admin(&dn("/O=g/CN=new")));
    }

    #[test]
    fn paper_tree_structure() {
        // The example in Figure 2: top-level A, B, C; second level A.1-A.3.
        let (vo, admin) = setup();
        for name in ["A", "B", "C"] {
            vo.create_group(&admin, name).unwrap();
        }
        for name in ["A.1", "A.2", "A.3"] {
            vo.create_group(&admin, name).unwrap();
        }
        let mut groups = vo.list_groups();
        groups.retain(|g| g != ADMINS_GROUP);
        assert_eq!(groups, vec!["A", "A.1", "A.2", "A.3", "B", "C"]);
    }

    #[test]
    fn hierarchical_membership_downward() {
        let (vo, admin) = setup();
        vo.create_group(&admin, "A").unwrap();
        vo.create_group(&admin, "A.1").unwrap();
        vo.create_group(&admin, "B").unwrap();
        let alice = dn("/O=grid/OU=People/CN=alice");
        vo.add_member(&admin, "A", &alice.to_string()).unwrap();

        // "group members of higher level groups are automatically members
        //  of lower level groups in the same branch"
        assert!(vo.is_member("A", &alice));
        assert!(vo.is_member("A.1", &alice));
        assert!(!vo.is_member("B", &alice));

        // Not the other way around.
        let bob = dn("/O=grid/OU=People/CN=bob");
        vo.add_member(&admin, "A.1", &bob.to_string()).unwrap();
        assert!(vo.is_member("A.1", &bob));
        assert!(!vo.is_member("A", &bob));
    }

    #[test]
    fn dn_prefix_membership() {
        let (vo, admin) = setup();
        vo.create_group(&admin, "people").unwrap();
        // The paper's example: add all DOE Science Grid individuals.
        vo.add_member(&admin, "people", "/O=doesciencegrid.org/OU=People")
            .unwrap();
        assert!(vo.is_member(
            "people",
            &dn("/O=doesciencegrid.org/OU=People/CN=John Smith 12345")
        ));
        assert!(!vo.is_member("people", &dn("/O=doesciencegrid.org/OU=Services/CN=host")));
        assert!(!vo.is_member("people", &dn("/O=cern.ch/OU=People/CN=X")));
    }

    #[test]
    fn group_admin_privileges() {
        let (vo, admin) = setup();
        vo.create_group(&admin, "A").unwrap();
        let lead = dn("/O=grid/OU=People/CN=lead");
        vo.add_admin(&admin, "A", &lead.to_string()).unwrap();

        // Group admins manage members and subgroups...
        let member = dn("/O=grid/OU=People/CN=worker");
        vo.add_member(&lead, "A", &member.to_string()).unwrap();
        vo.create_group(&lead, "A.sub").unwrap();
        vo.delete_group(&lead, "A.sub").unwrap();
        vo.remove_member(&lead, "A", &member.to_string()).unwrap();
        assert!(!vo.is_member("A", &member));

        // ...but cannot create top-level groups or touch other branches.
        assert!(matches!(
            vo.create_group(&lead, "D"),
            Err(VoError::NotAuthorized(_))
        ));
        vo.create_group(&admin, "B").unwrap();
        assert!(matches!(
            vo.add_member(&lead, "B", "/O=x/CN=y"),
            Err(VoError::NotAuthorized(_))
        ));
    }

    #[test]
    fn ancestor_admins_manage_subgroups() {
        let (vo, admin) = setup();
        vo.create_group(&admin, "A").unwrap();
        let lead = dn("/O=grid/CN=lead");
        vo.add_admin(&admin, "A", &lead.to_string()).unwrap();
        vo.create_group(&lead, "A.1").unwrap();
        // lead is admin of A, hence effectively of A.1 as well.
        assert!(vo.is_admin("A.1", &lead));
        vo.add_member(&lead, "A.1", "/O=grid/CN=someone").unwrap();
    }

    #[test]
    fn non_admin_rejected() {
        let (vo, admin) = setup();
        vo.create_group(&admin, "A").unwrap();
        let mallory = dn("/O=grid/CN=mallory");
        assert!(matches!(
            vo.create_group(&mallory, "A.evil"),
            Err(VoError::NotAuthorized(_))
        ));
        assert!(matches!(
            vo.add_member(&mallory, "A", &mallory.to_string()),
            Err(VoError::NotAuthorized(_))
        ));
        assert!(matches!(
            vo.delete_group(&mallory, "A"),
            Err(VoError::NotAuthorized(_))
        ));
        assert!(matches!(
            vo.add_admin(&mallory, ADMINS_GROUP, &mallory.to_string()),
            Err(VoError::NotAuthorized(_))
        ));
    }

    #[test]
    fn group_validation() {
        let (vo, admin) = setup();
        assert!(matches!(
            vo.create_group(&admin, ""),
            Err(VoError::BadGroup(_))
        ));
        assert!(matches!(
            vo.create_group(&admin, "has space"),
            Err(VoError::BadGroup(_))
        ));
        assert!(matches!(
            vo.create_group(&admin, "a..b"),
            Err(VoError::BadGroup(_))
        ));
        assert!(matches!(
            vo.create_group(&admin, ADMINS_GROUP),
            Err(VoError::BadGroup(_))
        ));
        // Subgroup of a nonexistent parent.
        assert!(matches!(
            vo.create_group(&admin, "nope.sub"),
            Err(VoError::BadGroup(_))
        ));
        vo.create_group(&admin, "A").unwrap();
        assert!(matches!(
            vo.create_group(&admin, "A"),
            Err(VoError::Conflict(_))
        ));
        assert!(matches!(
            vo.delete_group(&admin, "ghost"),
            Err(VoError::Conflict(_))
        ));
        assert!(matches!(
            vo.delete_group(&admin, ADMINS_GROUP),
            Err(VoError::BadGroup(_))
        ));
    }

    #[test]
    fn recursive_group_deletion() {
        let (vo, admin) = setup();
        vo.create_group(&admin, "A").unwrap();
        vo.create_group(&admin, "A.1").unwrap();
        vo.create_group(&admin, "A.1.x").unwrap();
        // Sibling that must NOT be caught by the prefix delete.
        vo.create_group(&admin, "A2").unwrap();
        vo.delete_group(&admin, "A").unwrap();
        assert!(vo.group("A").is_none());
        assert!(vo.group("A.1").is_none());
        assert!(vo.group("A.1.x").is_none());
        assert!(vo.group("A2").is_some());
    }

    #[test]
    fn site_admin_is_member_of_everything() {
        let (vo, admin) = setup();
        vo.create_group(&admin, "A").unwrap();
        assert!(vo.is_member("A", &admin));
        assert!(vo.is_admin("A", &admin));
    }

    #[test]
    fn membership_changes_visible_through_cache() {
        let (vo, admin) = setup();
        vo.create_group(&admin, "A").unwrap();
        let alice = dn("/O=grid/CN=alice");
        // Warm the compiled cache with the deny answer.
        assert!(!vo.is_member("A", &alice));
        assert!(!vo.is_member("A", &alice));
        assert!(vo.cache_stats().hits > 0);
        // Granting and revoking must each be visible on the next check.
        vo.add_member(&admin, "A", &alice.to_string()).unwrap();
        assert!(vo.is_member("A", &alice));
        vo.remove_member(&admin, "A", &alice.to_string()).unwrap();
        assert!(!vo.is_member("A", &alice));
    }

    #[test]
    fn unparseable_entries_never_match_cached_or_not() {
        for caching in [true, false] {
            let admin = "/O=grid/CN=root";
            let vo =
                VoManager::with_caching(Arc::new(Store::in_memory()), &[admin.into()], caching);
            let admin = dn(admin);
            vo.create_group(&admin, "A").unwrap();
            // "*" is an ACL wildcard, but VO groups have no wildcard
            // entries — and garbage entries are simply inert.
            vo.add_member(&admin, "A", "*").unwrap();
            vo.add_member(&admin, "A", "not a dn").unwrap();
            assert!(!vo.is_member("A", &dn("/O=grid/CN=alice")));
        }
    }

    #[test]
    fn uncached_manager_counts_nothing() {
        let admin = "/O=grid/CN=root";
        let vo = VoManager::with_caching(Arc::new(Store::in_memory()), &[admin.into()], false);
        let admin = dn(admin);
        vo.create_group(&admin, "A").unwrap();
        assert!(vo.is_member("A", &dn("/O=grid/CN=root/CN=proxy")));
        assert_eq!(vo.cache_stats(), CacheStats::default());
    }
}
