//! Portal functionality (paper §3): server-rendered HTML pages exposing
//! the file browser, VO management view, and service discovery over plain
//! HTTP GET.
//!
//! The original portal was "a series of static web pages that embed
//! JavaScript scripts to handle ... web service calls"; the substitution
//! here (see DESIGN.md) renders the same views server-side so they are
//! testable without a browser. Every page is reachable with nothing but an
//! HTTP client — "eliminating the need for users to install any
//! additional software apart from a web browser".

use std::sync::Arc;

use clarens_httpd::{Request, Response};
use clarens_pki::dn::DistinguishedName;

use crate::acl::FileAccess;
use crate::core::ClarensCore;
use crate::paths;
use crate::registry::METHODS_BUCKET;

/// HTML-escape text content.
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

fn page(title: &str, body: &str) -> Response {
    let html = format!(
        "<!DOCTYPE html><html><head><title>{title}</title>\
         <style>body{{font-family:sans-serif;margin:2em}}table{{border-collapse:collapse}}\
         td,th{{border:1px solid #999;padding:4px 8px}}nav a{{margin-right:1em}}</style>\
         </head><body><nav><a href=\"/\">home</a><a href=\"/portal/files\">files</a>\
         <a href=\"/portal/vo\">vo</a>\
         <a href=\"/portal/acl\">acl</a><a href=\"/portal/methods\">methods</a></nav>\
         <h1>{title}</h1>{body}</body></html>",
        title = escape(title),
        body = body
    );
    Response::ok("text/html", html)
}

/// The landing page: server identity plus registered modules.
pub fn index(core: &Arc<ClarensCore>, identity: Option<&DistinguishedName>) -> Response {
    let modules = core.registry.read().modules();
    let who = identity
        .map(|dn| escape(&dn.to_string()))
        .unwrap_or_else(|| "not authenticated".to_owned());
    let body = format!(
        "<p>Server: <code>{url}</code></p><p>Server DN: <code>{dn}</code></p>\
         <p>You are: <code>{who}</code></p>\
         <p>Registered modules: {modules}</p>\
         <p>Methods: {count}</p>",
        url = escape(&core.config.server_url),
        dn = escape(&core.credential.certificate.subject.to_string()),
        modules = modules
            .iter()
            .map(|m| escape(m))
            .collect::<Vec<_>>()
            .join(", "),
        count = core.store.len(METHODS_BUCKET),
    );
    page("Clarens portal", &body)
}

/// Route `/portal/...` requests.
pub fn route(
    core: &Arc<ClarensCore>,
    request: &Request,
    identity: Option<&DistinguishedName>,
) -> Response {
    let query: std::collections::BTreeMap<String, String> =
        clarens_wire::percent::parse_query(request.query())
            .into_iter()
            .collect();
    match request.path() {
        "/portal" | "/portal/" => index(core, identity),
        "/portal/files" => files(core, identity, query.get("path").map(String::as_str)),
        "/portal/vo" => vo_page(core, identity),
        "/portal/acl" => acl_page(core, identity),
        "/portal/methods" => methods_page(core),
        other => Response::error(404, &format!("no portal page {other}")),
    }
}

/// The remote-file-browser component ("a look and feel similar to
/// conventional file browsers", §3): a table of entries with links into
/// subdirectories and download links through the GET file path.
fn files(
    core: &Arc<ClarensCore>,
    identity: Option<&DistinguishedName>,
    path: Option<&str>,
) -> Response {
    let Some(identity) = identity else {
        return page(
            "Files",
            "<p>Authenticate (session or TLS) to browse files.</p>",
        );
    };
    let Some(root) = core.config.file_root.clone() else {
        return page(
            "Files",
            "<p>The file service is not configured on this server.</p>",
        );
    };
    let vpath = path.unwrap_or("/");
    let Some(canonical) = paths::canonical(vpath) else {
        return Response::error(400, "illegal path");
    };
    if !core
        .acl
        .check_file(&canonical, FileAccess::Read, identity, &core.vo)
    {
        return page(
            "Files",
            &format!(
                "<p>No read access to <code>{}</code>.</p>",
                escape(&canonical)
            ),
        );
    }
    let Some(real) = paths::resolve(&root, vpath) else {
        return Response::error(400, "illegal path");
    };
    let mut rows = String::new();
    match std::fs::read_dir(&real) {
        Ok(entries) => {
            let mut sorted: Vec<_> = entries.filter_map(|e| e.ok()).collect();
            sorted.sort_by_key(|e| e.file_name());
            for entry in sorted {
                let name = entry.file_name().to_string_lossy().into_owned();
                let child = if canonical == "/" {
                    format!("/{name}")
                } else {
                    format!("{canonical}/{name}")
                };
                let is_dir = entry.file_type().map(|t| t.is_dir()).unwrap_or(false);
                let size = entry.metadata().map(|m| m.len()).unwrap_or(0);
                let link = if is_dir {
                    format!(
                        "<a href=\"/portal/files?path={}\">{}/</a>",
                        clarens_wire::percent::encode(&child),
                        escape(&name)
                    )
                } else {
                    format!(
                        "<a href=\"/file{}\">{}</a>",
                        clarens_wire::percent::encode_path(&child),
                        escape(&name)
                    )
                };
                rows.push_str(&format!(
                    "<tr><td>{link}</td><td>{kind}</td><td>{size}</td></tr>",
                    kind = if is_dir { "dir" } else { "file" },
                ));
            }
        }
        Err(e) => {
            return page(
                "Files",
                &format!(
                    "<p>Cannot list <code>{}</code>: {}</p>",
                    escape(&canonical),
                    escape(&e.to_string())
                ),
            )
        }
    }
    let body = format!(
        "<p>Browsing <code>{}</code></p><table><tr><th>name</th><th>type</th><th>size</th></tr>{rows}</table>",
        escape(&canonical)
    );
    page("Files", &body)
}

/// The VO management view: the group tree with members and admins.
fn vo_page(core: &Arc<ClarensCore>, identity: Option<&DistinguishedName>) -> Response {
    let Some(_identity) = identity else {
        return page(
            "Virtual Organizations",
            "<p>Authenticate to view VO structure.</p>",
        );
    };
    let mut rows = String::new();
    for name in core.vo.list_groups() {
        if let Some(group) = core.vo.group(&name) {
            rows.push_str(&format!(
                "<tr><td><code>{}</code></td><td>{}</td><td>{}</td></tr>",
                escape(&name),
                group
                    .members
                    .iter()
                    .map(|m| escape(m))
                    .collect::<Vec<_>>()
                    .join("<br>"),
                group
                    .admins
                    .iter()
                    .map(|a| escape(a))
                    .collect::<Vec<_>>()
                    .join("<br>"),
            ));
        }
    }
    let body =
        format!("<table><tr><th>group</th><th>members</th><th>admins</th></tr>{rows}</table>");
    page("Virtual Organizations", &body)
}

/// The access-control management view (§3 lists "access control
/// management" among the portal components): every method and file ACL
/// node with its lists.
fn acl_page(core: &Arc<ClarensCore>, identity: Option<&DistinguishedName>) -> Response {
    let Some(_identity) = identity else {
        return page("Access Control", "<p>Authenticate to view ACLs.</p>");
    };
    let render = |acl: &crate::acl::Acl| -> String {
        format!(
            "order {}; allow dns [{}] groups [{}]; deny dns [{}] groups [{}]",
            match acl.order {
                crate::acl::Order::AllowDeny => "allow,deny",
                crate::acl::Order::DenyAllow => "deny,allow",
            },
            acl.allow_dns.join(", "),
            acl.allow_groups.join(", "),
            acl.deny_dns.join(", "),
            acl.deny_groups.join(", "),
        )
    };
    let mut rows = String::new();
    for node in core.acl.method_acl_nodes() {
        if let Some(acl) = core.acl.method_acl(&node) {
            rows.push_str(&format!(
                "<tr><td>method</td><td><code>{}</code></td><td>{}</td></tr>",
                escape(&node),
                escape(&render(&acl))
            ));
        }
    }
    for (node, _) in core.store.scan_prefix(crate::acl::FILE_ACL_BUCKET, "") {
        if let Some(file_acl) = core.acl.file_acl(&node) {
            rows.push_str(&format!(
                "<tr><td>file (read)</td><td><code>{}</code></td><td>{}</td></tr>\
                 <tr><td>file (write)</td><td><code>{}</code></td><td>{}</td></tr>",
                escape(&node),
                escape(&render(&file_acl.read)),
                escape(&node),
                escape(&render(&file_acl.write)),
            ));
        }
    }
    let body =
        format!("<table><tr><th>kind</th><th>node</th><th>specification</th></tr>{rows}</table>");
    page("Access Control", &body)
}

/// The method catalogue (the discovery-adjacent view: what this server
/// exports, with signatures).
fn methods_page(core: &Arc<ClarensCore>) -> Response {
    let mut rows = String::new();
    for (name, bytes) in core.store.scan_prefix(METHODS_BUCKET, "") {
        let (signature, doc) = String::from_utf8(bytes)
            .ok()
            .and_then(|t| clarens_wire::json::parse(&t).ok())
            .map(|v| {
                (
                    v.get("signature")
                        .and_then(|s| s.as_str().map(str::to_owned))
                        .unwrap_or_default(),
                    v.get("doc")
                        .and_then(|s| s.as_str().map(str::to_owned))
                        .unwrap_or_default(),
                )
            })
            .unwrap_or_default();
        rows.push_str(&format!(
            "<tr><td><code>{}</code></td><td><code>{}</code></td><td>{}</td></tr>",
            escape(&name),
            escape(&signature),
            escape(&doc)
        ));
    }
    let body =
        format!("<table><tr><th>method</th><th>signature</th><th>doc</th></tr>{rows}</table>");
    page("Methods", &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(
            escape("<a href=\"x\">&"),
            "&lt;a href=&quot;x&quot;&gt;&amp;"
        );
        assert_eq!(escape("plain"), "plain");
    }
}
