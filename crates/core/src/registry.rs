//! Service registry and dispatch.
//!
//! Clarens services are modules exporting hierarchically-named methods
//! (`module.method`, paper §2.2). The registry maps module prefixes to
//! [`Service`] implementations and mirrors every method descriptor into the
//! database — which is what makes `system.list_methods` "incur a database
//! lookup for all registered methods in the server" exactly as the paper's
//! Figure-4 workload describes.

use std::collections::BTreeMap;
use std::sync::Arc;

use clarens_db::Store;
use clarens_pki::cert::Certificate;
use clarens_pki::dn::DistinguishedName;
use clarens_wire::{Fault, Value};

use crate::session::Session;

/// DB bucket mirroring registered method descriptors.
pub const METHODS_BUCKET: &str = "methods";

/// Descriptor of one exported method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodInfo {
    /// Full dotted name, e.g. `file.read`.
    pub name: String,
    /// Human-readable signature, e.g. `file.read(name, offset, nbytes)`.
    pub signature: String,
    /// One-line description.
    pub doc: String,
}

impl MethodInfo {
    /// Construct a descriptor.
    pub fn new(
        name: impl Into<String>,
        signature: impl Into<String>,
        doc: impl Into<String>,
    ) -> Self {
        MethodInfo {
            name: name.into(),
            signature: signature.into(),
            doc: doc.into(),
        }
    }
}

/// Per-call context handed to services. Identity and session are shared
/// pointers into the resolved-session cache, so building a context does
/// not copy any per-request strings.
pub struct CallContext<'a> {
    /// The server core (config, DB, sessions, VO, ACL, ...).
    pub core: &'a crate::core::ClarensCore,
    /// Authenticated caller identity, if any.
    pub identity: Option<Arc<DistinguishedName>>,
    /// The validated session, if the call carried one.
    pub session: Option<Arc<Session>>,
    /// Certificate chain presented on the transport (TLS connections).
    pub peer_chain: Vec<Certificate>,
    /// Request time (Unix seconds).
    pub now: i64,
    /// When the request's budget expires (`None` = no deadline). Long
    /// handlers check it cooperatively via [`CallContext::check_deadline`]
    /// so a stuck disk or an oversized scan turns into a clean 504-style
    /// fault instead of an unbounded stall.
    pub deadline: Option<std::time::Instant>,
    /// How many `proxy.call` forwards this request has already taken,
    /// parsed from the `x-clarens-hops` header (0 for a direct call). The
    /// proxy service refuses to forward once it reaches the configured
    /// `proxy_max_hops`, so two nodes that each believe the other owns a
    /// module bounce a request a bounded number of times instead of
    /// forever.
    pub hops: u32,
}

impl<'a> CallContext<'a> {
    /// The caller DN, or a NOT_AUTHENTICATED fault.
    pub fn require_identity(&self) -> Result<&DistinguishedName, Fault> {
        self.identity
            .as_deref()
            .ok_or_else(|| Fault::not_authenticated("this method requires authentication"))
    }

    /// Budget left before the request deadline (`None` = unlimited).
    pub fn remaining_budget(&self) -> Option<std::time::Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(std::time::Instant::now()))
    }

    /// `Ok` while budget remains; a [`Fault::deadline`] once it expired.
    pub fn check_deadline(&self) -> Result<(), Fault> {
        match self.deadline {
            Some(d) if std::time::Instant::now() >= d => {
                Err(Fault::deadline("request deadline exceeded"))
            }
            _ => Ok(()),
        }
    }
}

/// A Clarens service module.
pub trait Service: Send + Sync {
    /// The module name (the first component of exported method names).
    fn module(&self) -> &str;

    /// Exported method descriptors.
    fn methods(&self) -> Vec<MethodInfo>;

    /// Invoke `method` (the full dotted name) with `params`.
    fn call(&self, ctx: &CallContext<'_>, method: &str, params: &[Value]) -> Result<Value, Fault>;
}

/// The registry.
#[derive(Default)]
pub struct Registry {
    services: BTreeMap<String, Arc<dyn Service>>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register a service, mirroring its methods into the store.
    pub fn register(&mut self, service: Arc<dyn Service>, store: &Store) {
        for info in service.methods() {
            let value = Value::structure([
                ("signature", Value::from(info.signature.clone())),
                ("doc", Value::from(info.doc.clone())),
            ]);
            let _ = store.put(
                METHODS_BUCKET,
                &info.name,
                clarens_wire::json::to_string(&value).into_bytes(),
            );
        }
        self.services.insert(service.module().to_owned(), service);
    }

    /// Find the service owning `method` (by its module prefix).
    pub fn resolve(&self, method: &str) -> Option<Arc<dyn Service>> {
        let module = method.split('.').next().unwrap_or(method);
        self.services.get(module).cloned()
    }

    /// Registered module names.
    pub fn modules(&self) -> Vec<String> {
        self.services.keys().cloned().collect()
    }
}

/// Helpers for decoding positional parameters with good fault messages.
pub mod params {
    use super::*;

    /// Expect exactly `n` parameters.
    pub fn expect_len(params: &[Value], n: usize, method: &str) -> Result<(), Fault> {
        if params.len() == n {
            Ok(())
        } else {
            Err(Fault::bad_params(format!(
                "{method} expects {n} parameter(s), got {}",
                params.len()
            )))
        }
    }

    /// Expect between `min` and `max` parameters.
    pub fn expect_range(
        params: &[Value],
        min: usize,
        max: usize,
        method: &str,
    ) -> Result<(), Fault> {
        if (min..=max).contains(&params.len()) {
            Ok(())
        } else {
            Err(Fault::bad_params(format!(
                "{method} expects {min}..{max} parameters, got {}",
                params.len()
            )))
        }
    }

    /// Decode a string parameter.
    pub fn string(params: &[Value], index: usize, name: &str) -> Result<String, Fault> {
        params
            .get(index)
            .and_then(Value::as_str)
            .map(str::to_owned)
            .ok_or_else(|| {
                Fault::bad_params(format!("parameter {index} ({name}) must be a string"))
            })
    }

    /// Decode an integer parameter.
    pub fn int(params: &[Value], index: usize, name: &str) -> Result<i64, Fault> {
        params
            .get(index)
            .and_then(Value::as_int)
            .ok_or_else(|| Fault::bad_params(format!("parameter {index} ({name}) must be an int")))
    }

    /// Decode a bytes parameter (base64 string accepted for JSON clients).
    pub fn bytes(params: &[Value], index: usize, name: &str) -> Result<Vec<u8>, Fault> {
        params
            .get(index)
            .and_then(Value::coerce_bytes)
            .ok_or_else(|| {
                Fault::bad_params(format!("parameter {index} ({name}) must be base64/bytes"))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct EchoService;

    impl Service for EchoService {
        fn module(&self) -> &str {
            "echo"
        }

        fn methods(&self) -> Vec<MethodInfo> {
            vec![
                MethodInfo::new("echo.echo", "echo.echo(value)", "returns its argument"),
                MethodInfo::new("echo.reverse", "echo.reverse(s)", "reverses a string"),
            ]
        }

        fn call(
            &self,
            _ctx: &CallContext<'_>,
            method: &str,
            params: &[Value],
        ) -> Result<Value, Fault> {
            match method {
                "echo.echo" => Ok(params.first().cloned().unwrap_or(Value::Nil)),
                "echo.reverse" => {
                    let s = params::string(params, 0, "s")?;
                    Ok(Value::from(s.chars().rev().collect::<String>()))
                }
                other => Err(Fault::new(
                    clarens_wire::fault::codes::NO_SUCH_METHOD,
                    format!("no method {other}"),
                )),
            }
        }
    }

    #[test]
    fn register_and_resolve() {
        let store = Store::in_memory();
        let mut registry = Registry::new();
        registry.register(Arc::new(EchoService), &store);

        assert!(registry.resolve("echo.echo").is_some());
        assert!(registry.resolve("echo.reverse").is_some());
        assert!(registry.resolve("missing.method").is_none());
        assert_eq!(registry.modules(), vec!["echo"]);

        // Methods mirrored into the DB (the Figure-4 lookup source).
        assert_eq!(store.len(METHODS_BUCKET), 2);
        assert!(store.contains(METHODS_BUCKET, "echo.echo"));
    }

    #[test]
    fn param_helpers() {
        use params::*;
        let p = vec![Value::from("abc"), Value::Int(7), Value::Bytes(vec![1, 2])];
        assert!(expect_len(&p, 3, "m").is_ok());
        assert!(expect_len(&p, 2, "m").is_err());
        assert!(expect_range(&p, 1, 3, "m").is_ok());
        assert!(expect_range(&p, 4, 5, "m").is_err());
        assert_eq!(string(&p, 0, "s").unwrap(), "abc");
        assert!(string(&p, 1, "s").is_err());
        assert_eq!(int(&p, 1, "i").unwrap(), 7);
        assert!(int(&p, 0, "i").is_err());
        assert_eq!(bytes(&p, 2, "b").unwrap(), vec![1, 2]);
        // base64 string coerces to bytes for JSON clients.
        let jp = vec![Value::from(clarens_wire::base64::encode(b"hi"))];
        assert_eq!(bytes(&jp, 0, "b").unwrap(), b"hi");
        assert!(string(&p, 9, "missing").is_err());
    }
}
