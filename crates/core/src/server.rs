//! The Clarens server: HTTP routing, protocol negotiation, the two
//! per-request access-control checks, and dispatch into the service
//! registry.
//!
//! This is the "Clarens" box of the paper's Figure 1: POSTs carry RPC
//! calls (XML-RPC, SOAP, or JSON-RPC — answered in kind); GETs serve
//! files ("GET requests return a file or an XML-encoded error message")
//! and the portal pages of §3.

use std::borrow::Cow;
use std::io;
use std::sync::Arc;

use clarens_httpd::{
    http_date, resolve_range, Body, Handler, HttpServer, Method, PeerInfo, RangeOutcome, Request,
    Response, Scratch, ServerConfig, TlsConfig,
};
use clarens_pki::dn::DistinguishedName;
use clarens_telemetry::{Phase, RequestTrace};
use clarens_wire::fault::codes;
use clarens_wire::{Fault, Protocol, RpcCall, RpcResponse, Value};

use crate::acl::{Acl, FileAccess};
use crate::core::ClarensCore;
use crate::paths;
use crate::portal;
use crate::registry::CallContext;
use crate::services;
use crate::session::Session;

/// A running Clarens server.
pub struct ClarensServer {
    /// The shared core (also usable for in-process administration).
    pub core: Arc<ClarensCore>,
    http: HttpServer,
}

impl ClarensServer {
    /// Start serving on `addr`. `tls` enables the secure channel.
    pub fn start(
        core: Arc<ClarensCore>,
        addr: &str,
        tls: Option<TlsConfig>,
    ) -> io::Result<ClarensServer> {
        let handler = Arc::new(ClarensHandler {
            core: Arc::clone(&core),
        });
        // The read timeout tracks the configured request deadline (it used
        // to be a lone hard-coded 5 s): a client that stalls mid-request is
        // cut off on the same budget a stalled handler is.
        let read_timeout = match core.config.request_deadline_ms {
            0 => std::time::Duration::from_secs(3600),
            ms => std::time::Duration::from_millis(ms),
        };
        let config = ServerConfig {
            workers: core.config.workers,
            tls,
            now_fn: Arc::clone(&core.now_fn),
            read_timeout,
            telemetry: Some(Arc::clone(&core.telemetry)),
            buffer_pool: core.config.buffer_pool,
            max_connections: core.config.max_connections,
            park_idle: core.config.park_idle,
            zero_copy: core.config.zero_copy,
            ..Default::default()
        };
        let http = HttpServer::bind(addr, config, handler)?;
        Ok(ClarensServer { core, http })
    }

    /// Bound socket address.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.http.local_addr()
    }

    /// HTTP-layer statistics.
    pub fn stats(&self) -> &clarens_httpd::ServerStats {
        self.http.stats()
    }

    /// Stop the server.
    pub fn shutdown(self) {
        self.http.shutdown();
    }
}

/// Install a permissive default ACL set: every authenticated identity may
/// call the non-administrative modules (service-level checks still guard
/// admin operations), and read anywhere under `/` in the file tree. Used
/// by examples, tests, and benchmarks; production deployments configure
/// ACLs explicitly via the `acl` service.
pub fn install_permissive_acls(core: &ClarensCore) {
    for module in [
        "system",
        "echo",
        "file",
        "vo",
        "acl",
        "discovery",
        "proxy",
        "shell",
        "im",
        "srm",
        "job",
        "replication",
    ] {
        core.acl.set_method_acl(module, &Acl::allow_dn("*"));
    }
    core.acl.set_file_acl(
        "/",
        &crate::acl::FileAcl {
            read: Acl::allow_dn("*"),
            write: Acl::allow_dn("*"),
        },
    );
}

/// Register the full built-in service suite on a core. File and shell
/// services are only registered when the config provides their roots.
pub fn register_builtin_services(
    core: &Arc<ClarensCore>,
    discovery: Option<services::DiscoveryService>,
) {
    core.register(Arc::new(services::SystemService));
    core.register(Arc::new(services::EchoService));
    core.register(Arc::new(services::VoAdminService));
    core.register(Arc::new(services::AclAdminService));
    // The proxy router shares the discovery aggregator, so `proxy.call`
    // resolves module owners from the same view `discovery.find` serves.
    core.register(Arc::new(match &discovery {
        Some(d) => services::ProxyService::with_router(d.aggregator()),
        None => services::ProxyService::new(),
    }));
    // Every federated node registers the replication service: only the
    // current leader *serves* fetches (the role check moved inside the
    // service), but a promoted follower must already export the method.
    if core.config.federation_role != crate::config::FederationRole::Standalone {
        core.register(Arc::new(services::ReplicationService));
    }
    core.register(Arc::new(services::ImService::new()));
    if let Some(root) = core.config.file_root.clone() {
        core.register(Arc::new(services::FileService::new(root.clone())));
        core.register(Arc::new(services::SrmService::new(root, 2)));
    }
    if let Some(root) = core.config.shell_root.clone() {
        let user_map =
            services::shell::UserMap::parse(&core.config.shell_user_map).unwrap_or_default();
        core.register(Arc::new(services::ShellService::new(
            root.clone(),
            user_map.clone(),
        )));
        core.register(Arc::new(services::JobService::new(root, user_map)));
    }
    if let Some(service) = discovery {
        core.register(Arc::new(service));
    }
}

struct ClarensHandler {
    core: Arc<ClarensCore>,
}

/// The caller identity resolved for one request. Shared pointers out of
/// the resolved-session cache — moving these into a [`CallContext`] costs
/// no string copies.
struct ResolvedIdentity {
    identity: Option<Arc<DistinguishedName>>,
    session: Option<Arc<Session>>,
}

/// "GET requests return a file or an XML-encoded error message to the
/// client" (paper §2.3) — every GET-side error honours that format.
fn xml_error(status: u16, message: &str) -> Response {
    let xml = clarens_wire::xml::Element::new("error")
        .attr("code", status.to_string())
        .text(message);
    Response::new(status, "text/xml", xml.to_document())
}

impl ClarensHandler {
    /// Identity resolution: a session id (header `x-clarens-session`, or
    /// `session` query parameter for GETs) takes precedence; otherwise the
    /// TLS peer identity is used directly. This is the paper's first
    /// access check ("whether the client credentials are associated with a
    /// current session") — answered from the resolved-session cache, with
    /// the DN already parsed.
    fn resolve_identity(
        &self,
        request: &Request,
        peer: Option<&PeerInfo>,
        now: i64,
    ) -> ResolvedIdentity {
        // Borrow the header value when present (the hot path); only the
        // GET query fallback needs an owned copy.
        let session_id: Option<Cow<'_, str>> = match request.headers.get("x-clarens-session") {
            Some(id) => Some(Cow::Borrowed(id)),
            None => clarens_wire::percent::parse_query(request.query())
                .into_iter()
                .find(|(k, _)| k == "session")
                .map(|(_, v)| Cow::Owned(v)),
        };
        if let Some(id) = session_id {
            if let Some(entry) = self.core.sessions.resolve(&id, now) {
                return ResolvedIdentity {
                    identity: entry.identity,
                    session: Some(entry.session),
                };
            }
            // An invalid session falls through to the TLS identity (if
            // any) rather than silently authenticating as nobody.
        }
        ResolvedIdentity {
            identity: peer.map(|p| Arc::new(p.identity.clone())),
            session: None,
        }
    }

    fn handle_rpc(
        &self,
        mut request: Request,
        peer: Option<&PeerInfo>,
        trace: &mut RequestTrace,
        mut scratch: Option<&mut Scratch>,
    ) -> Response {
        // Protocol negotiation: Content-Type first, body sniffing as the
        // tie-breaker (XML-RPC and SOAP share text/xml).
        let content_type = request
            .headers
            .get("content-type")
            .unwrap_or("")
            .split(';')
            .next()
            .unwrap_or("")
            .trim()
            .to_ascii_lowercase();
        let protocol = match content_type.as_str() {
            "application/json" | "application/json-rpc" => Some(Protocol::JsonRpc),
            clarens_wire::binary::CONTENT_TYPE => Some(Protocol::Binary),
            "text/xml" | "application/xml" => Protocol::sniff(&request.body),
            _ => Protocol::sniff(&request.body),
        };
        let Some(protocol) = protocol else {
            return Response::error(400, "cannot determine RPC protocol");
        };
        // The binary protocol is negotiated, never assumed: a deployment
        // that disables it answers 415 and the client falls back to XML-RPC
        // (see `ClarensClient`; DESIGN.md §13 has the negotiation rules).
        if protocol == Protocol::Binary && !self.core.config.binary_protocol {
            return Response::error(415, "binary protocol disabled; use XML-RPC");
        }
        trace.protocol = Some(match protocol {
            Protocol::XmlRpc => "xmlrpc",
            Protocol::Soap => "soap",
            Protocol::JsonRpc => "jsonrpc",
            Protocol::Binary => "binary",
        });

        let (response, id) = if protocol == Protocol::Binary {
            // Zero-copy hot path: the decoded view borrows the method name
            // straight out of `request.body` — no owned call, no DOM. The
            // borrow ends before the body buffer is recycled below.
            match trace.span(Phase::Parse, || {
                clarens_wire::binary::decode_call_view(&request.body)
            }) {
                Err(e) => (
                    RpcResponse::Fault(Fault::new(codes::PARSE, e.to_string())),
                    None,
                ),
                Ok(view) => {
                    let clarens_wire::binary::CallView { method, params, id } = view;
                    trace.method = Some(method.to_owned());
                    (self.dispatch(&request, peer, method, params, trace), id)
                }
            }
        } else {
            let decoded = trace.span(Phase::Parse, || {
                if self.core.config.streaming_encode {
                    clarens_wire::decode_call(protocol, &request.body)
                } else {
                    clarens_wire::decode_call_dom(protocol, &request.body)
                }
            });
            match decoded {
                Err(e) => (
                    RpcResponse::Fault(Fault::new(codes::PARSE, e.to_string())),
                    None,
                ),
                Ok(call) => {
                    let RpcCall { method, params, id } = call;
                    trace.method = Some(method.clone());
                    (self.dispatch(&request, peer, &method, params, trace), id)
                }
            }
        };
        trace.fault = matches!(response, RpcResponse::Fault(_));
        // The request body is fully decoded; hand its capacity back to the
        // worker's arena so the response (or the next request) can reuse it.
        if let Some(s) = scratch.as_deref_mut() {
            s.recycle(std::mem::take(&mut request.body));
        }
        let streaming = self.core.config.streaming_encode;
        let body: Vec<u8> = trace.span(Phase::Serialize, || {
            if streaming {
                // Allocation-lean path: stream straight into a recycled
                // buffer, no intermediate DOM tree or String copies. The
                // HTTP layer recycles the buffer after the vectored write.
                let mut out = match scratch {
                    Some(s) => s.take(),
                    None => Vec::new(),
                };
                clarens_wire::encode_response_into(protocol, &response, id.as_ref(), &mut out);
                out
            } else {
                clarens_wire::encode_response(protocol, &response, id.as_ref())
            }
        });
        Response::ok(protocol.content_type(), body)
    }

    /// The full per-call path: session check, ACL check, dispatch.
    fn dispatch(
        &self,
        request: &Request,
        peer: Option<&PeerInfo>,
        method: &str,
        params: Vec<Value>,
        trace: &mut RequestTrace,
    ) -> RpcResponse {
        let now = self.core.now();
        let resolved = trace.span(Phase::Auth, || self.resolve_identity(request, peer, now));

        if !services::is_public(method) {
            let Some(identity) = &resolved.identity else {
                return RpcResponse::Fault(Fault::not_authenticated(format!(
                    "{method} requires an authenticated session"
                )));
            };
            // The paper's second access check: "whether the client has
            // access to the particular method being called". A session
            // already carries the rendered DN string, which the decision
            // cache can key on without re-rendering the identity.
            let allowed = trace.span(Phase::Acl, || match &resolved.session {
                Some(session) => {
                    self.core
                        .acl
                        .check_method_keyed(method, identity, &session.dn, &self.core.vo)
                }
                None => self.core.acl.check_method(method, identity, &self.core.vo),
            });
            if !allowed {
                return RpcResponse::Fault(Fault::access_denied(format!(
                    "{identity} may not call {method}"
                )));
            }
        }

        // Epoch fence (DESIGN.md §14): replicated writes are only
        // acknowledged by the current leader. A follower, a deposed
        // leader, or a leader whose lease lapsed (split-brain partition)
        // answers NOT_LEADER with a routing hint instead of mutating
        // state that the rest of the cluster will never see.
        if services::is_replicated_write(method)
            && self.core.federation.is_federated()
            && !self.core.federation.is_writable()
        {
            self.core.telemetry.federation.fenced_writes.inc();
            return RpcResponse::Fault(Fault::not_leader(
                &self.core.federation.leader(),
                self.core.federation.epoch(),
            ));
        }

        let service = match self.core.registry.read().resolve(method) {
            Some(service) => service,
            None => {
                return RpcResponse::Fault(Fault::new(
                    codes::NO_SUCH_METHOD,
                    format!("no service exports {method}"),
                ))
            }
        };
        let deadline_ms = self.core.config.request_deadline_ms;
        let deadline = (deadline_ms > 0)
            .then(|| std::time::Instant::now() + std::time::Duration::from_millis(deadline_ms));
        // Forwarding depth travels as a header so the hop budget survives
        // node boundaries; an absent or unparsable header means a direct
        // call.
        let hops = request
            .headers
            .get("x-clarens-hops")
            .and_then(|h| h.trim().parse().ok())
            .unwrap_or(0);
        let ctx = CallContext {
            core: &self.core,
            identity: resolved.identity,
            session: resolved.session,
            peer_chain: peer.map(|p| p.chain.clone()).unwrap_or_default(),
            now,
            deadline,
            hops,
        };
        let result = trace.span(Phase::Dispatch, || service.call(&ctx, method, &params));
        // A handler that overran its budget gets the 504-style fault even
        // if it eventually produced a value: the caller's own deadline has
        // long passed, and reporting success would hide the stall.
        if let Some(d) = deadline {
            if std::time::Instant::now() >= d {
                self.core.telemetry.resilience.deadline_exceeded.inc();
                return RpcResponse::Fault(Fault::deadline(format!(
                    "{method} exceeded the {deadline_ms} ms request deadline"
                )));
            }
        }
        match result {
            Ok(value) => {
                if services::is_replicated_write(method) {
                    if let Err(fault) = self.replicated_ack_barrier(method, deadline) {
                        return RpcResponse::Fault(fault);
                    }
                }
                RpcResponse::Success(value)
            }
            Err(fault) => {
                if fault.code == codes::DEADLINE {
                    self.core.telemetry.resilience.deadline_exceeded.inc();
                } else if fault.code == codes::DEGRADED {
                    self.core.telemetry.resilience.degraded_rejects.inc();
                }
                RpcResponse::Fault(fault)
            }
        }
    }

    /// Replicated-ack write barrier (DESIGN.md §14). On an
    /// election-managed leader, a replicated write is only acknowledged
    /// once a follower's fetch cursor has passed this node's committed
    /// WAL length — a fetch at offset X proves the follower applied every
    /// record below X, so an acknowledged write survives this node's
    /// death. Statically-configured leaders (elections off) and clusters
    /// with no actively polling follower skip the wait: there is nobody
    /// to hand leadership to, so leader-local durability is the best
    /// available guarantee.
    fn replicated_ack_barrier(
        &self,
        method: &str,
        deadline: Option<std::time::Instant>,
    ) -> Result<(), Fault> {
        let fed = &self.core.federation;
        if !fed.lease_managed() || !fed.is_writable() {
            // The handler already ran — the pre-dispatch fence passed and
            // the lease lapsed during execution. `executed=maybe` keeps
            // clients from blindly replaying the mutation at the new
            // leader: the write may survive via replication, and a replay
            // would double-execute it.
            if fed.lease_managed() && fed.is_federated() {
                self.core.telemetry.federation.fenced_writes.inc();
                return Err(Fault::not_leader_executed(&fed.leader(), fed.epoch()));
            }
            return Ok(());
        }
        if !fed.follower_active_within(std::time::Duration::from_secs(2)) {
            return Ok(());
        }
        let target = self.core.store.wal_offset();
        let hard_cap = std::time::Instant::now()
            + std::time::Duration::from_millis(self.core.config.leader_lease_ms.max(100));
        loop {
            if fed.follower_cursor() >= target {
                return Ok(());
            }
            if !fed.is_writable() {
                // Lease lapsed mid-wait: a rival may already be leader and
                // this write may not survive — refuse the ack, marked as
                // post-execution so clients don't replay the mutation.
                self.core.telemetry.federation.fenced_writes.inc();
                return Err(Fault::not_leader_executed(&fed.leader(), fed.epoch()));
            }
            let now = std::time::Instant::now();
            if now >= hard_cap || deadline.is_some_and(|d| now >= d) {
                return Err(Fault::service(format!(
                    "{method} applied locally but no follower confirmed replication in time"
                )));
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    fn handle_get(
        &self,
        request: Request,
        peer: Option<&PeerInfo>,
        trace: &mut RequestTrace,
    ) -> Response {
        let now = self.core.now();
        let resolved = trace.span(Phase::Auth, || self.resolve_identity(&request, peer, now));
        let path = request.path().to_owned();

        if path == "/healthz" {
            // Readiness probe: deliberately unauthenticated so load
            // balancers and the bench harness can poll it without a
            // session. Mirrors the `system.health` RPC.
            return self.serve_healthz();
        }
        if path == "/metrics" {
            return self.serve_metrics(resolved.identity.as_deref());
        }
        if path == "/" || path == "/index.html" {
            return portal::index(&self.core, resolved.identity.as_deref());
        }
        if let Some(rest) = path.strip_prefix("/file/") {
            return self.serve_file(&request, rest, resolved.identity.as_deref());
        }
        if path.starts_with("/portal") {
            return portal::route(&self.core, &request, resolved.identity.as_deref());
        }
        xml_error(404, &format!("no such resource: {path}"))
    }

    /// `GET /healthz`: the readiness surface (DESIGN.md §14). 200 when
    /// this node can do its job (a writable leader, a standalone node, or
    /// a follower that is replicating), 503 when it cannot (degraded
    /// store, or a fenced/deposed leader mid-election). The body is a
    /// small JSON object so orchestration can also read role/epoch/lag.
    fn serve_healthz(&self) -> Response {
        let fed = &self.core.federation;
        let role = match fed.role() {
            crate::config::FederationRole::Leader => "leader",
            crate::config::FederationRole::Follower => "follower",
            crate::config::FederationRole::Standalone => "standalone",
        };
        let degraded = self.core.store.is_degraded();
        let lag = self
            .core
            .replication_lag
            .load(std::sync::atomic::Ordering::Relaxed);
        // A federated leader that cannot currently ack writes (lease
        // lapsed, or deposed but not yet demoted) is not ready; followers
        // are ready as long as the store is healthy — reads still work.
        let ready =
            !degraded && (fed.role() != crate::config::FederationRole::Leader || fed.is_writable());
        let body = format!(
            "{{\"ready\":{ready},\"role\":\"{role}\",\"leader_epoch\":{epoch},\"leader\":\"{leader}\",\"wal_offset\":{offset},\"replication_lag\":{lag},\"degraded\":{degraded}}}\n",
            epoch = fed.epoch(),
            leader = fed.leader(),
            offset = self.core.store.wal_offset(),
        );
        Response::new(if ready { 200 } else { 503 }, "application/json", body)
    }

    /// `GET /metrics`: the whole telemetry plane in Prometheus-style
    /// plaintext, gated like `system.stats` — site admins only.
    fn serve_metrics(&self, identity: Option<&DistinguishedName>) -> Response {
        let Some(identity) = identity else {
            return xml_error(401, "metrics require a session or TLS identity");
        };
        if !self.core.vo.is_site_admin(identity) {
            return xml_error(403, "metrics require site admin");
        }
        Response::ok(
            "text/plain; version=0.0.4",
            self.core.telemetry.render_prometheus(),
        )
    }

    /// HTTP GET/HEAD file downloads (paper §2.3): whole files and single
    /// `Range: bytes=` slices served straight from the open file handle, so
    /// the transport can hand the copy to `sendfile(2)` on plaintext
    /// connections. Gated by the read ACL; HEAD answers from `stat` alone.
    fn serve_file(
        &self,
        request: &Request,
        raw_path: &str,
        identity: Option<&DistinguishedName>,
    ) -> Response {
        let Some(root) = self.core.config.file_root.as_deref() else {
            return xml_error(404, "file service not configured");
        };
        let decoded = clarens_wire::percent::decode_str(raw_path);
        let Some(identity) = identity else {
            return xml_error(401, "file downloads require a session or TLS identity");
        };
        let Some(canonical) = paths::canonical(&decoded) else {
            return xml_error(400, "illegal path");
        };
        if !self
            .core
            .acl
            .check_file(&canonical, FileAccess::Read, identity, &self.core.vo)
        {
            return xml_error(403, &format!("no read access to {canonical}"));
        }
        let Some(real) = paths::resolve(root, &decoded) else {
            return xml_error(400, "illegal path");
        };

        if request.method == Method::Head {
            // Metadata is all a HEAD needs: no read stream is ever opened.
            return match std::fs::metadata(&real) {
                Ok(meta) if meta.is_dir() => xml_error(400, "is a directory; use file.ls"),
                Ok(meta) => {
                    let mut response = Response {
                        status: 200,
                        headers: clarens_httpd::Headers::new(),
                        body: Body::Sized(meta.len()),
                    };
                    response
                        .headers
                        .set("content-type", "application/octet-stream");
                    Self::decorate_file_headers(&mut response, &meta);
                    response
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    xml_error(404, &format!("not found: {canonical}"))
                }
                Err(e) => xml_error(500, &e.to_string()),
            };
        }

        match std::fs::File::open(&real) {
            Ok(file) => {
                let meta = match file.metadata() {
                    Ok(meta) if meta.is_dir() => {
                        return xml_error(400, "is a directory; use file.ls")
                    }
                    Ok(meta) => meta,
                    Err(e) => return xml_error(500, &e.to_string()),
                };
                let len = meta.len();
                let mut response = match resolve_range(request.headers.get("range"), len) {
                    RangeOutcome::Whole => {
                        Response::file(200, "application/octet-stream", file, 0, len)
                    }
                    RangeOutcome::Partial { start, end } => {
                        let mut r = Response::file(
                            206,
                            "application/octet-stream",
                            file,
                            start,
                            end - start + 1,
                        );
                        r.headers
                            .set("content-range", format!("bytes {start}-{end}/{len}"));
                        r
                    }
                    RangeOutcome::Unsatisfiable => {
                        let mut r =
                            xml_error(416, &format!("range addresses no byte of {canonical}"));
                        r.headers.set("content-range", format!("bytes */{len}"));
                        r.headers.set("accept-ranges", "bytes");
                        return r;
                    }
                };
                Self::decorate_file_headers(&mut response, &meta);
                response
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                xml_error(404, &format!("not found: {canonical}"))
            }
            Err(e) => xml_error(500, &e.to_string()),
        }
    }

    /// Headers every file entity response carries: range-capability
    /// advertisement and the cache-validation timestamp.
    fn decorate_file_headers(response: &mut Response, meta: &std::fs::Metadata) {
        response.headers.set("accept-ranges", "bytes");
        if let Ok(modified) = meta.modified() {
            if let Ok(unix) = modified.duration_since(std::time::UNIX_EPOCH) {
                response
                    .headers
                    .set("last-modified", http_date(unix.as_secs()));
            }
        }
    }
}

impl ClarensHandler {
    fn handle_request(
        &self,
        request: Request,
        peer: Option<&PeerInfo>,
        trace: &mut RequestTrace,
        scratch: Option<&mut Scratch>,
    ) -> Response {
        match request.method {
            Method::Post => self.handle_rpc(request, peer, trace, scratch),
            Method::Get | Method::Head => {
                trace.method = Some("http.get".into());
                self.handle_get(request, peer, trace)
            }
            _ => Response::error(405, "use GET for files/portal, POST for RPC"),
        }
    }
}

impl Handler for ClarensHandler {
    fn handle(&self, request: Request, peer: Option<&PeerInfo>) -> Response {
        self.handle_traced(request, peer, &mut RequestTrace::disabled())
    }

    fn handle_traced(
        &self,
        request: Request,
        peer: Option<&PeerInfo>,
        trace: &mut RequestTrace,
    ) -> Response {
        self.handle_request(request, peer, trace, None)
    }

    fn handle_pooled(
        &self,
        request: Request,
        peer: Option<&PeerInfo>,
        trace: &mut RequestTrace,
        scratch: &mut Scratch,
    ) -> Response {
        self.handle_request(request, peer, trace, Some(scratch))
    }
}
