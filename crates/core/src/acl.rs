//! Hierarchical access control lists (paper §2.2, §2.3).
//!
//! "Execution of Web Service methods ... is controlled by a set of
//! hierarchical ACLs ... modelled after the access control (.htaccess)
//! files used by Apache." An ACL names an evaluation order (`allow,deny` or
//! `deny,allow`) and four lists: DNs allowed, groups allowed, DNs denied,
//! groups denied. ACLs attach to nodes of the dotted method hierarchy
//! (`file`, `file.read`) or the slashed file hierarchy (`/data`,
//! `/data/cms`); evaluation runs "from the lowest applicable level to the
//! highest": a grant at a higher level applies "unless specifically denied
//! at the lower level".
//!
//! File ACLs extend method ACLs "with two extra fields: read and write" —
//! [`FileAcl`] carries an [`Acl`] per access kind.
//!
//! The engine layers epoch-invalidated caches over the store (see
//! [`crate::cache`]): stored ACL records are *compiled* once — DN-prefix
//! entries parsed into [`DistinguishedName`]s — and memoized per node
//! tagged with the ACL bucket's generation, and full authorization
//! decisions are memoized per `(node, DN)` tagged with the ACL *and* VO
//! bucket generations, so a grant or revocation anywhere in either tree is
//! visible on the very next check.

use std::borrow::Cow;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use clarens_db::Store;
use clarens_pki::dn::DistinguishedName;
use clarens_wire::{json, Value};

use crate::cache::{CacheStats, Sharded};
use crate::vo::{VoManager, VO_BUCKET};

/// DB bucket for method ACLs.
pub const METHOD_ACL_BUCKET: &str = "acl.methods";
/// DB bucket for file ACLs.
pub const FILE_ACL_BUCKET: &str = "acl.files";

/// Evaluation order, after Apache's `Order` directive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Order {
    /// `allow,deny`: a deny match overrides an allow match at this level.
    #[default]
    AllowDeny,
    /// `deny,allow`: an allow match overrides a deny match at this level.
    DenyAllow,
}

impl Order {
    fn label(self) -> &'static str {
        match self {
            Order::AllowDeny => "allow,deny",
            Order::DenyAllow => "deny,allow",
        }
    }

    fn from_label(label: &str) -> Option<Order> {
        match label.replace(' ', "").as_str() {
            "allow,deny" => Some(Order::AllowDeny),
            "deny,allow" => Some(Order::DenyAllow),
            _ => None,
        }
    }
}

/// One access-control list.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Acl {
    /// Evaluation order.
    pub order: Order,
    /// DN prefixes allowed.
    pub allow_dns: Vec<String>,
    /// VO groups allowed.
    pub allow_groups: Vec<String>,
    /// DN prefixes denied.
    pub deny_dns: Vec<String>,
    /// VO groups denied.
    pub deny_groups: Vec<String>,
}

/// The decision one ACL level yields for a caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LevelDecision {
    /// This level grants access.
    Allow,
    /// This level explicitly denies access.
    Deny,
    /// This level says nothing about the caller — continue upward.
    Silent,
}

impl Acl {
    /// Convenience: allow a single DN prefix.
    pub fn allow_dn(dn: impl Into<String>) -> Acl {
        Acl {
            allow_dns: vec![dn.into()],
            ..Default::default()
        }
    }

    /// Convenience: allow a single group.
    pub fn allow_group(group: impl Into<String>) -> Acl {
        Acl {
            allow_groups: vec![group.into()],
            ..Default::default()
        }
    }

    /// Convenience: deny a single DN prefix.
    pub fn deny_dn(dn: impl Into<String>) -> Acl {
        Acl {
            deny_dns: vec![dn.into()],
            ..Default::default()
        }
    }

    /// Convenience: deny a single group.
    pub fn deny_group(group: impl Into<String>) -> Acl {
        Acl {
            deny_groups: vec![group.into()],
            ..Default::default()
        }
    }

    fn matches_allow(&self, dn: &DistinguishedName, vo: &VoManager) -> bool {
        dn_match(dn, &self.allow_dns) || self.allow_groups.iter().any(|g| vo.is_member(g, dn))
    }

    fn matches_deny(&self, dn: &DistinguishedName, vo: &VoManager) -> bool {
        dn_match(dn, &self.deny_dns) || self.deny_groups.iter().any(|g| vo.is_member(g, dn))
    }

    fn evaluate(&self, dn: &DistinguishedName, vo: &VoManager) -> LevelDecision {
        let allowed = self.matches_allow(dn, vo);
        let denied = self.matches_deny(dn, vo);
        match (allowed, denied) {
            (false, false) => LevelDecision::Silent,
            (true, false) => LevelDecision::Allow,
            (false, true) => LevelDecision::Deny,
            (true, true) => match self.order {
                Order::AllowDeny => LevelDecision::Deny,
                Order::DenyAllow => LevelDecision::Allow,
            },
        }
    }

    fn to_value(&self) -> Value {
        let list = |v: &[String]| Value::Array(v.iter().cloned().map(Value::from).collect());
        Value::structure([
            ("order", Value::from(self.order.label())),
            ("allow_dns", list(&self.allow_dns)),
            ("allow_groups", list(&self.allow_groups)),
            ("deny_dns", list(&self.deny_dns)),
            ("deny_groups", list(&self.deny_groups)),
        ])
    }

    fn from_value(value: &Value) -> Option<Acl> {
        let list = |k: &str| -> Vec<String> {
            value
                .get(k)
                .and_then(Value::as_array)
                .map(|a| {
                    a.iter()
                        .filter_map(|v| v.as_str().map(str::to_owned))
                        .collect()
                })
                .unwrap_or_default()
        };
        Some(Acl {
            order: Order::from_label(value.get("order")?.as_str()?)?,
            allow_dns: list("allow_dns"),
            allow_groups: list("allow_groups"),
            deny_dns: list("deny_dns"),
            deny_groups: list("deny_groups"),
        })
    }
}

/// The wildcard entry matching every authenticated DN (used by permissive
/// default ACL sets; there is no anonymous access — a DN must exist).
pub const ANY_DN: &str = "*";

fn dn_match(dn: &DistinguishedName, entries: &[String]) -> bool {
    entries.iter().any(|entry| {
        entry == ANY_DN
            || DistinguishedName::parse(entry)
                .map(|prefix| dn.has_prefix(&prefix))
                .unwrap_or(false)
    })
}

/// One compiled DN entry: the wildcard, or a parsed prefix.
#[derive(Debug, Clone)]
enum DnEntry {
    /// [`ANY_DN`] — matches every authenticated DN.
    Any,
    /// A DN prefix, parsed once at compile time.
    Prefix(DistinguishedName),
}

/// Parse a DN entry list once. Unparseable entries are dropped — exactly
/// the matching behavior of [`dn_match`], which treats them as
/// never-matching.
fn compile_entries(entries: &[String]) -> Vec<DnEntry> {
    entries
        .iter()
        .filter_map(|entry| {
            if entry == ANY_DN {
                Some(DnEntry::Any)
            } else {
                DistinguishedName::parse(entry).ok().map(DnEntry::Prefix)
            }
        })
        .collect()
}

fn compiled_match(dn: &DistinguishedName, entries: &[DnEntry]) -> bool {
    entries.iter().any(|entry| match entry {
        DnEntry::Any => true,
        DnEntry::Prefix(prefix) => dn.has_prefix(prefix),
    })
}

/// An [`Acl`] with its DN-prefix entries pre-parsed, so a cached node
/// evaluates without re-parsing every entry on every request.
#[derive(Debug, Clone)]
struct CompiledAcl {
    order: Order,
    allow_dns: Vec<DnEntry>,
    allow_groups: Vec<String>,
    deny_dns: Vec<DnEntry>,
    deny_groups: Vec<String>,
}

impl CompiledAcl {
    fn compile(acl: &Acl) -> CompiledAcl {
        CompiledAcl {
            order: acl.order,
            allow_dns: compile_entries(&acl.allow_dns),
            allow_groups: acl.allow_groups.clone(),
            deny_dns: compile_entries(&acl.deny_dns),
            deny_groups: acl.deny_groups.clone(),
        }
    }

    fn evaluate(&self, dn: &DistinguishedName, vo: &VoManager) -> LevelDecision {
        let allowed = compiled_match(dn, &self.allow_dns)
            || self.allow_groups.iter().any(|g| vo.is_member(g, dn));
        let denied = compiled_match(dn, &self.deny_dns)
            || self.deny_groups.iter().any(|g| vo.is_member(g, dn));
        match (allowed, denied) {
            (false, false) => LevelDecision::Silent,
            (true, false) => LevelDecision::Allow,
            (false, true) => LevelDecision::Deny,
            (true, true) => match self.order {
                Order::AllowDeny => LevelDecision::Deny,
                Order::DenyAllow => LevelDecision::Allow,
            },
        }
    }
}

/// A compiled [`FileAcl`].
#[derive(Debug, Clone)]
struct CompiledFileAcl {
    read: CompiledAcl,
    write: CompiledAcl,
}

/// A file ACL: separate lists per access kind (paper §2.3).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FileAcl {
    /// Controls `file.read`, `file.ls`, `file.stat`, `file.md5`, GET.
    pub read: Acl,
    /// Controls uploads, deletes, and other mutations.
    pub write: Acl,
}

/// The kind of file access being checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileAccess {
    /// Read-type access.
    Read,
    /// Write-type access.
    Write,
}

impl FileAcl {
    fn to_value(&self) -> Value {
        Value::structure([
            ("read", self.read.to_value()),
            ("write", self.write.to_value()),
        ])
    }

    fn from_value(value: &Value) -> Option<FileAcl> {
        Some(FileAcl {
            read: Acl::from_value(value.get("read")?)?,
            write: Acl::from_value(value.get("write")?)?,
        })
    }
}

/// Walk a method name's hierarchy, most specific first:
/// `module.submodule.method` → `module.submodule.method`,
/// `module.submodule`, `module`. Borrows from the input — no per-request
/// allocation.
fn method_levels(method: &str) -> impl Iterator<Item = &str> {
    std::iter::successors(Some(method), |m| m.rfind('.').map(|pos| &m[..pos]))
}

/// Ensure a file path starts with `/`, borrowing when it already does
/// (the common case: callers pass canonicalized paths).
fn rooted(path: &str) -> Cow<'_, str> {
    if path.starts_with('/') {
        Cow::Borrowed(path)
    } else {
        Cow::Owned(format!("/{path}"))
    }
}

/// Walk a rooted file path's hierarchy, most specific first:
/// `/a/b/c` → `/a/b/c`, `/a/b`, `/a`, `/`. Borrows from the input; the
/// path must start with `/` (see [`rooted`]).
fn path_levels(path: &str) -> impl Iterator<Item = &str> {
    debug_assert!(path.starts_with('/'));
    std::iter::successors(Some(path), |p| match p.rfind('/') {
        Some(0) => (*p != "/").then_some("/"),
        Some(pos) => Some(&p[..pos]),
        None => None,
    })
}

/// The ACL engine: stores ACLs in the DB and answers access questions.
///
/// With caching enabled (the default), the engine keeps two layers of
/// epoch-invalidated state: compiled per-node records tagged with the ACL
/// bucket generation, and `(node, DN) → bool` decisions tagged with the
/// ACL and VO bucket generations. Any `put`/`delete` to either bucket
/// moves the corresponding generation, so no stale grant can survive a
/// revocation.
pub struct AclEngine {
    store: Arc<Store>,
    caching: bool,
    method_gen: Arc<AtomicU64>,
    file_gen: Arc<AtomicU64>,
    vo_gen: Arc<AtomicU64>,
    compiled_methods: Sharded<String, Option<Arc<CompiledAcl>>>,
    compiled_files: Sharded<String, Option<Arc<CompiledFileAcl>>>,
    method_decisions: Sharded<String, bool, (u64, u64)>,
    file_decisions: Sharded<String, bool, (u64, u64)>,
}

impl AclEngine {
    /// Create an engine over the shared store (caching enabled).
    pub fn new(store: Arc<Store>) -> Self {
        AclEngine::with_caching(store, true)
    }

    /// Create an engine with the cache layer explicitly on or off. With
    /// caching off every check re-reads and re-parses the stored records,
    /// which is the paper's original uncached behavior.
    pub fn with_caching(store: Arc<Store>, caching: bool) -> Self {
        let method_gen = store.generation_handle(METHOD_ACL_BUCKET);
        let file_gen = store.generation_handle(FILE_ACL_BUCKET);
        let vo_gen = store.generation_handle(VO_BUCKET);
        AclEngine {
            store,
            caching,
            method_gen,
            file_gen,
            vo_gen,
            compiled_methods: Sharded::new(),
            compiled_files: Sharded::new(),
            method_decisions: Sharded::new(),
            file_decisions: Sharded::new(),
        }
    }

    /// Hit/miss counters of the compiled-node caches (method + file).
    pub fn node_cache_stats(&self) -> CacheStats {
        self.compiled_methods
            .stats()
            .merged(self.compiled_files.stats())
    }

    /// Hit/miss counters of the decision caches (method + file).
    pub fn decision_cache_stats(&self) -> CacheStats {
        self.method_decisions
            .stats()
            .merged(self.file_decisions.stats())
    }

    /// Attach an ACL to a method-hierarchy node.
    pub fn set_method_acl(&self, node: &str, acl: &Acl) {
        let _ = self.store.put(
            METHOD_ACL_BUCKET,
            node,
            json::to_string(&acl.to_value()).into_bytes(),
        );
    }

    /// Remove a method ACL node.
    pub fn clear_method_acl(&self, node: &str) {
        let _ = self.store.delete(METHOD_ACL_BUCKET, node);
    }

    /// Read back a method ACL node.
    pub fn method_acl(&self, node: &str) -> Option<Acl> {
        let bytes = self.store.get(METHOD_ACL_BUCKET, node)?;
        Acl::from_value(&json::parse(std::str::from_utf8(&bytes).ok()?).ok()?)
    }

    /// List all method ACL nodes.
    pub fn method_acl_nodes(&self) -> Vec<String> {
        self.store.keys(METHOD_ACL_BUCKET)
    }

    /// Attach a file ACL to a path node.
    pub fn set_file_acl(&self, node: &str, acl: &FileAcl) {
        let _ = self.store.put(
            FILE_ACL_BUCKET,
            node,
            json::to_string(&acl.to_value()).into_bytes(),
        );
    }

    /// Remove a file ACL node.
    pub fn clear_file_acl(&self, node: &str) {
        let _ = self.store.delete(FILE_ACL_BUCKET, node);
    }

    /// Read back a file ACL node.
    pub fn file_acl(&self, node: &str) -> Option<FileAcl> {
        let bytes = self.store.get(FILE_ACL_BUCKET, node)?;
        FileAcl::from_value(&json::parse(std::str::from_utf8(&bytes).ok()?).ok()?)
    }

    /// May `dn` invoke `method`? Evaluated lowest level first; the first
    /// non-silent level decides; no decision anywhere ⇒ deny (there must be
    /// an explicit grant somewhere up the tree). This is the second of the
    /// paper's two per-request checks ("whether the client has access to
    /// the particular method being called").
    pub fn check_method(&self, method: &str, dn: &DistinguishedName, vo: &VoManager) -> bool {
        if !self.caching {
            return self.check_method_uncached(method, dn, vo);
        }
        self.check_method_cached(method, dn, dn, vo)
    }

    /// Same as [`AclEngine::check_method`], but with the caller supplying
    /// `dn_key`: a pre-rendered form of `dn` (the session's stored DN
    /// string), used verbatim in the decision-cache key so the hot request
    /// path does not re-render the DN on every call.
    pub fn check_method_keyed(
        &self,
        method: &str,
        dn: &DistinguishedName,
        dn_key: &str,
        vo: &VoManager,
    ) -> bool {
        if !self.caching {
            return self.check_method_uncached(method, dn, vo);
        }
        self.check_method_cached(method, dn, dn_key, vo)
    }

    fn check_method_cached(
        &self,
        method: &str,
        dn: &DistinguishedName,
        dn_key: impl std::fmt::Display,
        vo: &VoManager,
    ) -> bool {
        // The decision key is built in a per-thread reusable buffer: on the
        // steady-state hit path the probe allocates nothing; only a miss
        // clones the key for insertion.
        thread_local! {
            static KEY_BUF: std::cell::RefCell<String> = const { std::cell::RefCell::new(String::new()) };
        }
        KEY_BUF.with(|buf| {
            let mut key = buf.borrow_mut();
            key.clear();
            let _ = write!(key, "{}\u{1f}{method}\u{1f}{dn_key}", method.len());
            // Generations are loaded BEFORE any record is read: a
            // concurrent write bumps its generation inside the store's
            // write-lock scope, so the decision cached below can at worst
            // be tagged with a superseded epoch (a spurious miss next
            // time), never be a stale grant under a current one.
            let tag = (
                self.method_gen.load(Ordering::SeqCst),
                self.vo_gen.load(Ordering::SeqCst),
            );
            if let Some(decision) = self.method_decisions.get(key.as_str(), tag) {
                return decision;
            }
            let gen = tag.0;
            let mut decision = false;
            for level in method_levels(method) {
                if let Some(acl) = self.compiled_method_acl(level, gen) {
                    match acl.evaluate(dn, vo) {
                        LevelDecision::Allow => {
                            decision = true;
                            break;
                        }
                        LevelDecision::Deny => break,
                        LevelDecision::Silent => continue,
                    }
                }
            }
            self.method_decisions.insert(key.clone(), tag, decision);
            decision
        })
    }

    fn check_method_uncached(&self, method: &str, dn: &DistinguishedName, vo: &VoManager) -> bool {
        for level in method_levels(method) {
            if let Some(acl) = self.method_acl(level) {
                match acl.evaluate(dn, vo) {
                    LevelDecision::Allow => return true,
                    LevelDecision::Deny => return false,
                    LevelDecision::Silent => continue,
                }
            }
        }
        false
    }

    /// Compiled record for one method node, read through the node cache.
    /// `None` (the absence of an ACL) is cached too — most hierarchy
    /// levels have no ACL attached.
    fn compiled_method_acl(&self, node: &str, gen: u64) -> Option<Arc<CompiledAcl>> {
        if let Some(cached) = self.compiled_methods.get(node, gen) {
            return cached;
        }
        let compiled = self
            .method_acl(node)
            .map(|acl| Arc::new(CompiledAcl::compile(&acl)));
        self.compiled_methods
            .insert(node.to_owned(), gen, compiled.clone());
        compiled
    }

    /// May `dn` access `path` for `access`? Same lowest-first evaluation
    /// over the path hierarchy.
    pub fn check_file(
        &self,
        path: &str,
        access: FileAccess,
        dn: &DistinguishedName,
        vo: &VoManager,
    ) -> bool {
        let path = rooted(path);
        if !self.caching {
            return self.check_file_uncached(&path, access, dn, vo);
        }
        let tag = (
            self.file_gen.load(Ordering::SeqCst),
            self.vo_gen.load(Ordering::SeqCst),
        );
        let access_mark = match access {
            FileAccess::Read => "r",
            FileAccess::Write => "w",
        };
        let mut key = decision_key(&path, dn);
        key.push('\u{1f}');
        key.push_str(access_mark);
        if let Some(decision) = self.file_decisions.get(&key, tag) {
            return decision;
        }
        let gen = tag.0;
        let mut decision = false;
        for level in path_levels(&path) {
            if let Some(file_acl) = self.compiled_file_acl(level, gen) {
                let acl = match access {
                    FileAccess::Read => &file_acl.read,
                    FileAccess::Write => &file_acl.write,
                };
                match acl.evaluate(dn, vo) {
                    LevelDecision::Allow => {
                        decision = true;
                        break;
                    }
                    LevelDecision::Deny => break,
                    LevelDecision::Silent => continue,
                }
            }
        }
        self.file_decisions.insert(key, tag, decision);
        decision
    }

    fn check_file_uncached(
        &self,
        path: &str,
        access: FileAccess,
        dn: &DistinguishedName,
        vo: &VoManager,
    ) -> bool {
        for level in path_levels(path) {
            if let Some(file_acl) = self.file_acl(level) {
                let acl = match access {
                    FileAccess::Read => &file_acl.read,
                    FileAccess::Write => &file_acl.write,
                };
                match acl.evaluate(dn, vo) {
                    LevelDecision::Allow => return true,
                    LevelDecision::Deny => return false,
                    LevelDecision::Silent => continue,
                }
            }
        }
        false
    }

    /// Compiled record for one file node, read through the node cache.
    fn compiled_file_acl(&self, node: &str, gen: u64) -> Option<Arc<CompiledFileAcl>> {
        if let Some(cached) = self.compiled_files.get(node, gen) {
            return cached;
        }
        let compiled = self.file_acl(node).map(|file_acl| {
            Arc::new(CompiledFileAcl {
                read: CompiledAcl::compile(&file_acl.read),
                write: CompiledAcl::compile(&file_acl.write),
            })
        });
        self.compiled_files
            .insert(node.to_owned(), gen, compiled.clone());
        compiled
    }
}

/// Decision-cache key for `(node, DN)`, used by the file-decision cache
/// (method decisions build the same shape into a reusable buffer, see
/// `check_method_cached`). Length-prefixed so no crafted method or path
/// string can collide with another caller's entry.
fn decision_key(node: &str, dn: impl std::fmt::Display) -> String {
    let mut key = String::with_capacity(node.len() + 48);
    let _ = write!(key, "{}\u{1f}{node}\u{1f}{dn}", node.len());
    key
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn(text: &str) -> DistinguishedName {
        DistinguishedName::parse(text).unwrap()
    }

    fn setup() -> (AclEngine, VoManager, DistinguishedName) {
        let store = Arc::new(Store::in_memory());
        let admin = "/O=grid/CN=admin";
        let vo = VoManager::new(Arc::clone(&store), &[admin.to_owned()]);
        (AclEngine::new(store), vo, dn(admin))
    }

    #[test]
    fn method_level_splitting() {
        assert_eq!(
            method_levels("module.submodule.method").collect::<Vec<_>>(),
            vec!["module.submodule.method", "module.submodule", "module"]
        );
        assert_eq!(method_levels("echo").collect::<Vec<_>>(), vec!["echo"]);
    }

    #[test]
    fn path_level_splitting() {
        assert_eq!(
            path_levels("/a/b/c").collect::<Vec<_>>(),
            vec!["/a/b/c", "/a/b", "/a", "/"]
        );
        assert_eq!(path_levels("/").collect::<Vec<_>>(), vec!["/"]);
        // Unrooted paths are normalized first (allocating only then).
        assert_eq!(rooted("a"), "/a");
        assert_eq!(
            path_levels(&rooted("a")).collect::<Vec<_>>(),
            vec!["/a", "/"]
        );
        assert!(matches!(rooted("/already"), Cow::Borrowed(_)));
    }

    #[test]
    fn default_is_deny() {
        let (acl, vo, _) = setup();
        assert!(!acl.check_method("file.read", &dn("/O=x/CN=u"), &vo));
        assert!(!acl.check_file("/data/f", FileAccess::Read, &dn("/O=x/CN=u"), &vo));
    }

    #[test]
    fn higher_level_grant_applies_to_lower_methods() {
        let (engine, vo, _) = setup();
        let alice = dn("/O=grid/OU=People/CN=alice");
        // Grant at the module level...
        engine.set_method_acl("file", &Acl::allow_dn("/O=grid/OU=People/CN=alice"));
        // ..."automatically has access to a lower level method".
        assert!(engine.check_method("file.read", &alice, &vo));
        assert!(engine.check_method("file.ls", &alice, &vo));
        assert!(engine.check_method("file", &alice, &vo));
        // Other modules stay denied.
        assert!(!engine.check_method("shell.cmd", &alice, &vo));
    }

    #[test]
    fn lower_level_deny_overrides_higher_grant() {
        let (engine, vo, _) = setup();
        let alice = dn("/O=grid/OU=People/CN=alice");
        engine.set_method_acl("file", &Acl::allow_dn("/O=grid/OU=People/CN=alice"));
        // "unless specifically denied at the lower level"
        engine.set_method_acl("file.delete", &Acl::deny_dn("/O=grid/OU=People/CN=alice"));
        assert!(engine.check_method("file.read", &alice, &vo));
        assert!(!engine.check_method("file.delete", &alice, &vo));
    }

    #[test]
    fn lower_allow_beats_higher_deny() {
        let (engine, vo, _) = setup();
        let bob = dn("/O=grid/CN=bob");
        engine.set_method_acl("admin", &Acl::deny_dn("/O=grid/CN=bob"));
        engine.set_method_acl("admin.status", &Acl::allow_dn("/O=grid/CN=bob"));
        // Lowest applicable level decides first.
        assert!(engine.check_method("admin.status", &bob, &vo));
        assert!(!engine.check_method("admin.shutdown", &bob, &vo));
    }

    #[test]
    fn group_based_acl_with_vo() {
        let (engine, vo, admin) = setup();
        vo.create_group(&admin, "cms").unwrap();
        vo.create_group(&admin, "cms.analysis").unwrap();
        let alice = dn("/O=grid/CN=alice");
        vo.add_member(&admin, "cms", &alice.to_string()).unwrap();

        engine.set_method_acl("proof", &Acl::allow_group("cms.analysis"));
        // alice is a member of cms, hence (hierarchically) of cms.analysis.
        assert!(engine.check_method("proof.query", &alice, &vo));
        let outsider = dn("/O=other/CN=eve");
        assert!(!engine.check_method("proof.query", &outsider, &vo));
    }

    #[test]
    fn order_resolves_conflicts_at_same_level() {
        let (engine, vo, _) = setup();
        let user = dn("/O=grid/CN=dual");
        // User matches both allow and deny at the same node.
        let both_allowdeny = Acl {
            order: Order::AllowDeny,
            allow_dns: vec!["/O=grid".into()],
            deny_dns: vec!["/O=grid/CN=dual".into()],
            ..Default::default()
        };
        engine.set_method_acl("m1", &both_allowdeny);
        assert!(!engine.check_method("m1.x", &user, &vo)); // deny wins

        let both_denyallow = Acl {
            order: Order::DenyAllow,
            ..both_allowdeny.clone()
        };
        engine.set_method_acl("m2", &both_denyallow);
        assert!(engine.check_method("m2.x", &user, &vo)); // allow wins
    }

    #[test]
    fn file_acl_read_write_distinct() {
        let (engine, vo, _) = setup();
        let alice = dn("/O=grid/CN=alice");
        engine.set_file_acl(
            "/data",
            &FileAcl {
                read: Acl::allow_dn("/O=grid"),
                write: Acl::allow_dn("/O=grid/CN=librarian"),
            },
        );
        assert!(engine.check_file("/data/run1/f.root", FileAccess::Read, &alice, &vo));
        assert!(!engine.check_file("/data/run1/f.root", FileAccess::Write, &alice, &vo));
        let librarian = dn("/O=grid/CN=librarian");
        assert!(engine.check_file("/data/x", FileAccess::Write, &librarian, &vo));
    }

    #[test]
    fn file_acl_subdir_deny() {
        let (engine, vo, _) = setup();
        let alice = dn("/O=grid/CN=alice");
        engine.set_file_acl(
            "/",
            &FileAcl {
                read: Acl::allow_dn("/O=grid"),
                ..Default::default()
            },
        );
        engine.set_file_acl(
            "/private",
            &FileAcl {
                read: Acl::deny_dn("/O=grid/CN=alice"),
                ..Default::default()
            },
        );
        assert!(engine.check_file("/public/f", FileAccess::Read, &alice, &vo));
        assert!(!engine.check_file("/private/f", FileAccess::Read, &alice, &vo));
    }

    #[test]
    fn acl_persistence_roundtrip() {
        let (engine, _, _) = setup();
        let acl = Acl {
            order: Order::DenyAllow,
            allow_dns: vec!["/O=a".into()],
            allow_groups: vec!["g1".into(), "g2".into()],
            deny_dns: vec!["/O=b/CN=x".into()],
            deny_groups: vec!["g3".into()],
        };
        engine.set_method_acl("mod.sub", &acl);
        assert_eq!(engine.method_acl("mod.sub").unwrap(), acl);
        assert_eq!(engine.method_acl_nodes(), vec!["mod.sub"]);
        engine.clear_method_acl("mod.sub");
        assert!(engine.method_acl("mod.sub").is_none());

        let facl = FileAcl {
            read: Acl::allow_group("g"),
            write: Acl::deny_dn("/O=x"),
        };
        engine.set_file_acl("/d", &facl);
        assert_eq!(engine.file_acl("/d").unwrap(), facl);
        engine.clear_file_acl("/d");
        assert!(engine.file_acl("/d").is_none());
    }

    #[test]
    fn wildcard_matches_any_authenticated_dn() {
        let (engine, vo, _) = setup();
        engine.set_method_acl("open", &Acl::allow_dn("*"));
        assert!(engine.check_method("open.anything", &dn("/O=anywhere/CN=anyone"), &vo));
        // A lower-level deny still overrides the wildcard grant.
        engine.set_method_acl("open.secret", &Acl::deny_dn("/O=anywhere/CN=anyone"));
        assert!(!engine.check_method("open.secret", &dn("/O=anywhere/CN=anyone"), &vo));
    }

    #[test]
    fn decision_cache_hits_on_repeat_checks() {
        let (engine, vo, _) = setup();
        let alice = dn("/O=grid/CN=alice");
        engine.set_method_acl("file", &Acl::allow_dn("/O=grid"));
        assert!(engine.check_method("file.read", &alice, &vo));
        let first = engine.decision_cache_stats();
        assert_eq!(first.hits, 0);
        assert!(engine.check_method("file.read", &alice, &vo));
        let second = engine.decision_cache_stats();
        assert_eq!(second.hits, 1);
        assert_eq!(second.misses, first.misses);
    }

    #[test]
    fn keyed_check_shares_cache_entries_with_plain_check() {
        let (engine, vo, _) = setup();
        let alice = dn("/O=grid/CN=alice");
        let rendered = alice.to_string();
        engine.set_method_acl("file", &Acl::allow_dn("/O=grid"));
        // A keyed check (session path: pre-rendered DN string) lands on
        // the same cache entry as a plain check of the same identity.
        assert!(engine.check_method("file.read", &alice, &vo));
        assert!(engine.check_method_keyed("file.read", &alice, &rendered, &vo));
        assert_eq!(engine.decision_cache_stats().hits, 1);
        // Revocation applies to the keyed path too.
        engine.clear_method_acl("file");
        assert!(!engine.check_method_keyed("file.read", &alice, &rendered, &vo));
    }

    #[test]
    fn revocation_invalidates_cached_decision() {
        let (engine, vo, _) = setup();
        let alice = dn("/O=grid/CN=alice");
        engine.set_method_acl("file", &Acl::allow_dn("/O=grid/CN=alice"));
        // Warm both cache layers.
        assert!(engine.check_method("file.read", &alice, &vo));
        assert!(engine.check_method("file.read", &alice, &vo));
        // Revoke: the very next check must see it (no stale-grant window).
        engine.clear_method_acl("file");
        assert!(!engine.check_method("file.read", &alice, &vo));
        // And re-granting is equally immediate.
        engine.set_method_acl("file", &Acl::allow_dn("/O=grid/CN=alice"));
        assert!(engine.check_method("file.read", &alice, &vo));
    }

    #[test]
    fn vo_change_invalidates_cached_decision() {
        let (engine, vo, admin) = setup();
        let alice = dn("/O=grid/CN=alice");
        vo.create_group(&admin, "cms").unwrap();
        engine.set_method_acl("proof", &Acl::allow_group("cms"));
        assert!(!engine.check_method("proof.query", &alice, &vo));
        // A VO-side grant flips the cached deny immediately...
        vo.add_member(&admin, "cms", &alice.to_string()).unwrap();
        assert!(engine.check_method("proof.query", &alice, &vo));
        // ...and a VO-side revocation flips it back.
        vo.remove_member(&admin, "cms", &alice.to_string()).unwrap();
        assert!(!engine.check_method("proof.query", &alice, &vo));
    }

    #[test]
    fn file_decision_cache_keeps_read_write_distinct() {
        let (engine, vo, _) = setup();
        let alice = dn("/O=grid/CN=alice");
        engine.set_file_acl(
            "/data",
            &FileAcl {
                read: Acl::allow_dn("/O=grid"),
                write: Acl::default(),
            },
        );
        // Repeat each check so both answers come from the decision cache.
        for _ in 0..2 {
            assert!(engine.check_file("/data/f", FileAccess::Read, &alice, &vo));
            assert!(!engine.check_file("/data/f", FileAccess::Write, &alice, &vo));
        }
        // File-side revocation is immediate too.
        engine.clear_file_acl("/data");
        assert!(!engine.check_file("/data/f", FileAccess::Read, &alice, &vo));
    }

    #[test]
    fn uncached_engine_behaves_identically_and_counts_nothing() {
        let store = Arc::new(Store::in_memory());
        let vo = VoManager::new(Arc::clone(&store), &[]);
        let engine = AclEngine::with_caching(store, false);
        let alice = dn("/O=grid/CN=alice");
        engine.set_method_acl("file", &Acl::allow_dn("/O=grid"));
        assert!(engine.check_method("file.read", &alice, &vo));
        assert!(engine.check_method("file.read", &alice, &vo));
        engine.clear_method_acl("file");
        assert!(!engine.check_method("file.read", &alice, &vo));
        assert_eq!(engine.decision_cache_stats(), CacheStats::default());
        assert_eq!(engine.node_cache_stats(), CacheStats::default());
    }

    #[test]
    fn malformed_stored_acl_ignored() {
        let (engine, vo, _) = setup();
        // Write garbage where an ACL should be.
        let store = Arc::new(Store::in_memory());
        let engine2 = AclEngine::new(Arc::clone(&store));
        store
            .put(METHOD_ACL_BUCKET, "m", b"not json".to_vec())
            .unwrap();
        assert!(engine2.method_acl("m").is_none());
        assert!(!engine2.check_method("m.x", &dn("/O=a/CN=b"), &vo));
        drop(engine);
    }
}
