//! Cross-protocol equivalence: every core RPC must behave identically no
//! matter which of the four wire protocols carries it — same `Value`
//! results, same fault codes. XML-RPC is the reference (the paper's
//! default protocol); SOAP, JSON-RPC, and clarens-binary must be
//! indistinguishable from it at the `Value` level.
//!
//! JSON has no native bytes/date-time types (they travel as strings), so
//! the all-protocol suite sticks to the JSON-representable common subset;
//! the lossless-type cases (Bytes, DateTime) run binary-vs-XML-RPC, which
//! both carry the full algebra.

use clarens::testkit::{GridOptions, TestGrid};
use clarens::ClientError;
use clarens_wire::fault::codes;
use clarens_wire::{Protocol, Value};

const ALL_PROTOCOLS: [Protocol; 4] = [
    Protocol::XmlRpc,
    Protocol::Soap,
    Protocol::JsonRpc,
    Protocol::Binary,
];

/// The common-subset workload: every core service family, with params
/// covering each JSON-representable `Value` shape.
fn workload() -> Vec<(&'static str, Vec<Value>)> {
    vec![
        ("system.ping", vec![]),
        ("system.version", vec![]),
        ("system.whoami", vec![]),
        ("system.list_methods", vec![]),
        ("echo.echo", vec![Value::Nil]),
        ("echo.echo", vec![Value::Bool(true)]),
        ("echo.echo", vec![Value::Int(-42)]),
        ("echo.echo", vec![Value::Double(-2.5)]),
        ("echo.echo", vec![Value::from("héllo & <wörld>")]),
        (
            "echo.echo",
            vec![Value::array([
                Value::Int(1),
                Value::from("two"),
                Value::structure([("k", Value::Bool(false))]),
            ])],
        ),
        (
            "echo.echo",
            vec![Value::structure([
                ("name", Value::from("pythia.root")),
                ("size", Value::Int(7 << 30)),
                ("entries", Value::array([Value::Int(1), Value::Int(2)])),
            ])],
        ),
        ("echo.sum", vec![Value::Int(40), Value::Int(2)]),
        (
            "echo.concat",
            vec![Value::array([Value::from("a"), Value::from("b")])],
        ),
    ]
}

#[test]
fn identical_results_across_all_four_protocols() {
    let grid = TestGrid::start();
    // Reference run: XML-RPC.
    let mut reference = grid.logged_in_client(&grid.user);
    let baseline: Vec<Value> = workload()
        .into_iter()
        .map(|(method, params)| reference.call(method, params).unwrap())
        .collect();

    for protocol in [Protocol::Soap, Protocol::JsonRpc, Protocol::Binary] {
        let mut client = grid.logged_in_client(&grid.user).with_protocol(protocol);
        for ((method, params), expected) in workload().into_iter().zip(&baseline) {
            let got = client.call(method, params.clone()).unwrap_or_else(|e| {
                panic!("{protocol:?} {method} {params:?} failed: {e}");
            });
            assert_eq!(
                &got, expected,
                "{protocol:?} {method} diverged from the XML-RPC reference"
            );
        }
    }
    grid.cleanup();
}

#[test]
fn identical_fault_codes_across_all_four_protocols() {
    let grid = TestGrid::start();
    for protocol in ALL_PROTOCOLS {
        // Unauthenticated call to a protected method.
        let mut anon = grid.client(&grid.user).with_protocol(protocol);
        match anon.call("system.list_methods", vec![]) {
            Err(ClientError::Fault(f)) => assert_eq!(
                f.code,
                codes::NOT_AUTHENTICATED,
                "{protocol:?} wrong not-authenticated code"
            ),
            other => panic!("{protocol:?}: unexpected {other:?}"),
        }

        let mut client = grid.logged_in_client(&grid.user).with_protocol(protocol);
        // Unknown method on a known module (an unknown module is caught
        // earlier, by the ACL check, as ACCESS_DENIED).
        match client.call("echo.no_such_method", vec![]) {
            Err(ClientError::Fault(f)) => assert_eq!(
                f.code,
                codes::NO_SUCH_METHOD,
                "{protocol:?} wrong no-such-method code"
            ),
            other => panic!("{protocol:?}: unexpected {other:?}"),
        }
        // Parameter type mismatch.
        match client.call("echo.sum", vec![Value::from("x"), Value::Int(1)]) {
            Err(ClientError::Fault(f)) => assert_eq!(
                f.code,
                codes::BAD_PARAMS,
                "{protocol:?} wrong bad-params code"
            ),
            other => panic!("{protocol:?}: unexpected {other:?}"),
        }
    }
    grid.cleanup();
}

#[test]
fn binary_matches_xmlrpc_on_lossless_types() {
    // Bytes and DateTime survive XML-RPC and binary as typed values
    // (JSON-RPC flattens them to strings, which is why they are not in
    // the all-protocol suite).
    let grid = TestGrid::start();
    let payloads = [
        Value::Bytes((0..=255u8).collect()),
        Value::DateTime(clarens_wire::datetime::DateTime::new(2005, 6, 15, 14, 8, 55).unwrap()),
        Value::structure([
            ("data", Value::Bytes(vec![0, 159, 146, 150])),
            (
                "stamp",
                Value::DateTime(
                    clarens_wire::datetime::DateTime::new(1998, 7, 17, 0, 0, 1).unwrap(),
                ),
            ),
        ]),
    ];
    let mut xml = grid.logged_in_client(&grid.user);
    let mut bin = grid
        .logged_in_client(&grid.user)
        .with_protocol(Protocol::Binary);
    for payload in payloads {
        let via_xml = xml.call("echo.echo", vec![payload.clone()]).unwrap();
        let via_bin = bin.call("echo.echo", vec![payload.clone()]).unwrap();
        assert_eq!(via_xml, payload);
        assert_eq!(via_bin, payload);
    }
    grid.cleanup();
}

#[test]
fn disabled_binary_negotiates_down_to_xmlrpc() {
    let grid = TestGrid::start_with(GridOptions {
        binary_protocol: false,
        ..Default::default()
    });
    let mut client = grid
        .logged_in_client(&grid.user)
        .with_protocol(Protocol::Binary);
    // The first call hits 415, downgrades, and replays transparently.
    assert_eq!(
        client.call("echo.echo", vec![Value::Int(7)]).unwrap(),
        Value::Int(7)
    );
    assert_eq!(client.protocol_fallbacks(), 1);
    assert_eq!(client.protocol(), Protocol::XmlRpc);
    // Later calls speak XML-RPC directly — no repeated negotiation.
    client.call("echo.echo", vec![Value::Int(8)]).unwrap();
    assert_eq!(client.protocol_fallbacks(), 1);
    grid.cleanup();
}

#[test]
fn binary_requests_are_counted_in_telemetry() {
    let grid = TestGrid::start();
    let mut client = grid
        .logged_in_client(&grid.user)
        .with_protocol(Protocol::Binary);
    for i in 0..5 {
        client.call("echo.echo", vec![Value::Int(i)]).unwrap();
    }
    let mut admin = grid.logged_in_client(&grid.admin);
    let (status, body) = admin.get_page("/metrics").unwrap();
    assert_eq!(status, 200);
    let count: u64 = body
        .lines()
        .find_map(|l| l.strip_prefix("clarens_protocol_requests_total{protocol=\"binary\"} "))
        .expect("binary protocol counter exported")
        .trim()
        .parse()
        .unwrap();
    assert!(count >= 5, "binary requests under-counted: {count}");
    grid.cleanup();
}
