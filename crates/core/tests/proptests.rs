//! Property tests for the core security machinery: ACL evaluation
//! invariants, VO hierarchy laws, and path normalization safety.

use std::sync::Arc;

use proptest::prelude::*;

use clarens::acl::{Acl, AclEngine, Order};
use clarens::paths;
use clarens::vo::VoManager;
use clarens_db::Store;
use clarens_pki::dn::DistinguishedName;

fn dn_strategy() -> impl Strategy<Value = DistinguishedName> {
    proptest::collection::vec("[A-Za-z0-9]{1,6}", 1..4).prop_map(|parts| {
        let text: String = parts
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let tag = match i {
                    0 => "O",
                    1 => "OU",
                    _ => "CN",
                };
                format!("/{tag}={p}")
            })
            .collect();
        DistinguishedName::parse(&text).unwrap()
    })
}

fn method_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-z]{1,5}", 1..4).prop_map(|parts| parts.join("."))
}

fn fresh_engine() -> (AclEngine, VoManager) {
    let store = Arc::new(Store::in_memory());
    let vo = VoManager::new(Arc::clone(&store), &[]);
    (AclEngine::new(store), vo)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Default deny: with no ACLs installed, nobody may call anything.
    #[test]
    fn no_acl_means_deny(dn in dn_strategy(), method in method_strategy()) {
        let (engine, vo) = fresh_engine();
        prop_assert!(!engine.check_method(&method, &dn, &vo));
    }

    /// A deny entry at the most specific level always wins, regardless of
    /// what grants exist at higher levels (the paper's "unless
    /// specifically denied at the lower level").
    #[test]
    fn specific_deny_always_wins(
        dn in dn_strategy(),
        method in method_strategy(),
    ) {
        let (engine, vo) = fresh_engine();
        // Grant everything at every ancestor level...
        let mut node = method.clone();
        while let Some(pos) = node.rfind('.') {
            node = node[..pos].to_owned();
            engine.set_method_acl(&node, &Acl::allow_dn("*"));
        }
        engine.set_method_acl(&method, &Acl::allow_dn("*"));
        prop_assert!(engine.check_method(&method, &dn, &vo));
        // ...then deny this DN at the exact method.
        engine.set_method_acl(
            &method,
            &Acl { deny_dns: vec![dn.to_string()], allow_dns: vec!["*".into()],
                   order: Order::AllowDeny, ..Default::default() },
        );
        prop_assert!(!engine.check_method(&method, &dn, &vo));
    }

    /// Granting at a prefix node grants every method beneath it.
    #[test]
    fn prefix_grant_covers_descendants(
        dn in dn_strategy(),
        module in "[a-z]{1,5}",
        suffix in proptest::collection::vec("[a-z]{1,5}", 1..3),
    ) {
        let (engine, vo) = fresh_engine();
        engine.set_method_acl(&module, &Acl::allow_dn(dn.to_string()));
        let method = format!("{module}.{}", suffix.join("."));
        prop_assert!(engine.check_method(&method, &dn, &vo));
        // A different module stays denied.
        let unrelated = format!("zz{module}.x");
        prop_assert!(!engine.check_method(&unrelated, &dn, &vo));
    }

    /// An ACL mentioning only *other* DNs never grants access (no
    /// accidental matches from prefix logic).
    #[test]
    fn unrelated_grant_does_not_leak(
        dn in dn_strategy(),
        method in method_strategy(),
    ) {
        let (engine, vo) = fresh_engine();
        // A DN guaranteed not to be a prefix of `dn`.
        let other = format!("/C=XX/O=unrelated-{}", dn.attributes.len());
        engine.set_method_acl(&method, &Acl::allow_dn(other));
        prop_assert!(!engine.check_method(&method, &dn, &vo));
    }

    /// VO hierarchy: membership in a group implies membership in every
    /// descendant group, never in siblings or ancestors.
    #[test]
    fn vo_membership_flows_downward_only(
        member in dn_strategy(),
        levels in 1usize..4,
    ) {
        let store = Arc::new(Store::in_memory());
        let admin = DistinguishedName::parse("/O=root/CN=admin").unwrap();
        let vo = VoManager::new(Arc::clone(&store), &[admin.to_string()]);

        // Build a chain g, g.s, g.s.s... plus a sibling branch.
        let mut name = "g".to_string();
        vo.create_group(&admin, &name).unwrap();
        for _ in 0..levels {
            let child = format!("{name}.s");
            vo.create_group(&admin, &child).unwrap();
            name = child;
        }
        vo.create_group(&admin, "other").unwrap();

        // Add the member at the middle of the chain.
        let middle = "g.s";
        if levels >= 1 {
            vo.add_member(&admin, middle, &member.to_string()).unwrap();
            // Member of the middle and everything below it.
            prop_assert!(vo.is_member(middle, &member));
            prop_assert!(vo.is_member(&name, &member)); // deepest
            // Not of the parent, not of the sibling branch.
            prop_assert!(!vo.is_member("g", &member) || member == admin);
            prop_assert!(!vo.is_member("other", &member) || member == admin);
        }
    }

    /// Path normalization never lets a resolved path escape the root.
    #[test]
    fn resolved_paths_stay_under_root(path in "[a-zA-Z0-9./_-]{0,40}") {
        let root = std::path::Path::new("/srv/clarens-root");
        if let Some(resolved) = paths::resolve(root, &path) {
            prop_assert!(
                resolved.starts_with(root),
                "{path:?} resolved outside root: {resolved:?}"
            );
            // And no `..` survives in the result.
            prop_assert!(resolved.components().all(|c| c.as_os_str() != ".."));
        }
    }

    /// Canonicalization is idempotent.
    #[test]
    fn canonical_idempotent(path in "[a-zA-Z0-9./_-]{0,40}") {
        if let Some(canonical) = paths::canonical(&path) {
            prop_assert_eq!(paths::canonical(&canonical).unwrap(), canonical);
        }
    }

    /// The shell tokenizer never panics and round-trips simple tokens.
    #[test]
    fn shell_tokenizer_total(line in "\\PC{0,60}") {
        let _ = clarens::services::shell::interp::tokenize(&line);
    }

    #[test]
    fn shell_tokenizer_plain_words(words in proptest::collection::vec("[a-z0-9/._-]{1,8}", 1..6)) {
        let line = words.join(" ");
        let tokens = clarens::services::shell::interp::tokenize(&line).unwrap();
        prop_assert_eq!(tokens, words);
    }

    /// Config parser is total (never panics) on arbitrary input.
    #[test]
    fn config_parser_total(text in "\\PC{0,200}") {
        let _ = clarens::ClarensConfig::parse(&text);
    }
}
