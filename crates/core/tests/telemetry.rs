//! End-to-end tests for the observability plane: ACL gating of the export
//! surfaces, per-method latency capture under real traffic, slow-trace
//! collection, and the counters-only mode.

use clarens::client::ClientError;
use clarens::testkit::{GridOptions, TestGrid};
use clarens_wire::fault::codes;
use clarens_wire::Value;

fn assert_denied(result: Result<Value, ClientError>) {
    match result {
        Err(ClientError::Fault(f)) => assert_eq!(f.code, codes::ACCESS_DENIED),
        other => panic!("expected access denied, got {other:?}"),
    }
}

/// The server finishes a request's telemetry just after the response bytes
/// reach the socket, so a client can observe counters a moment early —
/// poll briefly instead of asserting instantly.
fn wait_until(mut cond: impl FnMut() -> bool) {
    for _ in 0..200 {
        if cond() {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    panic!("condition not reached within 1s");
}

/// `GET /metrics` is admin-only: anonymous 401, plain user 403, admin 200
/// with live numbers in the exposition format.
#[test]
fn metrics_endpoint_acl_gated() {
    let grid = TestGrid::start();
    let mut user = grid.logged_in_client(&grid.user);
    for i in 0..4 {
        user.call("echo.echo", vec![Value::Int(i)]).unwrap();
    }

    let mut anonymous = grid.client(&grid.user);
    let (status, _) = anonymous.get_page("/metrics").unwrap();
    assert_eq!(status, 401);

    let (status, _) = user.get_page("/metrics").unwrap();
    assert_eq!(status, 403);

    let mut admin = grid.logged_in_client(&grid.admin);
    let (status, body) = admin.get_page("/metrics").unwrap();
    assert_eq!(status, 200);
    let requests: u64 = body
        .lines()
        .find_map(|l| l.strip_prefix("clarens_requests_total "))
        .expect("clarens_requests_total line")
        .parse()
        .unwrap();
    assert!(requests >= 5, "echo traffic + login must be counted");
    assert!(body.contains("clarens_method_calls_total{method=\"echo.echo\"} 4"));
    assert!(body.contains("clarens_phase_latency_us{phase=\"dispatch\",quantile=\"0.5\"}"));
    assert!(body.contains("clarens_db_lookups"));
    grid.cleanup();
}

/// `system.metrics` mirrors the endpoint's gating and reports the full
/// snapshot: HTTP counters, per-protocol counts, phases, methods, gauges.
#[test]
fn system_metrics_rpc_acl_gated_and_complete() {
    let grid = TestGrid::start();
    let mut user = grid.logged_in_client(&grid.user);
    for i in 0..3 {
        user.call("echo.echo", vec![Value::Int(i)]).unwrap();
    }
    assert_denied(user.call("system.metrics", vec![]));

    let mut admin = grid.logged_in_client(&grid.admin);
    let metrics = admin.call("system.metrics", vec![]).unwrap();
    let http = metrics.get("http").unwrap();
    assert!(http.get("requests").unwrap().as_int().unwrap() >= 4);
    let protocols = metrics.get("protocols").unwrap();
    assert!(
        protocols
            .get("xmlrpc")
            .unwrap()
            .get("requests")
            .unwrap()
            .as_int()
            .unwrap()
            > 0
    );
    let phases = metrics.get("phases").unwrap();
    for phase in [
        "parse",
        "auth",
        "acl",
        "dispatch",
        "serialize",
        "write",
        "total",
    ] {
        let snap = phases.get(phase).unwrap();
        assert!(snap.get("count").unwrap().as_int().is_some(), "{phase}");
        assert!(snap.get("p99_us").unwrap().as_int().is_some(), "{phase}");
    }
    let echo = metrics.get("methods").unwrap().get("echo.echo").unwrap();
    assert_eq!(echo.get("calls").unwrap().as_int().unwrap(), 3);
    assert_eq!(echo.get("faults").unwrap().as_int().unwrap(), 0);
    let latency = echo.get("latency").unwrap();
    assert_eq!(latency.get("count").unwrap().as_int().unwrap(), 3);
    assert!(latency.get("max_us").unwrap().as_int().unwrap() > 0);
    let gauges = metrics.get("gauges").unwrap();
    assert!(gauges.get("db.lookups").unwrap().as_int().unwrap() > 0);
    grid.cleanup();
}

/// Phase histograms observe every request and phase sums stay below the
/// end-to-end total (spans nest inside the request window).
#[test]
fn phase_latencies_recorded_under_traffic() {
    let grid = TestGrid::start();
    let mut user = grid.logged_in_client(&grid.user);
    for i in 0..10 {
        user.call("echo.echo", vec![Value::Int(i)]).unwrap();
    }
    let telemetry = &grid.core().telemetry;
    // login (system.auth) + 10 echoes at minimum.
    wait_until(|| telemetry.phase_snapshots().last().unwrap().1.count >= 11);
    let phases = telemetry.phase_snapshots();
    let total = &phases.last().unwrap().1;
    assert!(total.count >= 11);
    // Sub-microsecond phases round to 0µs and are skipped, so dispatch
    // sees at least the RSA-heavy system.auth call, not necessarily all
    // echoes; what is recorded can never exceed the end-to-end total.
    let dispatch = &phases[clarens_telemetry::Phase::Dispatch as usize].1;
    assert!(dispatch.count >= 1);
    assert!(dispatch.sum <= total.sum, "phase sum exceeds total");
    let methods = telemetry.methods_snapshot();
    let echo = methods
        .iter()
        .find(|(name, _)| name == "echo.echo")
        .expect("echo.echo stats");
    assert_eq!(echo.1.calls.get(), 10);
    assert_eq!(echo.1.latency.snapshot().count, 10);
    grid.cleanup();
}

/// With the slow threshold forced to zero every request lands in the
/// ring; `system.trace_tail` returns them newest-first with phase data.
#[test]
fn trace_tail_returns_slow_requests() {
    let grid = TestGrid::start();
    grid.core().telemetry.set_slow_threshold_us(0);
    let mut user = grid.logged_in_client(&grid.user);
    for i in 0..5 {
        user.call("echo.echo", vec![Value::Int(i)]).unwrap();
    }
    assert_denied(user.call("system.trace_tail", vec![]));

    let mut admin = grid.logged_in_client(&grid.admin);
    let tail = admin
        .call("system.trace_tail", vec![Value::Int(3)])
        .unwrap();
    let traces = tail.as_array().unwrap();
    assert_eq!(traces.len(), 3);
    // Newest first: strictly decreasing sequence numbers.
    let seqs: Vec<i64> = traces
        .iter()
        .map(|t| t.get("seq").unwrap().as_int().unwrap())
        .collect();
    assert!(
        seqs.windows(2).all(|w| w[0] > w[1]),
        "not newest-first: {seqs:?}"
    );
    let newest = &traces[0];
    // The newest slow request is the admin's own trace_tail denial or
    // login; all entries carry a method, protocol, and phase breakdown.
    for trace in traces {
        assert!(!trace.get("method").unwrap().as_str().unwrap().is_empty());
        assert_eq!(trace.get("protocol").unwrap().as_str().unwrap(), "xmlrpc");
        assert!(trace.get("phases").unwrap().get("dispatch").is_some());
    }
    assert!(newest.get("total_us").unwrap().as_int().unwrap() >= 0);
    grid.cleanup();
}

/// Counters-only mode: `telemetry: false` keeps request/method counts
/// flowing (the CI smoke test depends on them) but records no latency
/// samples and no slow traces.
#[test]
fn disabled_timing_still_counts_requests() {
    let grid = TestGrid::start_with(GridOptions {
        telemetry: false,
        ..Default::default()
    });
    grid.core().telemetry.set_slow_threshold_us(0);
    let mut user = grid.logged_in_client(&grid.user);
    for i in 0..4 {
        user.call("echo.echo", vec![Value::Int(i)]).unwrap();
    }
    let telemetry = &grid.core().telemetry;
    assert!(!telemetry.timing_enabled());
    wait_until(|| telemetry.http.requests.get() >= 5);
    let echo = telemetry
        .methods_snapshot()
        .into_iter()
        .find(|(name, _)| name == "echo.echo")
        .expect("echo.echo stats");
    assert_eq!(echo.1.calls.get(), 4);
    assert_eq!(echo.1.latency.snapshot().count, 0);
    assert_eq!(telemetry.total_snapshot().count, 0);
    assert_eq!(telemetry.trace_tail(10).len(), 0);
    grid.cleanup();
}

/// The migrated `system.stats` keeps its shape and now reports WAL syncs.
#[test]
fn stats_reports_wal_syncs() {
    let db = std::env::temp_dir().join(format!("clarens-telemetry-wal-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&db);
    let grid = TestGrid::start_with(GridOptions {
        db_path: Some(db.clone()),
        ..Default::default()
    });
    let mut admin = grid.logged_in_client(&grid.admin);
    grid.core().store.sync().unwrap();
    let stats = admin.call("system.stats", vec![]).unwrap();
    let db_stats = stats.get("db").unwrap();
    assert!(db_stats.get("wal_syncs").unwrap().as_int().unwrap() > 0);
    assert!(db_stats.get("lookups").unwrap().as_int().unwrap() > 0);
    grid.cleanup();
    let _ = std::fs::remove_file(&db);
}
