//! End-to-end integration tests for the Clarens core: real TCP, real
//! protocols, the complete per-request path (session check → ACL check →
//! dispatch), exactly the flow the paper's Figure-4 benchmark exercises.

use clarens::acl::{Acl, FileAcl};
use clarens::testkit::{dn, now, GridOptions, TestGrid};
use clarens::ClientError;
use clarens_pki::rsa;
use clarens_wire::fault::codes;
use clarens_wire::{Protocol, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn public_methods_work_without_auth() {
    let grid = TestGrid::start();
    let mut client = grid.client(&grid.user);
    assert_eq!(
        client.call("system.ping", vec![]).unwrap(),
        Value::from("pong")
    );
    let version = client.call("system.version", vec![]).unwrap();
    assert!(version.as_str().unwrap().starts_with("clarens-rs/"));
    grid.cleanup();
}

#[test]
fn protected_methods_require_auth() {
    let grid = TestGrid::start();
    let mut client = grid.client(&grid.user);
    match client.call("system.list_methods", vec![]) {
        Err(ClientError::Fault(f)) => assert_eq!(f.code, codes::NOT_AUTHENTICATED),
        other => panic!("unexpected {other:?}"),
    }
    grid.cleanup();
}

#[test]
fn certificate_login_and_figure4_workload() {
    let grid = TestGrid::start();
    let mut client = grid.logged_in_client(&grid.user);
    assert!(client.session_id().is_some());

    // The exact Figure-4 call: list_methods returning 30+ strings.
    let methods = client.list_methods().unwrap();
    assert!(
        methods.len() > 30,
        "only {} methods registered",
        methods.len()
    );
    assert!(methods.iter().any(|m| m == "system.list_methods"));
    assert!(methods.iter().any(|m| m == "file.read"));

    // whoami reflects the authenticated identity.
    let who = client.call("system.whoami", vec![]).unwrap();
    assert_eq!(
        who.as_str().unwrap(),
        grid.user.certificate.subject.to_string()
    );
    grid.cleanup();
}

#[test]
fn all_three_protocols_serve_the_same_service() {
    let grid = TestGrid::start();
    for protocol in [Protocol::XmlRpc, Protocol::Soap, Protocol::JsonRpc] {
        let mut client = grid.client(&grid.user).with_protocol(protocol);
        client
            .login()
            .unwrap_or_else(|e| panic!("login over {protocol:?}: {e}"));
        let echo = client
            .call("echo.echo", vec![Value::from("grid")])
            .unwrap_or_else(|e| panic!("echo over {protocol:?}: {e}"));
        assert_eq!(echo, Value::from("grid"), "{protocol:?}");
        let sum = client
            .call("echo.sum", vec![Value::Int(20), Value::Int(22)])
            .unwrap();
        assert_eq!(sum, Value::Int(42), "{protocol:?}");
    }
    grid.cleanup();
}

#[test]
fn sessions_are_transferable_and_revocable() {
    let grid = TestGrid::start();
    let mut client = grid.logged_in_client(&grid.user);
    let session = client.session_id().unwrap().to_owned();

    // The session id works from a completely fresh connection (stateless
    // HTTP, state on the server — paper §2).
    let mut other = grid.client(&grid.user);
    other.set_session(session.clone());
    assert!(other.call("system.whoami", vec![]).is_ok());

    // Logout revokes it for everyone.
    assert!(client.logout().unwrap());
    match other.call("system.whoami", vec![]) {
        Err(ClientError::Fault(f)) => assert_eq!(f.code, codes::NOT_AUTHENTICATED),
        other => panic!("unexpected {other:?}"),
    }
    grid.cleanup();
}

#[test]
fn expired_auth_challenge_rejected() {
    let grid = TestGrid::start();
    let mut client = grid.client(&grid.user);
    let stale = now() - 10_000;
    let signature = grid
        .user
        .key
        .sign(clarens::services::system::auth_challenge(stale).as_bytes());
    let result = client.call(
        "system.auth",
        vec![
            Value::Array(vec![Value::from(grid.user.certificate.to_text())]),
            Value::Int(stale),
            Value::Bytes(signature),
        ],
    );
    match result {
        Err(ClientError::Fault(f)) => {
            assert_eq!(f.code, codes::NOT_AUTHENTICATED);
            assert!(f.message.contains("timestamp"), "{}", f.message);
        }
        other => panic!("unexpected {other:?}"),
    }
    grid.cleanup();
}

#[test]
fn forged_chain_rejected() {
    let grid = TestGrid::start();
    // Credential signed by a different CA.
    let t = now();
    let mut rng = StdRng::seed_from_u64(999);
    let rogue_ca =
        clarens_pki::CertificateAuthority::new(&mut rng, dn("/O=rogue/CN=CA"), t - 3600, 365);
    let kp = rsa::generate(&mut rng, rsa::DEFAULT_KEY_BITS);
    let rogue = clarens_pki::Credential {
        certificate: rogue_ca.issue(dn("/O=rogue/CN=spy"), &kp.public, t - 3600, 30),
        key: kp.private,
        chain: vec![],
    };
    let mut client = grid.client(&rogue);
    match client.login() {
        Err(ClientError::Fault(f)) => assert_eq!(f.code, codes::NOT_AUTHENTICATED),
        other => panic!("unexpected {other:?}"),
    }
    grid.cleanup();
}

#[test]
fn acl_deny_overrides_grant_end_to_end() {
    let grid = TestGrid::start();
    // Deny uma the shell module at the module level (ACL admin via admin).
    let mut admin = grid.logged_in_client(&grid.admin);
    admin
        .call(
            "acl.set_method",
            vec![
                Value::from("shell"),
                Value::structure([
                    ("order", Value::from("allow,deny")),
                    ("allow_dns", Value::Array(vec![Value::from("*")])),
                    (
                        "deny_dns",
                        Value::Array(vec![Value::from(grid.user.certificate.subject.to_string())]),
                    ),
                ]),
            ],
        )
        .unwrap();

    let mut user = grid.logged_in_client(&grid.user);
    match user.call("shell.cmd_info", vec![]) {
        Err(ClientError::Fault(f)) => assert_eq!(f.code, codes::ACCESS_DENIED),
        other => panic!("unexpected {other:?}"),
    }
    // Other modules still allowed.
    assert!(user.call("echo.echo", vec![Value::Int(1)]).is_ok());
    // The admin can still use the shell.
    assert!(admin.call("shell.cmd_info", vec![]).is_ok());
    grid.cleanup();
}

#[test]
fn vo_management_over_rpc() {
    let grid = TestGrid::start();
    let mut admin = grid.logged_in_client(&grid.admin);
    admin
        .call("vo.create_group", vec![Value::from("cms")])
        .unwrap();
    admin
        .call("vo.create_group", vec![Value::from("cms.analysis")])
        .unwrap();
    admin
        .call(
            "vo.add_member",
            vec![
                Value::from("cms"),
                Value::from("/O=doesciencegrid.org/OU=People"),
            ],
        )
        .unwrap();

    // Hierarchical membership visible over RPC.
    let is_member = admin
        .call(
            "vo.is_member",
            vec![
                Value::from("cms.analysis"),
                Value::from(grid.user.certificate.subject.to_string()),
            ],
        )
        .unwrap();
    assert_eq!(is_member, Value::Bool(true));

    // A non-admin cannot mutate.
    let mut user = grid.logged_in_client(&grid.user);
    match user.call("vo.create_group", vec![Value::from("rogue")]) {
        Err(ClientError::Fault(f)) => assert_eq!(f.code, codes::ACCESS_DENIED),
        other => panic!("unexpected {other:?}"),
    }
    // But can read.
    let groups = user.call("vo.list_groups", vec![]).unwrap();
    let names: Vec<&str> = groups
        .as_array()
        .unwrap()
        .iter()
        .filter_map(|v| v.as_str())
        .collect();
    assert!(names.contains(&"cms"));
    grid.cleanup();
}

#[test]
fn file_service_end_to_end() {
    let grid = TestGrid::start();
    grid.write_file("/data/events.dat", b"0123456789abcdef");
    grid.write_file("/data/run2/more.dat", b"xyz");
    let mut client = grid.logged_in_client(&grid.user);

    // file.read with offset/length (the paper's exact signature).
    assert_eq!(client.file_read("/data/events.dat", 0, 4).unwrap(), b"0123");
    assert_eq!(
        client.file_read("/data/events.dat", 10, 100).unwrap(),
        b"abcdef"
    );
    assert_eq!(client.file_read("/data/events.dat", 16, 4).unwrap(), b"");

    // file.ls
    let listing = client.call("file.ls", vec![Value::from("/data")]).unwrap();
    let names: Vec<String> = listing
        .as_array()
        .unwrap()
        .iter()
        .filter_map(|e| e.get("name").and_then(Value::as_str).map(str::to_owned))
        .collect();
    assert_eq!(names, vec!["events.dat", "run2"]);

    // file.stat
    let stat = client
        .call("file.stat", vec![Value::from("/data/events.dat")])
        .unwrap();
    assert_eq!(stat.get("size").unwrap().as_int(), Some(16));
    assert_eq!(stat.get("type").unwrap().as_str(), Some("file"));

    // file.md5 — verifiable against our own MD5.
    let md5 = client
        .call("file.md5", vec![Value::from("/data/events.dat")])
        .unwrap();
    assert_eq!(
        md5.as_str().unwrap(),
        clarens_pki::md5::md5_hex(b"0123456789abcdef")
    );

    // file.find
    let found = client
        .call("file.find", vec![Value::from("/"), Value::from(".dat")])
        .unwrap();
    let paths: Vec<&str> = found
        .as_array()
        .unwrap()
        .iter()
        .filter_map(Value::as_str)
        .collect();
    assert_eq!(paths, vec!["/data/events.dat", "/data/run2/more.dat"]);

    // file.put + readback.
    client
        .call(
            "file.put",
            vec![
                Value::from("/data/new.txt"),
                Value::Bytes(b"written".to_vec()),
                Value::Bool(false),
            ],
        )
        .unwrap();
    assert_eq!(
        client.file_read("/data/new.txt", 0, 100).unwrap(),
        b"written"
    );

    // HTTP GET streaming path returns identical bytes.
    assert_eq!(
        client.http_get_file("/data/events.dat").unwrap(),
        b"0123456789abcdef"
    );

    // Escapes rejected at the RPC layer.
    match client.file_read("/../../../etc/passwd", 0, 10) {
        Err(ClientError::Fault(f)) => assert_eq!(f.code, codes::BAD_PARAMS),
        other => panic!("unexpected {other:?}"),
    }
    grid.cleanup();
}

#[test]
fn file_acl_enforced_on_get_and_rpc() {
    let grid = TestGrid::start();
    grid.write_file("/secret/keys.txt", b"very secret");
    let core = grid.core();
    // Deny uma read under /secret (overrides the permissive root grant).
    core.acl.set_file_acl(
        "/secret",
        &FileAcl {
            read: Acl::deny_dn(grid.user.certificate.subject.to_string()),
            write: Acl::default(),
        },
    );
    let mut user = grid.logged_in_client(&grid.user);
    match user.file_read("/secret/keys.txt", 0, 10) {
        Err(ClientError::Fault(f)) => assert_eq!(f.code, codes::ACCESS_DENIED),
        other => panic!("unexpected {other:?}"),
    }
    match user.http_get_file("/secret/keys.txt") {
        Err(ClientError::Http(403, _)) => {}
        other => panic!("unexpected {other:?}"),
    }
    // Admin unaffected.
    let mut admin = grid.logged_in_client(&grid.admin);
    assert_eq!(
        admin.file_read("/secret/keys.txt", 0, 100).unwrap(),
        b"very secret"
    );
    grid.cleanup();
}

#[test]
fn unauthenticated_get_rejected_and_missing_file_is_xml_error() {
    let grid = TestGrid::start();
    grid.write_file("/a.txt", b"x");
    let mut anon = grid.client(&grid.user); // no login
    match anon.http_get_file("/a.txt") {
        Err(ClientError::Http(401, _)) => {}
        other => panic!("unexpected {other:?}"),
    }
    let mut user = grid.logged_in_client(&grid.user);
    match user.http_get_file("/ghost.txt") {
        Err(ClientError::Http(404, body)) => {
            // Paper: "GET requests return a file or an XML-encoded error".
            assert!(body.contains("<error"), "{body}");
        }
        other => panic!("unexpected {other:?}"),
    }
    grid.cleanup();
}

#[test]
fn shell_service_end_to_end() {
    let grid = TestGrid::start();
    let mut user = grid.logged_in_client(&grid.user);

    // cmd_info reports the mapped system user and sandbox.
    let info = user.call("shell.cmd_info", vec![]).unwrap();
    assert_eq!(info.get("user").unwrap().as_str(), Some("uma"));
    assert_eq!(info.get("sandbox").unwrap().as_str(), Some("/uma"));

    // Commands execute in the sandbox.
    let run = |client: &mut clarens::ClarensClient, cmd: &str| {
        client.call("shell.cmd", vec![Value::from(cmd)]).unwrap()
    };
    assert_eq!(
        run(&mut user, "echo hello").get("stdout").unwrap().as_str(),
        Some("hello\n")
    );
    run(&mut user, "mkdir /work");
    run(&mut user, "echo data > /work/out.txt");
    assert_eq!(
        run(&mut user, "cat /work/out.txt")
            .get("stdout")
            .unwrap()
            .as_str(),
        Some("data\n")
    );

    // Escape attempts fail with nonzero status.
    let escape = run(&mut user, "cat /../../etc/passwd");
    assert_eq!(escape.get("status").unwrap().as_int(), Some(1));

    // The admin maps via the group rule to a *different* sandbox.
    let mut admin = grid.logged_in_client(&grid.admin);
    let info = admin.call("shell.cmd_info", vec![]).unwrap();
    assert_eq!(info.get("user").unwrap().as_str(), Some("ada"));
    let ls = run(&mut admin, "ls /");
    assert!(!ls.get("stdout").unwrap().as_str().unwrap().contains("work"));

    // Sandbox is visible to the file service through the shell root: the
    // file written above exists under <data>/shell/uma/work/out.txt.
    let on_disk = grid.data_dir.join("shell/uma/work/out.txt");
    assert_eq!(std::fs::read_to_string(on_disk).unwrap(), "data\n");
    grid.cleanup();
}

#[test]
fn proxy_store_login_attach_cycle() {
    let grid = TestGrid::start();
    let mut user = grid.logged_in_client(&grid.user);

    // Build a delegation proxy client-side and store it under a password.
    let mut rng = StdRng::seed_from_u64(7);
    let proxy = grid.user.delegate_proxy(&mut rng, now() - 5, 12 * 3600);
    let mut chain = vec![proxy.certificate.clone()];
    chain.extend(proxy.chain.clone());
    let payload = clarens::services::proxy::chain_payload(&chain, "(key withheld in test)");
    user.call(
        "proxy.store",
        vec![Value::from("s3cret"), Value::from(payload.clone())],
    )
    .unwrap();

    // Retrieve round-trips.
    let back = user
        .call("proxy.retrieve", vec![Value::from("s3cret")])
        .unwrap();
    assert_eq!(back.as_str().unwrap(), payload);

    // Wrong password refused.
    match user.call("proxy.retrieve", vec![Value::from("wrong")]) {
        Err(ClientError::Fault(f)) => assert_eq!(f.code, codes::NOT_AUTHENTICATED),
        other => panic!("unexpected {other:?}"),
    }

    // proxy.login from a completely fresh, unauthenticated client: "only
    // knowing the certificate distinguished name and password".
    let mut fresh = grid.client(&grid.user);
    let session = fresh
        .login_proxy(&grid.user.certificate.subject.to_string(), "s3cret")
        .unwrap();
    assert!(!session.is_empty());
    let who = fresh.call("system.whoami", vec![]).unwrap();
    assert_eq!(
        who.as_str().unwrap(),
        grid.user.certificate.subject.to_string()
    );

    // Attach to the existing session (renewal).
    assert_eq!(
        user.call("proxy.attach", vec![Value::from("s3cret")])
            .unwrap(),
        Value::Bool(true)
    );

    // Remove, then login fails.
    assert_eq!(
        user.call("proxy.remove", vec![]).unwrap(),
        Value::Bool(true)
    );
    let mut late = grid.client(&grid.user);
    assert!(late
        .login_proxy(&grid.user.certificate.subject.to_string(), "s3cret")
        .is_err());
    grid.cleanup();
}

#[test]
fn tls_transport_authenticates_without_login() {
    let grid = TestGrid::start_with(GridOptions {
        tls: true,
        seed: 0x715,
        ..Default::default()
    });
    let mut client = grid.tls_client(&grid.user);
    // No login() call: identity flows from the TLS handshake.
    let who = client.call("system.whoami", vec![]).unwrap();
    assert_eq!(
        who.as_str().unwrap(),
        grid.user.certificate.subject.to_string()
    );
    let methods = client.list_methods().unwrap();
    assert!(methods.len() > 30);
    grid.cleanup();
}

#[test]
fn proxy_credential_over_tls_acts_as_user() {
    let grid = TestGrid::start_with(GridOptions {
        tls: true,
        seed: 0x716,
        ..Default::default()
    });
    let mut rng = StdRng::seed_from_u64(11);
    let proxy = grid.user.delegate_proxy(&mut rng, now() - 5, 3600);
    let mut client = grid.tls_client(&proxy);
    let who = client.call("system.whoami", vec![]).unwrap();
    // Delegation: the proxy acts as the *user*.
    assert_eq!(
        who.as_str().unwrap(),
        grid.user.certificate.subject.to_string()
    );
    grid.cleanup();
}

#[test]
fn portal_pages_render() {
    let grid = TestGrid::start();
    grid.write_file("/data/a.root", b"1234");
    let mut client = grid.logged_in_client(&grid.user);

    let (status, html) = client.get_page("/").unwrap();
    assert_eq!(status, 200);
    assert!(html.contains("Clarens portal"));
    assert!(html.contains("Uma User"), "{html}");

    let (status, html) = client.get_page("/portal/files?path=/data").unwrap();
    assert_eq!(status, 200);
    assert!(html.contains("a.root"), "{html}");

    let (status, html) = client.get_page("/portal/vo").unwrap();
    assert_eq!(status, 200);
    assert!(html.contains("admins"), "{html}");

    let (status, html) = client.get_page("/portal/methods").unwrap();
    assert_eq!(status, 200);
    assert!(html.contains("file.read"), "{html}");

    // The ACL management view lists installed nodes (§3 "access control
    // management").
    let (status, html) = client.get_page("/portal/acl").unwrap();
    assert_eq!(status, 200);
    assert!(
        html.contains("allow,deny") || html.contains("deny,allow"),
        "{html}"
    );
    assert!(html.contains("system"), "{html}");

    // Unauthenticated portal access degrades gracefully.
    let mut anon = grid.client(&grid.user);
    let (status, html) = anon.get_page("/portal/files").unwrap();
    assert_eq!(status, 200);
    assert!(html.contains("Authenticate"), "{html}");

    let (status, _) = client.get_page("/portal/nonsense").unwrap();
    assert_eq!(status, 404);
    grid.cleanup();
}

#[test]
fn sessions_survive_server_restart() {
    // The headline persistence property, over a real restart with a
    // persistent DB.
    let db = std::env::temp_dir().join(format!("clarens-restart-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&db);

    let grid = TestGrid::start_with(GridOptions {
        db_path: Some(db.clone()),
        seed: 0x9999,
        ..Default::default()
    });
    let mut client = grid.logged_in_client(&grid.user);
    let session = client.session_id().unwrap().to_owned();
    assert!(client.call("system.whoami", vec![]).is_ok());
    grid.cleanup(); // full server shutdown

    let grid2 = TestGrid::start_with(GridOptions {
        db_path: Some(db.clone()),
        seed: 0x9999,
        ..Default::default()
    });
    let mut revived = grid2.client(&grid2.user);
    revived.set_session(session);
    // No re-authentication: the old session works on the new server.
    let who = revived.call("system.whoami", vec![]).unwrap();
    assert_eq!(
        who.as_str().unwrap(),
        grid2.user.certificate.subject.to_string()
    );
    grid2.cleanup();
    let _ = std::fs::remove_file(&db);
}

#[test]
fn malformed_bodies_get_parse_faults_not_hangs() {
    let grid = TestGrid::start();
    let mut http = clarens_httpd::HttpClient::new(grid.addr());

    // Unparseable XML-RPC.
    let resp = http
        .post("/clarens", "text/xml", "<methodCall><broken")
        .unwrap();
    assert_eq!(resp.status, 200);
    let text = String::from_utf8_lossy(&resp.body);
    assert!(text.contains("<fault>"), "{text}");

    // Unparseable JSON.
    let resp = http
        .post("/clarens", "application/json", "{not json")
        .unwrap();
    assert_eq!(resp.status, 200);
    let text = String::from_utf8_lossy(&resp.body);
    assert!(text.contains("error"), "{text}");

    // Undeterminable protocol.
    let resp = http.post("/clarens", "text/plain", "hello").unwrap();
    assert_eq!(resp.status, 400);

    // Unknown method gets a NO_SUCH_METHOD fault (after auth).
    let mut client = grid.logged_in_client(&grid.user);
    match client.call("nonexistent.method", vec![]) {
        Err(ClientError::Fault(f)) => {
            // ACL denies first (no grant for the unknown module) — either
            // fault code is acceptable behaviour; assert it IS a fault.
            assert!(f.code == codes::NO_SUCH_METHOD || f.code == codes::ACCESS_DENIED);
        }
        other => panic!("unexpected {other:?}"),
    }
    grid.cleanup();
}

#[test]
fn concurrent_clients_like_figure4() {
    // A miniature of the Figure-4 setup: N concurrent clients hammering
    // system.list_methods over keep-alive connections.
    let grid = TestGrid::start();
    let addr = grid.addr();
    let session = {
        let client = grid.logged_in_client(&grid.user);
        client.session_id().unwrap().to_owned()
    };
    let mut handles = Vec::new();
    for _ in 0..8 {
        let addr = addr.clone();
        let session = session.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = clarens::ClarensClient::new(addr);
            client.set_session(session);
            for _ in 0..50 {
                let methods = client.list_methods().expect("list_methods");
                assert!(methods.len() > 30);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // 400 RPC requests + 1 auth all served without error.
    assert!(
        grid.server
            .stats()
            .requests
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 401
    );
    grid.cleanup();
}

#[test]
fn im_messaging_between_identities() {
    // The §6 future-work IM extension: asynchronous messages between a
    // "job" (logged in as uma) and a "user" (ada), queued server-side.
    let grid = TestGrid::start();
    let mut job = grid.logged_in_client(&grid.user);
    let mut operator = grid.logged_in_client(&grid.admin);
    let operator_dn = grid.admin.certificate.subject.to_string();
    let job_dn = grid.user.certificate.subject.to_string();

    // The job reports progress; the operator is offline at the time.
    for step in 0..3 {
        let seq = job
            .call(
                "im.send",
                vec![
                    Value::from(operator_dn.clone()),
                    Value::from(format!("step {step} done")),
                ],
            )
            .unwrap();
        assert!(seq.as_int().unwrap() >= 0);
    }

    // The operator polls later and receives everything in order.
    assert_eq!(operator.call("im.count", vec![]).unwrap(), Value::Int(3));
    let peeked = operator.call("im.peek", vec![Value::Int(10)]).unwrap();
    assert_eq!(peeked.as_array().unwrap().len(), 3); // peek does not consume
    let messages = operator.call("im.poll", vec![Value::Int(10)]).unwrap();
    let messages = messages.as_array().unwrap();
    assert_eq!(messages.len(), 3);
    for (i, message) in messages.iter().enumerate() {
        assert_eq!(message.get("from").unwrap().as_str().unwrap(), job_dn);
        assert_eq!(
            message.get("body").unwrap().as_str().unwrap(),
            format!("step {i} done")
        );
    }
    // Queue drained.
    assert_eq!(operator.call("im.count", vec![]).unwrap(), Value::Int(0));

    // Reply path: the operator steers the job.
    operator
        .call(
            "im.send",
            vec![Value::from(job_dn), Value::from("abort step 3")],
        )
        .unwrap();
    let inbox = job.call("im.poll", vec![Value::Int(10)]).unwrap();
    assert_eq!(
        inbox.as_array().unwrap()[0]
            .get("body")
            .unwrap()
            .as_str()
            .unwrap(),
        "abort step 3"
    );

    // Mailboxes are private: uma cannot read ada's queue (polling only
    // ever returns the caller's own messages).
    job.call(
        "im.send",
        vec![
            Value::from(grid.admin.certificate.subject.to_string()),
            Value::from("secret"),
        ],
    )
    .unwrap();
    let own = job.call("im.poll", vec![Value::Int(10)]).unwrap();
    assert!(own.as_array().unwrap().is_empty());

    // Bad recipients and oversized bodies are rejected.
    match job.call("im.send", vec![Value::from("not a dn"), Value::from("x")]) {
        Err(ClientError::Fault(f)) => assert_eq!(f.code, codes::BAD_PARAMS),
        other => panic!("unexpected {other:?}"),
    }
    let huge = "x".repeat(65 * 1024);
    match job.call(
        "im.send",
        vec![
            Value::from(grid.admin.certificate.subject.to_string()),
            Value::from(huge),
        ],
    ) {
        Err(ClientError::Fault(f)) => assert_eq!(f.code, codes::BAD_PARAMS),
        other => panic!("unexpected {other:?}"),
    }
    grid.cleanup();
}

#[test]
fn srm_staging_lifecycle() {
    // The §6 mass-storage extension: files are notionally on tape until a
    // stage request brings them online (SRM v1 get/getRequestStatus
    // pattern).
    let grid = TestGrid::start();
    grid.write_file("/tape/run9.dat", b"archived events");
    let mut client = grid.logged_in_client(&grid.user);

    let staged = client
        .call("srm.stage", vec![Value::from("/tape/run9.dat")])
        .unwrap();
    let token = staged.get("token").unwrap().as_str().unwrap().to_owned();
    assert!(staged.get("estimated_seconds").unwrap().as_int().unwrap() >= 0);

    // Immediately after the request the file is still staging, and reads
    // are refused with the SRM not-ready error.
    let status = client
        .call("srm.status", vec![Value::from(token.clone())])
        .unwrap();
    assert_eq!(status.get("state").unwrap().as_str(), Some("staging"));
    match client.call(
        "srm.get",
        vec![Value::from(token.clone()), Value::Int(0), Value::Int(100)],
    ) {
        Err(ClientError::Fault(f)) => assert!(f.message.contains("NOT_READY"), "{}", f.message),
        other => panic!("unexpected {other:?}"),
    }

    // Poll until online (simulated tape latency is 2s).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let status = client
            .call("srm.status", vec![Value::from(token.clone())])
            .unwrap();
        if status.get("state").unwrap().as_str() == Some("online") {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "staging never completed"
        );
        std::thread::sleep(std::time::Duration::from_millis(200));
    }

    // Online: reads work.
    let bytes = client
        .call(
            "srm.get",
            vec![Value::from(token.clone()), Value::Int(0), Value::Int(100)],
        )
        .unwrap();
    assert_eq!(bytes.coerce_bytes().unwrap(), b"archived events");

    // Another user cannot use our token.
    let mut other = grid.logged_in_client(&grid.admin);
    match other.call(
        "srm.get",
        vec![Value::from(token.clone()), Value::Int(0), Value::Int(10)],
    ) {
        Err(ClientError::Fault(f)) => assert_eq!(f.code, codes::ACCESS_DENIED),
        other => panic!("unexpected {other:?}"),
    }

    // Release returns the file to tape.
    assert_eq!(
        client
            .call("srm.release", vec![Value::from(token.clone())])
            .unwrap(),
        Value::Bool(true)
    );
    let status = client.call("srm.status", vec![Value::from(token)]).unwrap();
    assert_eq!(status.get("state").unwrap().as_str(), Some("released"));
    grid.cleanup();
}

#[test]
fn srm_third_party_transfer_between_servers() {
    // Robust file transfer "between different mass storage facilities":
    // server B pulls a file directly from server A's GET endpoint, with
    // MD5 verification, on behalf of the requesting client.
    let site_a = TestGrid::start_with(GridOptions {
        seed: 0x5A,
        ..Default::default()
    });
    let site_b = TestGrid::start_with(GridOptions {
        seed: 0x5B,
        ..Default::default()
    });
    let payload: Vec<u8> = (0..100_000u32).flat_map(|i| i.to_le_bytes()).collect();
    site_a.write_file("/export/big.dat", &payload);
    let md5 = clarens_pki::md5::md5_hex(&payload);

    // A session on site A gives site B's pull a readable URL.
    let session_a = {
        let c = site_a.logged_in_client(&site_a.user);
        c.session_id().unwrap().to_owned()
    };
    let source_url = format!(
        "http://{}/file/export/big.dat?session={session_a}",
        site_a.addr()
    );

    let mut client_b = site_b.logged_in_client(&site_b.user);
    let result = client_b
        .call(
            "srm.pull",
            vec![
                Value::from(source_url),
                Value::from("/imported/big.dat"),
                Value::from(md5.clone()),
            ],
        )
        .unwrap();
    assert_eq!(
        result.get("bytes").unwrap().as_int(),
        Some(payload.len() as i64)
    );
    assert_eq!(result.get("md5").unwrap().as_str(), Some(md5.as_str()));

    // The file is now readable from site B's file service, byte-identical.
    let copied = client_b
        .file_read("/imported/big.dat", 0, payload.len() as i64)
        .unwrap();
    assert_eq!(copied, payload);

    // A transfer with a wrong expected MD5 fails after retries.
    let session_a2 = session_a.clone();
    let bad = client_b.call(
        "srm.pull",
        vec![
            Value::from(format!(
                "http://{}/file/export/big.dat?session={session_a2}",
                site_a.addr()
            )),
            Value::from("/imported/corrupt.dat"),
            Value::from("0".repeat(32)),
        ],
    );
    match bad {
        Err(ClientError::Fault(f)) => assert!(f.message.contains("md5"), "{}", f.message),
        other => panic!("unexpected {other:?}"),
    }

    // A dead source fails cleanly too.
    let dead = client_b.call(
        "srm.pull",
        vec![
            Value::from("http://127.0.0.1:1/file/x"),
            Value::from("/imported/never.dat"),
            Value::from(""),
        ],
    );
    assert!(dead.is_err());

    site_a.cleanup();
    site_b.cleanup();
}

#[test]
fn job_submission_lifecycle() {
    // Portal functionality "job submission" (paper §3): asynchronous
    // sandboxed commands with status polling.
    let grid = TestGrid::start();
    let mut client = grid.logged_in_client(&grid.user);

    // Prepare input in the sandbox via the shell, then process it as a job.
    client
        .call(
            "shell.cmd",
            vec![Value::from("echo event-data > /input.txt")],
        )
        .unwrap();
    let id = client
        .call("job.submit", vec![Value::from("wc /input.txt")])
        .unwrap();
    let id_int = id.as_int().unwrap();

    // Wait for completion (bounded server-side wait).
    let record = client
        .call("job.wait", vec![Value::Int(id_int), Value::Int(5000)])
        .unwrap();
    assert_eq!(record.get("state").unwrap().as_str(), Some("done"));
    assert_eq!(record.get("status").unwrap().as_int(), Some(0));
    assert!(record
        .get("stdout")
        .unwrap()
        .as_str()
        .unwrap()
        .starts_with("1 1 11"));

    // job.list shows it; job.remove cleans up.
    let listing = client.call("job.list", vec![]).unwrap();
    assert_eq!(listing.as_array().unwrap().len(), 1);
    assert_eq!(
        client.call("job.remove", vec![Value::Int(id_int)]).unwrap(),
        Value::Bool(true)
    );
    assert!(client
        .call("job.list", vec![])
        .unwrap()
        .as_array()
        .unwrap()
        .is_empty());

    // A failing command reports nonzero status.
    let id2 = client
        .call("job.submit", vec![Value::from("cat /does-not-exist")])
        .unwrap();
    let record = client
        .call("job.wait", vec![id2.clone(), Value::Int(5000)])
        .unwrap();
    assert_eq!(record.get("status").unwrap().as_int(), Some(1));
    assert!(!record.get("stderr").unwrap().as_str().unwrap().is_empty());

    // Jobs are private per identity.
    let mut other = grid.logged_in_client(&grid.admin);
    match other.call("job.status", vec![id2]) {
        Err(ClientError::Fault(f)) => assert_eq!(f.code, codes::ACCESS_DENIED),
        other => panic!("unexpected {other:?}"),
    }
    grid.cleanup();
}

/// Send one raw HTTP/1.1 request and parse the response. `Connection:
/// close` is the caller's job (the server closes, so `read_response`
/// terminates even for bodies it will not see, e.g. HEAD).
fn raw_http(addr: &str, request: &str) -> clarens_httpd::ClientResponse {
    use std::io::Write;
    let sock = std::net::TcpStream::connect(addr).unwrap();
    let mut sock = sock;
    sock.write_all(request.as_bytes()).unwrap();
    let mut reader = std::io::BufReader::new(sock);
    clarens_httpd::parse::read_response(&mut reader, 1 << 24).unwrap()
}

/// HEAD responses carry a Content-Length but no body, which a generic
/// response parser would block on — read the closed connection to EOF and
/// split the head by hand instead.
fn raw_head(addr: &str, request: &str) -> (u16, clarens_httpd::Headers, usize) {
    use std::io::{Read, Write};
    let mut sock = std::net::TcpStream::connect(addr).unwrap();
    sock.write_all(request.as_bytes()).unwrap();
    let mut wire = Vec::new();
    sock.read_to_end(&mut wire).unwrap();
    let split = wire
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header terminator");
    let head = std::str::from_utf8(&wire[..split]).unwrap();
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let mut headers = clarens_httpd::Headers::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.set(name.trim(), value.trim());
        }
    }
    (status, headers, wire.len() - split - 4)
}

#[test]
fn http_file_downloads_support_head_and_ranges() {
    // The whole matrix runs with the zero-copy path on and off: Range
    // handling, HEAD metadata answers, and header decoration must be
    // byte-for-byte independent of which copy engine moves the body.
    for zero_copy in [true, false] {
        let grid = TestGrid::start_with(GridOptions {
            zero_copy,
            ..Default::default()
        });
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 241) as u8).collect();
        grid.write_file("/data/blob.bin", &payload);
        let session = {
            let c = grid.logged_in_client(&grid.user);
            c.session_id().unwrap().to_owned()
        };
        let addr = grid.addr();
        let get = |extra: &str| {
            raw_http(
                &addr,
                &format!(
                    "GET /file/data/blob.bin?session={session} HTTP/1.1\r\n\
                     host: t\r\n{extra}connection: close\r\n\r\n"
                ),
            )
        };

        // HEAD answers from metadata: full length, range advertisement,
        // Last-Modified, and not a single body byte.
        let (status, headers, body_bytes) = raw_head(
            &addr,
            &format!(
                "HEAD /file/data/blob.bin?session={session} HTTP/1.1\r\n\
                 host: t\r\nconnection: close\r\n\r\n"
            ),
        );
        assert_eq!(status, 200, "zero_copy={zero_copy}");
        assert_eq!(headers.get("content-length"), Some("10000"));
        assert_eq!(headers.get("accept-ranges"), Some("bytes"));
        let lm = headers
            .get("last-modified")
            .expect("last-modified")
            .to_owned();
        assert!(lm.ends_with(" GMT"), "{lm:?}");
        assert_eq!(body_bytes, 0);

        // Whole-entity GET.
        let whole = get("");
        assert_eq!(whole.status, 200);
        assert_eq!(whole.headers.get("accept-ranges"), Some("bytes"));
        assert_eq!(whole.headers.get("last-modified"), Some(lm.as_str()));
        assert_eq!(whole.body, payload);

        // Closed range.
        let mid = get("range: bytes=100-199\r\n");
        assert_eq!(mid.status, 206);
        assert_eq!(
            mid.headers.get("content-range"),
            Some("bytes 100-199/10000")
        );
        assert_eq!(mid.body, &payload[100..200]);

        // Suffix range: the final 100 bytes.
        let tail = get("range: bytes=-100\r\n");
        assert_eq!(tail.status, 206);
        assert_eq!(
            tail.headers.get("content-range"),
            Some("bytes 9900-9999/10000")
        );
        assert_eq!(tail.body, &payload[9_900..]);

        // Open-ended range.
        let from = get("range: bytes=9990-\r\n");
        assert_eq!(from.status, 206);
        assert_eq!(
            from.headers.get("content-range"),
            Some("bytes 9990-9999/10000")
        );
        assert_eq!(from.body, &payload[9_990..]);

        // Start beyond the entity: 416 with the unsatisfied-range form.
        let beyond = get("range: bytes=20000-\r\n");
        assert_eq!(beyond.status, 416);
        assert_eq!(beyond.headers.get("content-range"), Some("bytes */10000"));

        // Syntactically invalid ranges are ignored, not errors.
        let inverted = get("range: bytes=5-2\r\n");
        assert_eq!(inverted.status, 200);
        assert_eq!(inverted.body, payload);

        grid.cleanup();
    }
}
