//! Integration tests for the epoch-invalidated authorization caches: the
//! full request path (real TCP, sessions, ACL walk) must never serve a
//! stale grant — every revocation is visible on the very next request —
//! while repeat requests are answered from the caches.

use clarens::acl::{Acl, FileAcl};
use clarens::testkit::{dn, GridOptions, TestGrid};
use clarens::ClientError;
use clarens_wire::fault::codes;
use clarens_wire::Value;

fn assert_denied(result: Result<Value, ClientError>) {
    match result {
        Err(ClientError::Fault(f)) => assert_eq!(f.code, codes::ACCESS_DENIED, "{f:?}"),
        other => panic!("expected access-denied fault, got {other:?}"),
    }
}

#[test]
fn method_acl_revocation_is_immediate() {
    let grid = TestGrid::start();
    let mut client = grid.logged_in_client(&grid.user);

    // Warm every cache layer with repeated allowed calls.
    for i in 0..3 {
        client.call("echo.echo", vec![Value::Int(i)]).unwrap();
    }
    // Revoke: the next request must already see the deny — no stale-grant
    // window, even though the decision was cached a moment ago.
    grid.core().acl.set_method_acl("echo", &Acl::deny_dn("*"));
    assert_denied(client.call("echo.echo", vec![Value::Int(9)]));
    // Re-granting is equally immediate.
    grid.core().acl.set_method_acl("echo", &Acl::allow_dn("*"));
    client.call("echo.echo", vec![Value::Int(10)]).unwrap();
    grid.cleanup();
}

#[test]
fn vo_membership_revocation_is_immediate() {
    let grid = TestGrid::start();
    let admin = dn(&grid.admin.certificate.subject.to_string());
    let user = grid.user.certificate.subject.to_string();
    let core = grid.core();

    // Gate echo behind a VO group instead of the permissive wildcard.
    core.vo.create_group(&admin, "testers").unwrap();
    core.acl
        .set_method_acl("echo", &Acl::allow_group("testers"));

    let mut client = grid.logged_in_client(&grid.user);
    assert_denied(client.call("echo.echo", vec![Value::Int(1)]));
    // A VO-side grant flips the cached deny on the next request...
    core.vo.add_member(&admin, "testers", &user).unwrap();
    client.call("echo.echo", vec![Value::Int(2)]).unwrap();
    client.call("echo.echo", vec![Value::Int(3)]).unwrap();
    // ...and a VO-side revocation flips it back, despite the cached allow.
    core.vo.remove_member(&admin, "testers", &user).unwrap();
    assert_denied(client.call("echo.echo", vec![Value::Int(4)]));
    grid.cleanup();
}

#[test]
fn file_acl_revocation_is_immediate_on_get_path() {
    let grid = TestGrid::start();
    grid.write_file("/sec/data.txt", b"payload");
    let mut client = grid.logged_in_client(&grid.user);

    assert_eq!(client.http_get_file("/sec/data.txt").unwrap(), b"payload");
    grid.core().acl.set_file_acl(
        "/sec",
        &FileAcl {
            read: Acl::deny_dn("*"),
            write: Acl::default(),
        },
    );
    match client.http_get_file("/sec/data.txt") {
        Err(ClientError::Http(403, body)) => {
            // GET errors keep the paper's XML error format.
            assert!(body.contains("<error"), "{body}");
        }
        other => panic!("expected 403, got {other:?}"),
    }
    grid.core().acl.clear_file_acl("/sec");
    assert_eq!(client.http_get_file("/sec/data.txt").unwrap(), b"payload");
    grid.cleanup();
}

#[test]
fn logout_revokes_cached_session() {
    let grid = TestGrid::start();
    let mut client = grid.logged_in_client(&grid.user);
    // Warm the resolved-session cache.
    client.call("system.whoami", vec![]).unwrap();
    client.call("system.whoami", vec![]).unwrap();
    assert_eq!(
        client.call("system.logout", vec![]).unwrap(),
        Value::Bool(true)
    );
    // The cached session must not outlive the logout.
    match client.call("system.whoami", vec![]) {
        Err(ClientError::Fault(f)) => assert_eq!(f.code, codes::NOT_AUTHENTICATED, "{f:?}"),
        other => panic!("expected not-authenticated fault, got {other:?}"),
    }
    grid.cleanup();
}

#[test]
fn sessions_survive_restart_with_cache_layer() {
    let db = std::env::temp_dir().join(format!("clarens-cache-restart-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&db);

    let grid = TestGrid::start_with(GridOptions {
        db_path: Some(db.clone()),
        seed: 0xCAC4E,
        ..Default::default()
    });
    let mut client = grid.logged_in_client(&grid.user);
    let session = client.session_id().unwrap().to_owned();
    client.call("system.whoami", vec![]).unwrap();
    grid.cleanup();

    // "Restart": a new server process over the same DB starts with cold
    // caches — the store stays the source of truth.
    let grid2 = TestGrid::start_with(GridOptions {
        db_path: Some(db.clone()),
        seed: 0xCAC4E,
        ..Default::default()
    });
    let mut revived = grid2.client(&grid2.user);
    revived.set_session(session);
    let who = revived.call("system.whoami", vec![]).unwrap();
    assert_eq!(
        who.as_str().unwrap(),
        grid2.user.certificate.subject.to_string()
    );
    // The first revived call reloaded from the store (a miss); repeats are
    // served from the rebuilt cache.
    let misses = grid2.core().sessions.cache_stats().misses;
    assert!(misses > 0, "revived session should have missed the cache");
    let hits_before = grid2.core().sessions.cache_stats().hits;
    revived.call("system.whoami", vec![]).unwrap();
    assert!(grid2.core().sessions.cache_stats().hits > hits_before);
    grid2.cleanup();
    let _ = std::fs::remove_file(&db);
}

/// A session record that arrives via WAL replication is applied as a raw
/// store write (`store.put` into the `sessions` bucket by the follower's
/// applier) — it never passes through `SessionManager::create`. The epoch
/// invalidation must still work end to end: the foreign session
/// authenticates, a replicated overwrite of a *cached* session is visible
/// on the very next request, and a replicated delete revokes it.
#[test]
fn replicated_session_record_invalidates_cache_epoch() {
    use clarens::session::SESSIONS_BUCKET;

    let grid = TestGrid::start();
    let core = grid.core();
    let now = core.now();
    let record = |dn: &str, expires: i64| {
        clarens_wire::json::to_string(&Value::structure([
            ("dn", Value::from(dn)),
            ("created", Value::Int(now)),
            ("expires", Value::Int(expires)),
            ("proxy", Value::Nil),
        ]))
        .into_bytes()
    };
    let user_dn = grid.user.certificate.subject.to_string();
    let admin_dn = grid.admin.certificate.subject.to_string();

    // A session minted on another federation node lands in the bucket.
    let id = "ab".repeat(32);
    core.store
        .put(SESSIONS_BUCKET, &id, record(&user_dn, now + 600))
        .unwrap();
    let mut client = grid.client(&grid.user);
    client.set_session(id.clone());
    assert_eq!(
        client.call("system.whoami", vec![]).unwrap().as_str(),
        Some(user_dn.as_str()),
        "replicated session should authenticate without a local create"
    );
    // Warm the resolved-session cache with a repeat call.
    client.call("system.whoami", vec![]).unwrap();

    // A replicated overwrite of the cached record (here: the leader
    // re-bound the session to a different identity) must be served on the
    // next request — the bucket-generation bump is the only signal.
    core.store
        .put(SESSIONS_BUCKET, &id, record(&admin_dn, now + 600))
        .unwrap();
    assert_eq!(
        client.call("system.whoami", vec![]).unwrap().as_str(),
        Some(admin_dn.as_str()),
        "cached session must not survive a replicated overwrite"
    );

    // A replicated delete (leader-side logout) revokes the session.
    core.store.delete(SESSIONS_BUCKET, &id).unwrap();
    match client.call("system.whoami", vec![]) {
        Err(ClientError::Fault(f)) => assert_eq!(f.code, codes::NOT_AUTHENTICATED, "{f:?}"),
        other => panic!("expected not-authenticated fault, got {other:?}"),
    }
    grid.cleanup();
}

/// A follower replicating mid-stream when the leader background-compacts:
/// the epoch bump forces the follower's cursor back to `(new_epoch, 0)`,
/// the compacted log doubles as a full-state snapshot, and the follower's
/// epoch-invalidated session cache must converge on post-compaction
/// leader state — a re-bound session is visible, a revoked one is gone.
#[test]
fn follower_session_cache_converges_across_leader_compaction() {
    use std::time::Duration;

    use clarens::session::SESSIONS_BUCKET;
    use clarens_federation::Replicator;
    use monalisa_sim::station::wait_until;

    let db = std::env::temp_dir().join(format!(
        "clarens-compact-replica-{}.wal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&db);

    // Leader persists (only the WAL backend ships a log); the follower
    // applies into its own in-memory store via the ordinary write path.
    let leader = TestGrid::start_with(GridOptions {
        db_path: Some(db.clone()),
        seed: 0xC0317AC7,
        ..Default::default()
    });
    // TestGrid runs standalone; export the leader-side WAL stream the way
    // a `federation_role: leader` server would.
    leader
        .core()
        .register(std::sync::Arc::new(clarens::services::ReplicationService));
    let follower = TestGrid::start_with(GridOptions {
        seed: 0xF0110 + 1,
        ..Default::default()
    });
    let replicator = Replicator::start(
        std::sync::Arc::clone(follower.core()),
        leader.addr(),
        leader.admin.clone(),
        5,
    );

    // A session minted on the leader authenticates on the follower once
    // the record ships.
    let leader_client = leader.logged_in_client(&leader.user);
    let session = leader_client.session_id().unwrap().to_owned();
    let user_dn = leader.user.certificate.subject.to_string();
    let mut follower_client = follower.client(&follower.user);
    follower_client.set_session(session.clone());
    assert!(
        wait_until(Duration::from_secs(10), || {
            follower_client
                .call("system.whoami", vec![])
                .is_ok_and(|who| who.as_str() == Some(user_dn.as_str()))
        }),
        "leader session never authenticated on the follower"
    );
    // Warm the follower's resolved-session cache.
    follower_client.call("system.whoami", vec![]).unwrap();

    // Churn the leader's log, then compact mid-stream. The epoch bump
    // invalidates the follower's cursor; the leader serves the compacted
    // snapshot from offset 0 and the follower resyncs.
    for i in 0..500 {
        leader
            .core()
            .store
            .put("churn", "hot", format!("v{i}").into_bytes())
            .unwrap();
    }
    leader.core().store.compact().unwrap();
    assert_eq!(leader.core().store.wal_epoch(), 1);

    // Post-compaction: re-bind the session to a different identity on the
    // leader (a raw replicated overwrite, as another node would see it).
    let admin_dn = leader.admin.certificate.subject.to_string();
    let now = leader.core().now();
    let rebound = clarens_wire::json::to_string(&Value::structure([
        ("dn", Value::from(admin_dn.as_str())),
        ("created", Value::Int(now)),
        ("expires", Value::Int(now + 600)),
        ("proxy", Value::Nil),
    ]));
    leader
        .core()
        .store
        .put(SESSIONS_BUCKET, &session, rebound.into_bytes())
        .unwrap();
    assert!(
        wait_until(Duration::from_secs(10), || {
            follower_client
                .call("system.whoami", vec![])
                .is_ok_and(|who| who.as_str() == Some(admin_dn.as_str()))
        }),
        "follower session cache never converged on the post-compaction re-bind"
    );

    // And a leader-side revocation shipped through the same resynced
    // stream kills the cached session.
    leader
        .core()
        .store
        .delete(SESSIONS_BUCKET, &session)
        .unwrap();
    assert!(
        wait_until(Duration::from_secs(10), || {
            matches!(
                follower_client.call("system.whoami", vec![]),
                Err(ClientError::Fault(f)) if f.code == codes::NOT_AUTHENTICATED
            )
        }),
        "follower never saw the replicated revocation"
    );

    // The resync actually happened: the leader answered at least one
    // stale cursor by restarting the stream.
    assert!(
        leader.core().telemetry.federation.replication_resyncs.get() >= 1,
        "leader never restarted a follower cursor after compacting"
    );
    assert!(replicator.applied() > 0);
    replicator.stop();
    follower.cleanup();
    leader.cleanup();
    let _ = std::fs::remove_file(&db);
}

/// Failover from the cache's point of view (DESIGN.md §14): followers A
/// (persistent) and B (in-memory) replicate from a leader; the leader
/// dies; A is promoted exactly the way the election manager promotes it
/// (seal the log with an `EpochFence`, flip the role, serve the stream);
/// B re-points through `FederationState` — which is all the election
/// manager ever does to a replicator — and must resync from A's log.
/// The epoch-invalidated session/VO/ACL caches on B must converge on
/// post-promotion leader state, not hold what the dead leader shipped.
#[test]
fn follower_repoints_and_resyncs_across_promotion() {
    use std::time::Duration;

    use clarens::config::FederationRole;
    use clarens::session::SESSIONS_BUCKET;
    use clarens_federation::Replicator;
    use monalisa_sim::station::wait_until;

    let leader_db =
        std::env::temp_dir().join(format!("clarens-promo-leader-{}.wal", std::process::id()));
    let promoted_db =
        std::env::temp_dir().join(format!("clarens-promo-a-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&leader_db);
    let _ = std::fs::remove_file(&promoted_db);

    let leader = TestGrid::start_with(GridOptions {
        db_path: Some(leader_db.clone()),
        seed: 0xE7EC7,
        ..Default::default()
    });
    leader
        .core()
        .register(std::sync::Arc::new(clarens::services::ReplicationService));
    // A persists: its own WAL is what it serves once promoted.
    let a = TestGrid::start_with(GridOptions {
        db_path: Some(promoted_db.clone()),
        seed: 0xE7EC8,
        ..Default::default()
    });
    a.core()
        .register(std::sync::Arc::new(clarens::services::ReplicationService));
    let b = TestGrid::start_with(GridOptions {
        seed: 0xE7EC9,
        ..Default::default()
    });
    let repl_a = Replicator::start(
        std::sync::Arc::clone(a.core()),
        leader.addr(),
        leader.admin.clone(),
        5,
    );
    let repl_b = Replicator::start(
        std::sync::Arc::clone(b.core()),
        leader.addr(),
        leader.admin.clone(),
        5,
    );

    // Leader-side state: a session, and echo gated behind a VO group the
    // user belongs to (session + VO + ACL caches all in play).
    let leader_client = leader.logged_in_client(&leader.user);
    let session = leader_client.session_id().unwrap().to_owned();
    let user_dn = leader.user.certificate.subject.to_string();
    let admin = dn(&leader.admin.certificate.subject.to_string());
    leader.core().vo.create_group(&admin, "fenced").unwrap();
    leader
        .core()
        .vo
        .add_member(&admin, "fenced", &user_dn)
        .unwrap();
    leader
        .core()
        .acl
        .set_method_acl("echo", &Acl::allow_group("fenced"));

    // Both followers converge and warm their caches.
    for grid in [&a, &b] {
        let mut probe = grid.client(&grid.user);
        probe.set_session(session.clone());
        assert!(
            wait_until(Duration::from_secs(10), || {
                probe.call("echo.echo", vec![Value::Int(1)]).is_ok()
            }),
            "follower never converged on the leader's session/VO/ACL state"
        );
        probe.call("echo.echo", vec![Value::Int(2)]).unwrap();
    }

    // The leader dies. The followers' fetch loops hit transport errors
    // and back off (counted) instead of hot-spinning.
    leader.cleanup();
    assert!(
        wait_until(Duration::from_secs(10), || {
            b.core().telemetry.federation.replication_fetch_errors.get() >= 1
        }),
        "dead-leader fetches were never counted as errors"
    );

    // Promote A the way `ElectionManager::try_promote` does.
    let epoch = a.core().store.fence_epoch() + 1;
    a.core().store.append_fence(epoch).unwrap();
    a.core().store.sync().unwrap();
    a.core().federation.observe_epoch(epoch);
    a.core().federation.set_role(FederationRole::Leader);
    a.core().federation.set_leader(&a.addr());

    // Re-point B. Its replicator notices on the next cycle, reconnects,
    // and resyncs A's log from the top — including the fence record,
    // whose epoch B adopts.
    let applied_before = repl_b.applied();
    b.core().federation.set_leader(&a.addr());
    assert!(
        wait_until(Duration::from_secs(10), || {
            b.core().federation.epoch() == epoch && repl_b.applied() > applied_before
        }),
        "B never resynced through A's fence record"
    );

    // Post-promotion mutations on A reach B through the new stream, and
    // B's warm caches flip: a VO revocation denies the cached allow...
    a.core()
        .vo
        .remove_member(&admin, "fenced", &user_dn)
        .unwrap();
    let mut b_probe = b.client(&b.user);
    b_probe.set_session(session.clone());
    assert!(
        wait_until(Duration::from_secs(10), || {
            matches!(
                b_probe.call("echo.echo", vec![Value::Int(3)]),
                Err(ClientError::Fault(f)) if f.code == codes::ACCESS_DENIED
            )
        }),
        "B's cached VO grant survived the post-promotion revocation"
    );
    // ...and a session revocation on the new leader kills the cached
    // session on B.
    a.core().store.delete(SESSIONS_BUCKET, &session).unwrap();
    assert!(
        wait_until(Duration::from_secs(10), || {
            matches!(
                b_probe.call("system.whoami", vec![]),
                Err(ClientError::Fault(f)) if f.code == codes::NOT_AUTHENTICATED
            )
        }),
        "B's cached session survived the post-promotion logout"
    );

    assert!(repl_a.applied() > 0);
    repl_a.stop();
    repl_b.stop();
    b.cleanup();
    a.cleanup();
    let _ = std::fs::remove_file(&leader_db);
    let _ = std::fs::remove_file(&promoted_db);
}

#[test]
fn stats_rpc_reports_db_and_cache_counters() {
    let grid = TestGrid::start();
    let mut user = grid.logged_in_client(&grid.user);
    // Drive some cached traffic first.
    for i in 0..3 {
        user.call("echo.echo", vec![Value::Int(i)]).unwrap();
    }
    // Admin-gated, like session_count.
    assert_denied(user.call("system.stats", vec![]));

    let mut admin = grid.logged_in_client(&grid.admin);
    let stats = admin.call("system.stats", vec![]).unwrap();
    let db = stats.get("db").unwrap();
    assert!(db.get("lookups").unwrap().as_int().unwrap() > 0);
    assert!(db.get("writes").unwrap().as_int().unwrap() > 0);
    let cache = stats.get("cache").unwrap();
    for kind in ["sessions", "vo_groups", "acl_nodes", "acl_decisions"] {
        let entry = cache.get(kind).unwrap();
        assert!(entry.get("hits").unwrap().as_int().is_some(), "{kind}");
        assert!(entry.get("misses").unwrap().as_int().is_some(), "{kind}");
    }
    // The echo traffic above was answered from the decision cache.
    let decisions = cache.get("acl_decisions").unwrap();
    assert!(decisions.get("hits").unwrap().as_int().unwrap() > 0);
    grid.cleanup();
}
