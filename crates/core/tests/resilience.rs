//! End-to-end deadline propagation: a handler that overruns the
//! per-request budget answers with the 504-style DEADLINE fault, the
//! keep-alive connection survives for the next request, and the
//! resilience counters record the event.

use std::sync::Arc;
use std::time::{Duration, Instant};

use clarens::acl::Acl;
use clarens::registry::{CallContext, MethodInfo, Service};
use clarens::testkit::{GridOptions, TestGrid};
use clarens::ClientError;
use clarens_wire::fault::codes;
use clarens_wire::{Fault, Value};

/// A test service with two slow methods: `nap` ignores the budget (the
/// post-dispatch overrun check must catch it), `politenap` checks the
/// deadline cooperatively and bails out early.
struct Sleeper;

impl Service for Sleeper {
    fn module(&self) -> &str {
        "sleeptest"
    }

    fn methods(&self) -> Vec<MethodInfo> {
        vec![
            MethodInfo::new(
                "sleeptest.nap",
                "sleeptest.nap(ms)",
                "Sleep, ignoring the budget",
            ),
            MethodInfo::new(
                "sleeptest.politenap",
                "sleeptest.politenap(ms)",
                "Sleep in slices, checking the deadline",
            ),
        ]
    }

    fn call(&self, ctx: &CallContext<'_>, method: &str, params: &[Value]) -> Result<Value, Fault> {
        let ms = match params.first() {
            Some(Value::Int(ms)) => *ms as u64,
            _ => return Err(Fault::bad_params("want milliseconds")),
        };
        match method {
            "sleeptest.nap" => {
                std::thread::sleep(Duration::from_millis(ms));
                Ok(Value::Int(ms as i64))
            }
            "sleeptest.politenap" => {
                let end = Instant::now() + Duration::from_millis(ms);
                while Instant::now() < end {
                    ctx.check_deadline()?;
                    std::thread::sleep(Duration::from_millis(10));
                }
                Ok(Value::Int(ms as i64))
            }
            other => Err(Fault::new(codes::NO_SUCH_METHOD, other.to_owned())),
        }
    }
}

fn sleepy_grid() -> TestGrid {
    let grid = TestGrid::start_with(GridOptions {
        workers: 4,
        request_deadline_ms: 250,
        ..Default::default()
    });
    grid.core().register(Arc::new(Sleeper));
    grid.core()
        .acl
        .set_method_acl("sleeptest", &Acl::allow_dn("*"));
    grid
}

fn expect_deadline_fault(result: Result<Value, ClientError>) -> Fault {
    match result {
        Err(ClientError::Fault(fault)) => {
            assert_eq!(fault.code, codes::DEADLINE, "fault: {fault}");
            fault
        }
        other => panic!("expected a DEADLINE fault, got {other:?}"),
    }
}

#[test]
fn overrunning_handler_gets_deadline_fault_and_connection_survives() {
    let grid = sleepy_grid();
    let mut client = grid.logged_in_client(&grid.user);

    // Prime the keep-alive connection, then record the connection count:
    // everything after this must reuse the same socket.
    assert_eq!(
        client.call("echo.echo", vec![Value::Int(1)]).unwrap(),
        Value::Int(1)
    );
    let connections = grid.core().telemetry.http.connections.get();
    let exceeded_before = grid.core().telemetry.resilience.deadline_exceeded.get();

    // The handler sleeps well past the 250 ms budget without checking it;
    // the dispatch layer converts the overrun into the 504-style fault.
    expect_deadline_fault(client.call("sleeptest.nap", vec![Value::Int(600)]));

    // The fault was a normal keep-alive response: the very next call runs
    // on the same connection and succeeds.
    assert_eq!(
        client.call("echo.echo", vec![Value::Int(2)]).unwrap(),
        Value::Int(2)
    );
    assert_eq!(
        grid.core().telemetry.http.connections.get(),
        connections,
        "the deadline fault must not cost the client its connection"
    );
    assert!(
        grid.core().telemetry.resilience.deadline_exceeded.get() > exceeded_before,
        "telemetry must record the deadline overrun"
    );
    grid.cleanup();
}

#[test]
fn cooperative_handler_stops_early_at_the_deadline() {
    let grid = sleepy_grid();
    let mut client = grid.logged_in_client(&grid.user);

    // politenap wants 5 s but checks the budget every 10 ms, so the fault
    // comes back right after the 250 ms deadline, not after 5 s.
    let t0 = Instant::now();
    expect_deadline_fault(client.call("sleeptest.politenap", vec![Value::Int(5_000)]));
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_secs(2),
        "cooperative handler should stop near the 250 ms budget, took {elapsed:?}"
    );

    // Within budget the same method completes normally.
    assert_eq!(
        client
            .call("sleeptest.politenap", vec![Value::Int(50)])
            .unwrap(),
        Value::Int(50)
    );
    grid.cleanup();
}
