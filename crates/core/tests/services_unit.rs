//! Direct service-dispatch tests: call every service through the registry
//! with synthetic call contexts (no HTTP), covering the parameter-fault
//! and edge paths that the end-to-end suite doesn't reach.

use std::sync::Arc;

use clarens::config::ClarensConfig;
use clarens::core::ClarensCore;
use clarens::registry::CallContext;
use clarens::{install_permissive_acls, register_builtin_services};
use clarens_pki::cert::{CertificateAuthority, Credential};
use clarens_pki::dn::DistinguishedName;
use clarens_pki::rsa;
use clarens_wire::fault::codes;
use clarens_wire::Value;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Fixture {
    core: Arc<ClarensCore>,
    admin_dn: DistinguishedName,
    user_dn: DistinguishedName,
    data_dir: std::path::PathBuf,
}

fn fixture(name: &str) -> Fixture {
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_secs() as i64;
    let mut rng = StdRng::seed_from_u64(0x5E41);
    let ca = CertificateAuthority::new(
        &mut rng,
        DistinguishedName::parse("/O=unit/CN=CA").unwrap(),
        now - 3600,
        3650,
    );
    let kp = rsa::generate(&mut rng, rsa::DEFAULT_KEY_BITS);
    let server = Credential {
        certificate: ca.issue(
            DistinguishedName::parse("/O=unit/CN=server").unwrap(),
            &kp.public,
            now - 3600,
            365,
        ),
        key: kp.private,
        chain: vec![],
    };
    let admin_dn = DistinguishedName::parse("/O=unit/OU=People/CN=root").unwrap();
    let user_dn = DistinguishedName::parse("/O=unit/OU=People/CN=plain").unwrap();

    let data_dir = std::env::temp_dir().join(format!(
        "clarens-services-unit-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&data_dir);
    std::fs::create_dir_all(data_dir.join("files")).unwrap();
    std::fs::create_dir_all(data_dir.join("shell")).unwrap();

    let config = ClarensConfig {
        admin_dns: vec![admin_dn.to_string()],
        file_root: Some(data_dir.join("files")),
        shell_root: Some(data_dir.join("shell")),
        shell_user_map: "plainuser: dn=/O=unit/OU=People/CN=plain\n".into(),
        ..Default::default()
    };
    let core = ClarensCore::new(config, vec![ca.certificate.clone()], server).unwrap();
    register_builtin_services(&core, None);
    install_permissive_acls(&core);
    Fixture {
        core,
        admin_dn,
        user_dn,
        data_dir,
    }
}

fn call(
    fixture: &Fixture,
    identity: Option<&DistinguishedName>,
    method: &str,
    params: Vec<Value>,
) -> Result<Value, clarens_wire::Fault> {
    let service = fixture
        .core
        .registry
        .read()
        .resolve(method)
        .unwrap_or_else(|| panic!("no service for {method}"));
    let ctx = CallContext {
        core: &fixture.core,
        identity: identity.cloned().map(std::sync::Arc::new),
        session: None,
        peer_chain: vec![],
        now: fixture.core.now(),
        deadline: None,
        hops: 0,
    };
    service.call(&ctx, method, &params)
}

#[test]
fn system_introspection_paths() {
    let f = fixture("system");
    let user = f.user_dn.clone();

    // get_method_info round-trips the registry record.
    let info = call(
        &f,
        Some(&user),
        "system.get_method_info",
        vec![Value::from("file.read")],
    )
    .unwrap();
    assert!(info
        .get("signature")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("file.read("));
    // Unknown method -> NO_SUCH_METHOD fault.
    let err = call(
        &f,
        Some(&user),
        "system.get_method_info",
        vec![Value::from("no.method")],
    )
    .unwrap_err();
    assert_eq!(err.code, codes::NO_SUCH_METHOD);
    // Param-count errors.
    let err = call(&f, Some(&user), "system.list_methods", vec![Value::Int(1)]).unwrap_err();
    assert_eq!(err.code, codes::BAD_PARAMS);
    // Unknown method within an existing module.
    let err = call(&f, Some(&user), "system.frobnicate", vec![]).unwrap_err();
    assert_eq!(err.code, codes::NO_SUCH_METHOD);
    // whoami needs identity.
    let err = call(&f, None, "system.whoami", vec![]).unwrap_err();
    assert_eq!(err.code, codes::NOT_AUTHENTICATED);
    // session_count is admin-only.
    let err = call(&f, Some(&user), "system.session_count", vec![]).unwrap_err();
    assert_eq!(err.code, codes::ACCESS_DENIED);
    let admin = f.admin_dn.clone();
    let count = call(&f, Some(&admin), "system.session_count", vec![]).unwrap();
    assert_eq!(count, Value::Int(0));
    let _ = std::fs::remove_dir_all(&f.data_dir);
}

#[test]
fn echo_edge_cases() {
    let f = fixture("echo");
    let user = f.user_dn.clone();
    // concat with non-string array items.
    let err = call(
        &f,
        Some(&user),
        "echo.concat",
        vec![Value::array([Value::Int(1)])],
    )
    .unwrap_err();
    assert_eq!(err.code, codes::BAD_PARAMS);
    // concat with a non-array argument.
    let err = call(&f, Some(&user), "echo.concat", vec![Value::Int(1)]).unwrap_err();
    assert_eq!(err.code, codes::BAD_PARAMS);
    // payload size bounds.
    let err = call(&f, Some(&user), "echo.payload", vec![Value::Int(-1)]).unwrap_err();
    assert_eq!(err.code, codes::BAD_PARAMS);
    let err = call(&f, Some(&user), "echo.payload", vec![Value::Int(1 << 40)]).unwrap_err();
    assert_eq!(err.code, codes::BAD_PARAMS);
    // A valid payload returns deterministic bytes.
    let bytes = call(&f, Some(&user), "echo.payload", vec![Value::Int(10)]).unwrap();
    assert_eq!(
        bytes.coerce_bytes().unwrap(),
        (0..10u8).map(|i| i % 251).collect::<Vec<u8>>()
    );
    let _ = std::fs::remove_dir_all(&f.data_dir);
}

#[test]
fn file_service_edges() {
    let f = fixture("file");
    let user = f.user_dn.clone();
    std::fs::write(f.data_dir.join("files/x.txt"), b"0123456789").unwrap();

    // Reading a missing file is a SERVICE fault, not an internal error.
    let err = call(
        &f,
        Some(&user),
        "file.read",
        vec![Value::from("/ghost"), Value::Int(0), Value::Int(4)],
    )
    .unwrap_err();
    assert_eq!(err.code, codes::SERVICE);
    assert!(err.message.contains("not found"), "{}", err.message);

    // Offsets beyond EOF give empty bytes.
    let bytes = call(
        &f,
        Some(&user),
        "file.read",
        vec![Value::from("/x.txt"), Value::Int(100), Value::Int(4)],
    )
    .unwrap();
    assert_eq!(bytes.coerce_bytes().unwrap(), b"");

    // ls on a file is an error.
    let err = call(&f, Some(&user), "file.ls", vec![Value::from("/x.txt")]).unwrap_err();
    assert_eq!(err.code, codes::SERVICE);

    // stat on a directory reports type dir.
    std::fs::create_dir_all(f.data_dir.join("files/sub")).unwrap();
    let stat = call(&f, Some(&user), "file.stat", vec![Value::from("/sub")]).unwrap();
    assert_eq!(stat.get("type").unwrap().as_str(), Some("dir"));

    // put with append extends; rm removes; size reports.
    call(
        &f,
        Some(&user),
        "file.put",
        vec![
            Value::from("/new.bin"),
            Value::Bytes(b"ab".to_vec()),
            Value::Bool(false),
        ],
    )
    .unwrap();
    call(
        &f,
        Some(&user),
        "file.put",
        vec![
            Value::from("/new.bin"),
            Value::Bytes(b"cd".to_vec()),
            Value::Bool(true),
        ],
    )
    .unwrap();
    let size = call(&f, Some(&user), "file.size", vec![Value::from("/new.bin")]).unwrap();
    assert_eq!(size, Value::Int(4));
    call(&f, Some(&user), "file.rm", vec![Value::from("/new.bin")]).unwrap();
    let err = call(&f, Some(&user), "file.size", vec![Value::from("/new.bin")]).unwrap_err();
    assert_eq!(err.code, codes::SERVICE);

    // mkdir then find locates nested names.
    call(&f, Some(&user), "file.mkdir", vec![Value::from("/a/b/c")]).unwrap();
    std::fs::write(f.data_dir.join("files/a/b/c/target.dat"), b"z").unwrap();
    let found = call(
        &f,
        Some(&user),
        "file.find",
        vec![Value::from("/"), Value::from("target")],
    )
    .unwrap();
    assert_eq!(
        found.as_array().unwrap()[0].as_str(),
        Some("/a/b/c/target.dat")
    );
    let _ = std::fs::remove_dir_all(&f.data_dir);
}

#[test]
fn md5_cache_invalidated_by_rewrite() {
    let f = fixture("md5cache");
    let user = f.user_dn.clone();
    let path = f.data_dir.join("files/sum.dat");

    let digest_of = |data: &[u8]| {
        let mut h = clarens_pki::md5::Md5::new();
        h.update(data);
        clarens_pki::sha256::to_hex(&h.finalize())
    };

    std::fs::write(&path, b"first contents").unwrap();
    let first = call(&f, Some(&user), "file.md5", vec![Value::from("/sum.dat")]).unwrap();
    assert_eq!(first.as_str(), Some(digest_of(b"first contents").as_str()));
    // Second call is served from the cache and must agree.
    let again = call(&f, Some(&user), "file.md5", vec![Value::from("/sum.dat")]).unwrap();
    assert_eq!(again, first);

    // Rewrite the file (different length, so even a coarse-mtime
    // filesystem can't alias the key) — the cache must miss.
    std::fs::write(&path, b"entirely different, longer contents").unwrap();
    let second = call(&f, Some(&user), "file.md5", vec![Value::from("/sum.dat")]).unwrap();
    assert_eq!(
        second.as_str(),
        Some(digest_of(b"entirely different, longer contents").as_str())
    );
    assert_ne!(second, first);
    let _ = std::fs::remove_dir_all(&f.data_dir);
}

#[test]
fn file_read_clamps_to_file_length() {
    let f = fixture("readclamp");
    let user = f.user_dn.clone();
    std::fs::write(f.data_dir.join("files/small.bin"), b"0123456789").unwrap();

    // Asking for far more than the file holds returns exactly the file
    // (the read buffer is clamped, not zero-filled to nbytes).
    let bytes = call(
        &f,
        Some(&user),
        "file.read",
        vec![
            Value::from("/small.bin"),
            Value::Int(0),
            Value::Int(4 * 1024 * 1024),
        ],
    )
    .unwrap();
    assert_eq!(bytes.coerce_bytes().unwrap(), b"0123456789");

    // Mid-file offset with an oversized request yields just the tail.
    let tail = call(
        &f,
        Some(&user),
        "file.read",
        vec![
            Value::from("/small.bin"),
            Value::Int(6),
            Value::Int(4 * 1024 * 1024),
        ],
    )
    .unwrap();
    assert_eq!(tail.coerce_bytes().unwrap(), b"6789");
    let _ = std::fs::remove_dir_all(&f.data_dir);
}

#[test]
fn acl_admin_service_roundtrip() {
    let f = fixture("acl");
    let admin = f.admin_dn.clone();
    let user = f.user_dn.clone();

    // set, get, check, list, clear.
    call(
        &f,
        Some(&admin),
        "acl.set_method",
        vec![
            Value::from("special"),
            Value::structure([
                ("order", Value::from("deny,allow")),
                ("allow_dns", Value::array([Value::from(user.to_string())])),
                ("deny_dns", Value::array([Value::from("*")])),
            ]),
        ],
    )
    .unwrap();
    let got = call(
        &f,
        Some(&user),
        "acl.get_method",
        vec![Value::from("special")],
    )
    .unwrap();
    assert_eq!(got.get("order").unwrap().as_str(), Some("deny,allow"));

    let allowed = call(
        &f,
        Some(&user),
        "acl.check",
        vec![Value::from("special.thing"), Value::from(user.to_string())],
    )
    .unwrap();
    assert_eq!(allowed, Value::Bool(true));
    let denied = call(
        &f,
        Some(&user),
        "acl.check",
        vec![
            Value::from("special.thing"),
            Value::from("/O=elsewhere/CN=x"),
        ],
    )
    .unwrap();
    assert_eq!(denied, Value::Bool(false));

    let nodes = call(&f, Some(&user), "acl.list", vec![]).unwrap();
    assert!(nodes
        .as_array()
        .unwrap()
        .iter()
        .any(|v| v.as_str() == Some("special")));

    // Mutations are admin-only.
    let err = call(
        &f,
        Some(&user),
        "acl.clear_method",
        vec![Value::from("special")],
    )
    .unwrap_err();
    assert_eq!(err.code, codes::ACCESS_DENIED);
    call(
        &f,
        Some(&admin),
        "acl.clear_method",
        vec![Value::from("special")],
    )
    .unwrap();
    let got = call(
        &f,
        Some(&user),
        "acl.get_method",
        vec![Value::from("special")],
    )
    .unwrap();
    assert!(got.is_nil());

    // Bad order strings rejected.
    let err = call(
        &f,
        Some(&admin),
        "acl.set_method",
        vec![
            Value::from("x"),
            Value::structure([("order", Value::from("first-come"))]),
        ],
    )
    .unwrap_err();
    assert_eq!(err.code, codes::BAD_PARAMS);
    let _ = std::fs::remove_dir_all(&f.data_dir);
}

#[test]
fn vo_service_edges() {
    let f = fixture("vo");
    let admin = f.admin_dn.clone();
    let user = f.user_dn.clone();

    let err = call(&f, Some(&user), "vo.group_info", vec![Value::from("nope")]).unwrap_err();
    assert_eq!(err.code, codes::SERVICE);
    let err = call(
        &f,
        Some(&user),
        "vo.is_member",
        vec![Value::from("g"), Value::from("not a dn")],
    )
    .unwrap_err();
    assert_eq!(err.code, codes::BAD_PARAMS);

    // Group names validated at the service boundary.
    let err = call(
        &f,
        Some(&admin),
        "vo.create_group",
        vec![Value::from("bad name")],
    )
    .unwrap_err();
    assert_eq!(err.code, codes::BAD_PARAMS);
    // Duplicate creation is a SERVICE conflict.
    call(&f, Some(&admin), "vo.create_group", vec![Value::from("g")]).unwrap();
    let err = call(&f, Some(&admin), "vo.create_group", vec![Value::from("g")]).unwrap_err();
    assert_eq!(err.code, codes::SERVICE);
    let _ = std::fs::remove_dir_all(&f.data_dir);
}

#[test]
fn shell_service_requires_mapping() {
    let f = fixture("shellmap");
    // The admin has no user-map entry — shell access refused even though
    // the ACL allows the module.
    let admin = f.admin_dn.clone();
    let err = call(&f, Some(&admin), "shell.cmd_info", vec![]).unwrap_err();
    assert_eq!(err.code, codes::ACCESS_DENIED);
    assert!(err.message.contains("user_map"), "{}", err.message);

    // The mapped user works and gets the mapped account.
    let user = f.user_dn.clone();
    let info = call(&f, Some(&user), "shell.cmd_info", vec![]).unwrap();
    assert_eq!(info.get("user").unwrap().as_str(), Some("plainuser"));
    let _ = std::fs::remove_dir_all(&f.data_dir);
}

#[test]
fn proxy_service_param_faults() {
    let f = fixture("proxy");
    let user = f.user_dn.clone();
    // Retrieving with nothing stored.
    let err = call(&f, Some(&user), "proxy.retrieve", vec![Value::from("pw")]).unwrap_err();
    assert_eq!(err.code, codes::SERVICE);
    // Storing garbage that is not a certificate payload.
    let err = call(
        &f,
        Some(&user),
        "proxy.store",
        vec![Value::from("pw"), Value::from("not certificates")],
    )
    .unwrap_err();
    assert_eq!(err.code, codes::SERVICE);
    // Attach without a session.
    let err = call(&f, Some(&user), "proxy.attach", vec![Value::from("pw")]).unwrap_err();
    assert_eq!(err.code, codes::NOT_AUTHENTICATED);
    // Remove when nothing stored returns false (not an error).
    let removed = call(&f, Some(&user), "proxy.remove", vec![]).unwrap();
    assert_eq!(removed, Value::Bool(false));
    let _ = std::fs::remove_dir_all(&f.data_dir);
}

#[test]
fn im_service_edges() {
    let f = fixture("im");
    let user = f.user_dn.clone();
    let admin = f.admin_dn.clone();
    // Sending to yourself works (self-notes) and polling drains FIFO.
    for i in 0..3 {
        call(
            &f,
            Some(&user),
            "im.send",
            vec![
                Value::from(user.to_string()),
                Value::from(format!("note{i}")),
            ],
        )
        .unwrap();
    }
    let batch = call(&f, Some(&user), "im.poll", vec![Value::Int(2)]).unwrap();
    assert_eq!(batch.as_array().unwrap().len(), 2);
    let rest = call(&f, Some(&user), "im.poll", vec![Value::Int(10)]).unwrap();
    assert_eq!(
        rest.as_array().unwrap()[0].get("body").unwrap().as_str(),
        Some("note2")
    );
    // Empty mailbox polls cleanly.
    let empty = call(&f, Some(&admin), "im.poll", vec![Value::Int(5)]).unwrap();
    assert!(empty.as_array().unwrap().is_empty());
    let _ = std::fs::remove_dir_all(&f.data_dir);
}

#[test]
fn md5_streams_large_files_and_honors_deadlines() {
    let f = fixture("md5stream");
    let user = f.user_dn.clone();
    // Five 64-KiB hash chunks plus a ragged tail: the digest loop must
    // stream, not slurp, and still agree with a one-shot reference hash.
    let payload: Vec<u8> = (0..5 * 64 * 1024 + 4321u32)
        .map(|i| (i % 233) as u8)
        .collect();
    std::fs::write(f.data_dir.join("files/big.dat"), &payload).unwrap();
    let mut reference = clarens_pki::md5::Md5::new();
    reference.update(&payload);
    let expected = clarens_pki::sha256::to_hex(&reference.finalize());

    let got = call(&f, Some(&user), "file.md5", vec![Value::from("/big.dat")]).unwrap();
    assert_eq!(got.as_str(), Some(expected.as_str()));

    // An already-expired budget fails between chunks with the DEADLINE
    // fault — the hash loop never runs to completion on borrowed time.
    // A different file, so the digest cached above cannot short-circuit.
    std::fs::write(f.data_dir.join("files/big2.dat"), &payload[1..]).unwrap();
    let service = f.core.registry.read().resolve("file.md5").unwrap();
    let ctx = CallContext {
        core: &f.core,
        identity: Some(std::sync::Arc::new(user)),
        session: None,
        peer_chain: vec![],
        now: f.core.now(),
        deadline: Some(std::time::Instant::now() - std::time::Duration::from_millis(1)),
        hops: 0,
    };
    let err = service
        .call(&ctx, "file.md5", &[Value::from("/big2.dat")])
        .unwrap_err();
    assert_eq!(err.code, codes::DEADLINE);
    let _ = std::fs::remove_dir_all(&f.data_dir);
}
