//! Criterion bench for the SSL-overhead claim: the same request over the
//! plaintext and encrypted transports ("Informal tests show the latter to
//! reduce performance by up to 50%", paper §4).

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_transports(c: &mut Criterion) {
    let mut group = c.benchmark_group("ssl_overhead");
    group
        .sample_size(30)
        .measurement_time(std::time::Duration::from_secs(5));

    let grid = clarens_bench::bench_grid();
    let session = clarens_bench::bench_session(&grid);
    let mut plain = clarens::ClarensClient::new(grid.addr());
    plain.set_session(session);
    group.bench_function("plaintext", |b| {
        b.iter(|| plain.call("system.list_methods", vec![]).unwrap())
    });
    drop(plain);
    grid.cleanup();

    let tls_grid = clarens_bench::bench_grid_tls();
    let mut tls = tls_grid.tls_client(&tls_grid.user);
    group.bench_function("tls", |b| {
        b.iter(|| tls.call("system.list_methods", vec![]).unwrap())
    });
    group.finish();
    drop(tls);
    tls_grid.cleanup();
}

criterion_group!(benches, bench_transports);
criterion_main!(benches);
