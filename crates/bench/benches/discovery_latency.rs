//! Criterion bench for the discovery fast path (paper §2.4 / Figure 3):
//! querying the aggregated local database vs synchronous TCP fan-out to
//! the station servers.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use monalisa_sim::{
    DiscoveryAggregator, Publication, ServiceDescriptor, ServiceQuery, StationServer,
};

fn bench_discovery(c: &mut Criterion) {
    let stations: Vec<Arc<StationServer>> = (0..3)
        .map(|i| Arc::new(StationServer::spawn(format!("s{i}"), "127.0.0.1:0").unwrap()))
        .collect();
    for site in 0..90 {
        for service in ["file", "proof", "runjob"] {
            stations[site % 3].publish_local(Publication::Service(ServiceDescriptor {
                url: format!("http://site{site}/clarens"),
                server_dn: format!("/O=g/CN=h{site}"),
                service: service.into(),
                methods: vec![format!("{service}.run")],
                attributes: Default::default(),
                timestamp: 1,
            }));
        }
    }
    let aggregator =
        DiscoveryAggregator::new(stations.clone(), Arc::new(clarens_db::Store::in_memory()));
    assert!(monalisa_sim::station::wait_until(
        std::time::Duration::from_secs(5),
        || aggregator.local_service_count() == 270,
    ));
    let query = ServiceQuery::by_service("proof");

    let mut group = c.benchmark_group("discovery_latency");
    group.sample_size(30);
    group.bench_function("local_db", |b| {
        b.iter(|| assert_eq!(aggregator.query_local(&query).len(), 90))
    });
    group.bench_function("station_fanout_tcp", |b| {
        b.iter(|| assert_eq!(aggregator.query_remote(&query).len(), 90))
    });
    group.finish();
    aggregator.shutdown();
}

criterion_group!(benches, bench_discovery);
criterion_main!(benches);
