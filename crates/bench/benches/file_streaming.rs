//! Criterion bench for file streaming (SC2003 bandwidth challenge, paper
//! §1): whole-file download over the streamed HTTP GET path vs chunked
//! `file.read` RPC pulls.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

const FILE_MB: usize = 8;

fn bench_streaming(c: &mut Criterion) {
    let grid = clarens_bench::bench_grid();
    let data = vec![0xA5u8; FILE_MB * 1024 * 1024];
    grid.write_file("/bench.dat", &data);
    let session = clarens_bench::bench_session(&grid);
    let mut client = clarens::ClarensClient::new(grid.addr());
    client.set_session(session);

    let mut group = c.benchmark_group("file_streaming");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(10))
        .throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("http_get_streamed", |b| {
        b.iter(|| {
            let bytes = client.http_get_file("/bench.dat").unwrap();
            assert_eq!(bytes.len(), data.len());
        })
    });
    group.bench_function("rpc_chunked_read", |b| {
        b.iter(|| {
            let bytes = client.file_download("/bench.dat", 4 * 1024 * 1024).unwrap();
            assert_eq!(bytes.len(), data.len());
        })
    });
    group.finish();
    grid.cleanup();
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
