//! Criterion ablation of the Clarens request path (DESIGN.md "Ablation"):
//! what each stage of the per-request pipeline costs, and the protocol
//! comparison.

use clarens_wire::{Protocol, Value};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_ablation(c: &mut Criterion) {
    let grid = clarens_bench::bench_grid();
    let session = clarens_bench::bench_session(&grid);

    let mut group = c.benchmark_group("ablation_request_path");
    group
        .sample_size(30)
        .measurement_time(std::time::Duration::from_secs(4));

    // Full path: session + ACL + DB scan + 30-string serialization.
    let mut full = clarens::ClarensClient::new(grid.addr());
    full.set_session(session.clone());
    group.bench_function("full_list_methods", |b| {
        b.iter(|| full.call("system.list_methods", vec![]).unwrap())
    });

    // Session + ACL, trivial payload (no DB scan).
    let mut echo = clarens::ClarensClient::new(grid.addr());
    echo.set_session(session.clone());
    group.bench_function("session_acl_echo", |b| {
        b.iter(|| echo.call("echo.echo", vec![Value::Int(1)]).unwrap())
    });

    // Public method, no session header: no session lookup, no ACL walk.
    let mut bare = clarens::ClarensClient::new(grid.addr());
    group.bench_function("no_checks_ping", |b| {
        b.iter(|| bare.call("system.ping", vec![]).unwrap())
    });

    // Same session+ACL workload against an uncached server — the cost the
    // epoch-invalidated caches remove.
    let uncached_grid = clarens_bench::bench_grid_uncached();
    let uncached_session = clarens_bench::bench_session(&uncached_grid);
    let mut uncached = clarens::ClarensClient::new(uncached_grid.addr());
    uncached.set_session(uncached_session);
    group.bench_function("session_acl_echo_uncached", |b| {
        b.iter(|| uncached.call("echo.echo", vec![Value::Int(1)]).unwrap())
    });

    // Protocol comparison on the same method.
    for (name, protocol) in [
        ("proto_xmlrpc", Protocol::XmlRpc),
        ("proto_soap", Protocol::Soap),
        ("proto_jsonrpc", Protocol::JsonRpc),
    ] {
        let mut client = clarens::ClarensClient::new(grid.addr()).with_protocol(protocol);
        client.set_session(session.clone());
        group.bench_function(name, |b| {
            b.iter(|| client.call("echo.echo", vec![Value::Int(1)]).unwrap())
        });
    }
    group.finish();
    uncached_grid.cleanup();
    grid.cleanup();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
