//! Microbenchmarks of the wire codecs: the serialization work inside every
//! Figure-4 request (a >30-string XML-RPC array response), plus the other
//! protocols for comparison.

use clarens_wire::{jsonrpc, soap, xmlrpc, RpcCall, RpcResponse, Value};
use criterion::{criterion_group, criterion_main, Criterion};

fn figure4_response() -> RpcResponse {
    RpcResponse::Success(Value::Array(
        (0..32)
            .map(|i| Value::from(format!("module{i}.method{i}")))
            .collect(),
    ))
}

fn bench_codecs(c: &mut Criterion) {
    let response = figure4_response();
    let call = RpcCall::new("system.list_methods", vec![]);

    let mut group = c.benchmark_group("wire_codecs");
    group.bench_function("xmlrpc_encode_response", |b| {
        b.iter(|| xmlrpc::encode_response(&response))
    });
    let encoded = xmlrpc::encode_response(&response);
    group.bench_function("xmlrpc_decode_response", |b| {
        b.iter(|| xmlrpc::decode_response(&encoded).unwrap())
    });
    group.bench_function("soap_encode_response", |b| {
        b.iter(|| soap::encode_response(&response))
    });
    let soap_encoded = soap::encode_response(&response);
    group.bench_function("soap_decode_response", |b| {
        b.iter(|| soap::decode_response(&soap_encoded).unwrap())
    });
    group.bench_function("jsonrpc_encode_response", |b| {
        b.iter(|| jsonrpc::encode_response(&response, None))
    });
    let json_encoded = jsonrpc::encode_response(&response, None);
    group.bench_function("jsonrpc_decode_response", |b| {
        b.iter(|| jsonrpc::decode_response(&json_encoded).unwrap())
    });
    group.bench_function("xmlrpc_encode_call", |b| {
        b.iter(|| xmlrpc::encode_call(&call))
    });
    group.finish();
}

criterion_group!(benches, bench_codecs);
criterion_main!(benches);
