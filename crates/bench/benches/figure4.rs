//! Criterion bench for Figure 4's workload: one `system.list_methods`
//! round trip over a keep-alive connection, with the full per-request
//! path (session check, ACL check, DB method scan, XML-RPC array).
//!
//! The full client-count sweep lives in the `repro` binary (`repro fig4`);
//! this bench tracks the single-request latency that determines it.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_list_methods(c: &mut Criterion) {
    let grid = clarens_bench::bench_grid();
    let session = clarens_bench::bench_session(&grid);
    let mut client = clarens::ClarensClient::new(grid.addr());
    client.set_session(session);

    let mut group = c.benchmark_group("figure4");
    group
        .sample_size(30)
        .measurement_time(std::time::Duration::from_secs(5));
    group.bench_function("list_methods_roundtrip", |b| {
        b.iter(|| {
            let methods = client.call("system.list_methods", vec![]).unwrap();
            assert!(methods.as_array().unwrap().len() > 30);
        })
    });

    // The same round trip with the authorization caches disabled — the
    // paper's original "no caching" configuration.
    let uncached_grid = clarens_bench::bench_grid_uncached();
    let uncached_session = clarens_bench::bench_session(&uncached_grid);
    let mut uncached = clarens::ClarensClient::new(uncached_grid.addr());
    uncached.set_session(uncached_session);
    group.bench_function("list_methods_roundtrip_uncached", |b| {
        b.iter(|| {
            let methods = uncached.call("system.list_methods", vec![]).unwrap();
            assert!(methods.as_array().unwrap().len() > 30);
        })
    });
    group.finish();
    uncached_grid.cleanup();
    grid.cleanup();
}

criterion_group!(benches, bench_list_methods);
criterion_main!(benches);
