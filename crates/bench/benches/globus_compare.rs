//! Criterion bench for the Globus comparison (paper §4 footnote 4):
//! one trivial `echo.echo` call via Clarens vs the GT3-like baseline.

use clarens_wire::Value;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_stacks(c: &mut Criterion) {
    let mut group = c.benchmark_group("globus_compare");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(5));

    let grid = clarens_bench::bench_grid();
    let mut client = grid.logged_in_client(&grid.user);
    group.bench_function("clarens_echo", |b| {
        b.iter(|| client.call("echo.echo", vec![Value::Int(7)]).unwrap())
    });
    drop(client);
    grid.cleanup();

    let (root, credential) = gt3_baseline::test_credentials(42);
    let server = gt3_baseline::Gt3Server::start(
        "127.0.0.1:0",
        gt3_baseline::Gt3Config::default(),
        vec![root],
    )
    .unwrap();
    let mut gt3 = gt3_baseline::Gt3Client::new(
        server.local_addr().to_string(),
        gt3_baseline::Gt3Config::default(),
        credential,
    );
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(8));
    group.bench_function("gt3_echo", |b| b.iter(|| gt3.echo(Value::Int(7)).unwrap()));
    group.finish();
    server.shutdown();
}

criterion_group!(benches, bench_stacks);
criterion_main!(benches);
