//! Allocation accounting end-to-end: registers the counting allocator for
//! this test process and measures the server-side allocations of a
//! steady-state `echo.echo` loop, streaming encoders vs the DOM reference
//! encoders.
//!
//! Everything runs inside ONE `#[test]` so no concurrent test thread
//! pollutes the process-global counters.

use clarens::testkit::{GridOptions, TestGrid};
use clarens_bench::{alloc_count, bench_grid_dom, bench_session, measure_allocs_per_request};
use clarens_wire::Protocol;

#[global_allocator]
static ALLOC: alloc_count::CountingAlloc = alloc_count::CountingAlloc;

#[test]
fn counting_allocator_and_streaming_reduction() {
    // --- allocator mechanics -------------------------------------------
    assert!(alloc_count::allocator_installed());
    let (before, _) = alloc_count::snapshot();
    drop(vec![0u8; 4096]);
    assert_eq!(
        alloc_count::snapshot().0,
        before,
        "counting must be off by default"
    );

    alloc_count::set_counting(true);
    let v = vec![0u8; 4096];
    alloc_count::set_counting(false);
    let (after, bytes) = alloc_count::snapshot();
    drop(v);
    assert!(after > before, "enabled counting must record allocations");
    assert!(bytes >= 4096, "byte accounting must include the 4 KiB vec");

    // Exempt threads are invisible to the counter.
    alloc_count::set_counting(true);
    std::thread::spawn(|| {
        alloc_count::exempt_current_thread();
        drop(vec![0u8; 1 << 20]);
    })
    .join()
    .unwrap();
    alloc_count::set_counting(false);
    let (_, after_bytes) = alloc_count::snapshot();
    // Spawning itself allocates on this (non-exempt) thread; the exempt
    // thread's 1 MiB buffer must not appear in the byte count.
    assert!(
        after_bytes.saturating_sub(bytes) < (1 << 20),
        "exempt thread's allocation was counted"
    );

    // --- streaming vs DOM, measured ------------------------------------
    // Small worker counts: one keep-alive connection only ever exercises
    // one worker, and idle workers' stacks are noise we don't need.
    let streaming_grid = TestGrid::start_with(GridOptions {
        workers: 4,
        ..Default::default()
    });
    let session = bench_session(&streaming_grid);
    let streaming =
        measure_allocs_per_request(&streaming_grid.addr(), &session, 400, Protocol::XmlRpc);
    streaming_grid.cleanup();

    let dom_grid = bench_grid_dom();
    let session = bench_session(&dom_grid);
    let dom = measure_allocs_per_request(&dom_grid.addr(), &session, 400, Protocol::XmlRpc);
    dom_grid.cleanup();

    println!(
        "allocs/request: streaming {:.1} vs DOM {:.1}; bytes/request: {:.0} vs {:.0}",
        streaming.allocs_per_call,
        dom.allocs_per_call,
        streaming.bytes_per_call,
        dom.bytes_per_call
    );
    // Acceptance criterion: the allocation-lean path (streaming encoders,
    // streaming call decoder, buffer pool) must at least halve the
    // steady-state allocations per request. Measured at 18 vs 56 on the
    // reference machine — plenty of headroom on the 50% bar.
    assert!(
        streaming.allocs_per_call <= dom.allocs_per_call * 0.5,
        "streaming path must halve DOM-path allocations ({:.1} vs {:.1})",
        streaming.allocs_per_call,
        dom.allocs_per_call
    );
}
