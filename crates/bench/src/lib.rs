//! # clarens-bench — workload drivers for the paper's evaluation
//!
//! Shared machinery for the `repro` binary (which prints every table and
//! figure of the paper's evaluation section, see EXPERIMENTS.md) and the
//! Criterion benches. Each experiment in DESIGN.md's per-experiment index
//! maps to one function here.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use clarens::testkit::{GridOptions, TestGrid};
use clarens::ClarensClient;
use clarens_wire::{Protocol, Value};

pub mod alloc_count;

/// Result of one throughput measurement point.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputPoint {
    /// Concurrent clients.
    pub clients: usize,
    /// Total completed calls.
    pub calls: u64,
    /// Calls per second.
    pub calls_per_sec: f64,
}

/// Drive `clients` concurrent clients against `addr`, each looping
/// `method` over a shared keep-alive connection for `duration`. Mirrors
/// the paper's Figure-4 driver ("a single process opening connections to
/// the server and completing requests asynchronously" — here, one thread
/// per asynchronous client).
pub fn measure_throughput(
    addr: &str,
    session: &str,
    clients: usize,
    duration: Duration,
    method: &'static str,
    protocol: Protocol,
) -> ThroughputPoint {
    let stop = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::with_capacity(clients);
    for _ in 0..clients {
        let addr = addr.to_owned();
        let session = session.to_owned();
        let stop = Arc::clone(&stop);
        let total = Arc::clone(&total);
        handles.push(std::thread::spawn(move || {
            let mut client = ClarensClient::new(addr).with_protocol(protocol);
            // An empty session means "anonymous client" — send no header at
            // all rather than an empty one the server would look up.
            if !session.is_empty() {
                client.set_session(session);
            }
            let mut local = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let result = match method {
                    "echo.echo" => client.call(method, vec![Value::Int(1)]).map(|_| ()),
                    other => client.call(other, vec![]).map(|_| ()),
                };
                match result {
                    Ok(()) => local += 1,
                    Err(e) => panic!("bench call failed: {e}"),
                }
            }
            total.fetch_add(local, Ordering::Relaxed);
        }));
    }
    let t0 = Instant::now();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().expect("bench client thread");
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let calls = total.load(Ordering::Relaxed);
    ThroughputPoint {
        clients,
        calls,
        calls_per_sec: calls as f64 / elapsed,
    }
}

/// TLS variant of [`measure_throughput`]: each client opens one secure
/// channel (identity from the handshake, no session header needed).
pub fn measure_throughput_tls(
    grid: &TestGrid,
    clients: usize,
    duration: Duration,
) -> ThroughputPoint {
    let stop = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::with_capacity(clients);
    for _ in 0..clients {
        let addr = grid.addr();
        let credential = grid.user.clone();
        let roots = vec![grid.ca.certificate.clone()];
        let stop = Arc::clone(&stop);
        let total = Arc::clone(&total);
        handles.push(std::thread::spawn(move || {
            let mut client = ClarensClient::new_tls(addr, credential, roots);
            let mut local = 0u64;
            while !stop.load(Ordering::Relaxed) {
                client
                    .call("system.list_methods", vec![])
                    .expect("tls call");
                local += 1;
            }
            total.fetch_add(local, Ordering::Relaxed);
        }));
    }
    let t0 = Instant::now();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().expect("bench client thread");
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let calls = total.load(Ordering::Relaxed);
    ThroughputPoint {
        clients,
        calls,
        calls_per_sec: calls as f64 / elapsed,
    }
}

/// Start the standard benchmark grid: plaintext, permissive ACLs, enough
/// workers for the paper's 79-client sweep.
pub fn bench_grid() -> TestGrid {
    TestGrid::start_with(GridOptions {
        workers: 96,
        ..Default::default()
    })
}

/// Start the benchmark grid with the authorization caches disabled —
/// the paper's original "No caching was performed on the server"
/// configuration, kept for cached-vs-uncached comparison.
pub fn bench_grid_uncached() -> TestGrid {
    TestGrid::start_with(GridOptions {
        workers: 96,
        auth_cache: false,
        ..Default::default()
    })
}

/// Start the benchmark grid with request span timing disabled (counters
/// stay live) — the baseline for measuring telemetry overhead.
pub fn bench_grid_no_telemetry() -> TestGrid {
    TestGrid::start_with(GridOptions {
        workers: 96,
        telemetry: false,
        ..Default::default()
    })
}

/// Start the benchmark grid in the pre-optimization configuration: DOM
/// reference encoders and no buffer recycling — the "before" side of the
/// allocation ablation (Ablation E).
pub fn bench_grid_dom() -> TestGrid {
    TestGrid::start_with(GridOptions {
        workers: 96,
        streaming_encode: false,
        buffer_pool: false,
        ..Default::default()
    })
}

/// Start the TLS benchmark grid.
pub fn bench_grid_tls() -> TestGrid {
    TestGrid::start_with(GridOptions {
        workers: 96,
        tls: true,
        ..Default::default()
    })
}

/// Open one session on the grid for session-header clients.
pub fn bench_session(grid: &TestGrid) -> String {
    let client = grid.logged_in_client(&grid.user);
    client.session_id().expect("session").to_owned()
}

/// Server-side allocation profile of a steady-state request loop.
#[derive(Debug, Clone, Copy)]
pub struct AllocReport {
    /// Calls measured (after warm-up).
    pub calls: u64,
    /// Allocation events per request on the server side.
    pub allocs_per_call: f64,
    /// Bytes requested from the allocator per request.
    pub bytes_per_call: f64,
}

/// Measure server-side allocations per request for a steady-state
/// `echo.echo` loop over one keep-alive connection.
///
/// Requires [`alloc_count::CountingAlloc`] to be registered as the global
/// allocator (the `repro` binary does this); returns zeros otherwise. The
/// calling thread is exempted from counting, so in an in-process grid the
/// counts come from the server worker alone.
pub fn measure_allocs_per_request(
    addr: &str,
    session: &str,
    calls: u64,
    protocol: Protocol,
) -> AllocReport {
    alloc_count::exempt_current_thread();
    let mut client = ClarensClient::new(addr.to_owned()).with_protocol(protocol);
    if !session.is_empty() {
        client.set_session(session.to_owned());
    }
    // Warm-up: fill the worker's buffer pool and the auth caches so the
    // measured window is the recycled steady state.
    for i in 0..64 {
        client
            .call("echo.echo", vec![Value::Int(i)])
            .expect("warm-up call");
    }
    let (a0, b0) = alloc_count::snapshot();
    alloc_count::set_counting(true);
    for i in 0..calls {
        client
            .call("echo.echo", vec![Value::Int(i as i64)])
            .expect("measured call");
    }
    alloc_count::set_counting(false);
    let (a1, b1) = alloc_count::snapshot();
    AllocReport {
        calls,
        allocs_per_call: (a1 - a0) as f64 / calls as f64,
        bytes_per_call: (b1 - b0) as f64 / calls as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_driver_smoke() {
        let grid = bench_grid();
        let session = bench_session(&grid);
        let point = measure_throughput(
            &grid.addr(),
            &session,
            2,
            Duration::from_millis(300),
            "system.list_methods",
            Protocol::XmlRpc,
        );
        assert_eq!(point.clients, 2);
        assert!(point.calls > 0, "no calls completed");
        assert!(point.calls_per_sec > 0.0);
        grid.cleanup();
    }
}
