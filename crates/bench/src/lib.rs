//! # clarens-bench — workload drivers for the paper's evaluation
//!
//! Shared machinery for the `repro` binary (which prints every table and
//! figure of the paper's evaluation section, see EXPERIMENTS.md) and the
//! Criterion benches. Each experiment in DESIGN.md's per-experiment index
//! maps to one function here.

use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use clarens::testkit::{GridOptions, TestGrid};
use clarens::ClarensClient;
use clarens_wire::{Protocol, RpcCall, Value};

pub mod alloc_count;
pub mod fuzzer;

/// Result of one throughput measurement point.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputPoint {
    /// Concurrent clients.
    pub clients: usize,
    /// Total completed calls.
    pub calls: u64,
    /// Calls per second.
    pub calls_per_sec: f64,
}

/// Drive `clients` concurrent clients against `addr`, each looping
/// `method` over a shared keep-alive connection for `duration`. Mirrors
/// the paper's Figure-4 driver ("a single process opening connections to
/// the server and completing requests asynchronously" — here, one thread
/// per asynchronous client).
pub fn measure_throughput(
    addr: &str,
    session: &str,
    clients: usize,
    duration: Duration,
    method: &'static str,
    protocol: Protocol,
) -> ThroughputPoint {
    let stop = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::with_capacity(clients);
    for _ in 0..clients {
        let addr = addr.to_owned();
        let session = session.to_owned();
        let stop = Arc::clone(&stop);
        let total = Arc::clone(&total);
        handles.push(std::thread::spawn(move || {
            let mut client = ClarensClient::new(addr).with_protocol(protocol);
            // An empty session means "anonymous client" — send no header at
            // all rather than an empty one the server would look up.
            if !session.is_empty() {
                client.set_session(session);
            }
            let mut local = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let result = match method {
                    "echo.echo" => client.call(method, vec![Value::Int(1)]).map(|_| ()),
                    other => client.call(other, vec![]).map(|_| ()),
                };
                match result {
                    Ok(()) => local += 1,
                    Err(e) => panic!("bench call failed: {e}"),
                }
            }
            total.fetch_add(local, Ordering::Relaxed);
        }));
    }
    let t0 = Instant::now();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().expect("bench client thread");
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let calls = total.load(Ordering::Relaxed);
    ThroughputPoint {
        clients,
        calls,
        calls_per_sec: calls as f64 / elapsed,
    }
}

/// Like [`measure_throughput`], but every call carries a caller-supplied
/// parameter list (cloned per call). This is how the binproto ablation
/// drives the struct-heavy `file.ls`-style payload through `echo.echo`
/// so both request and response carry the structure.
pub fn measure_throughput_params(
    addr: &str,
    session: &str,
    clients: usize,
    duration: Duration,
    method: &'static str,
    params: Vec<Value>,
    protocol: Protocol,
) -> ThroughputPoint {
    let stop = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::with_capacity(clients);
    for _ in 0..clients {
        let addr = addr.to_owned();
        let session = session.to_owned();
        let params = params.clone();
        let stop = Arc::clone(&stop);
        let total = Arc::clone(&total);
        handles.push(std::thread::spawn(move || {
            let mut client = ClarensClient::new(addr).with_protocol(protocol);
            if !session.is_empty() {
                client.set_session(session);
            }
            let mut local = 0u64;
            while !stop.load(Ordering::Relaxed) {
                match client.call(method, params.clone()) {
                    Ok(_) => local += 1,
                    Err(e) => panic!("bench call failed: {e}"),
                }
            }
            total.fetch_add(local, Ordering::Relaxed);
        }));
    }
    let t0 = Instant::now();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().expect("bench client thread");
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let calls = total.load(Ordering::Relaxed);
    ThroughputPoint {
        clients,
        calls,
        calls_per_sec: calls as f64 / elapsed,
    }
}

/// Throughput over one pipelined persistent connection: `depth` requests
/// are written back-to-back, then `depth` responses are read and decoded,
/// in lock-step batches for `duration`. Pipelining amortizes the
/// per-round-trip syscall and scheduler cost that is identical across
/// protocols, so the per-request codec cost — the thing a wire-protocol
/// ablation is after — dominates the measurement. The call is encoded and
/// every response decoded inside the loop (the full per-call codec cost a
/// real RPC client pays); only driver bookkeeping is hoisted out.
pub fn measure_throughput_pipelined(
    addr: &str,
    session: &str,
    depth: usize,
    duration: Duration,
    method: &str,
    params: Vec<Value>,
    protocol: Protocol,
) -> ThroughputPoint {
    use std::io::{Read, Write};

    let stream = std::net::TcpStream::connect(addr).expect("pipelined connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let head_prefix = format!(
        "POST /clarens HTTP/1.1\r\nhost: {addr}\r\ncontent-type: {}\r\n\
         x-clarens-session: {session}\r\ncontent-length: ",
        protocol.content_type(),
    );
    let call = RpcCall::new(method, params);
    let expected = call.params.first().cloned();
    let mut out: Vec<u8> = Vec::with_capacity(64 * 1024);
    let mut inbuf: Vec<u8> = Vec::with_capacity(64 * 1024);
    let mut chunk = vec![0u8; 64 * 1024];
    let mut itoa = [0u8; 20];
    let t0 = Instant::now();
    let mut calls = 0u64;
    while t0.elapsed() < duration {
        out.clear();
        for _ in 0..depth {
            let body = clarens_wire::encode_call(protocol, &call);
            out.extend_from_slice(head_prefix.as_bytes());
            // content-length digits without a format! round-trip.
            let mut n = body.len();
            let mut at = itoa.len();
            loop {
                at -= 1;
                itoa[at] = b'0' + (n % 10) as u8;
                n /= 10;
                if n == 0 {
                    break;
                }
            }
            out.extend_from_slice(&itoa[at..]);
            out.extend_from_slice(b"\r\n\r\n");
            out.extend_from_slice(&body);
        }
        (&stream).write_all(&out).expect("pipelined write");
        // Read until `depth` complete responses are buffered.
        inbuf.clear();
        let mut bodies: Vec<(usize, usize)> = Vec::with_capacity(depth);
        let mut pos = 0usize;
        while bodies.len() < depth {
            while bodies.len() < depth {
                let Some(head_end) = inbuf[pos..]
                    .windows(4)
                    .position(|w| w == b"\r\n\r\n")
                    .map(|i| pos + i + 4)
                else {
                    break;
                };
                let (status, len) = scan_response_head(&inbuf[pos..head_end]);
                assert_eq!(status, 200, "pipelined request failed");
                if inbuf.len() < head_end + len {
                    break;
                }
                bodies.push((head_end, len));
                pos = head_end + len;
            }
            if bodies.len() == depth {
                break;
            }
            let n = (&stream).read(&mut chunk).expect("pipelined read");
            assert!(n > 0, "server closed mid-batch");
            inbuf.extend_from_slice(&chunk[..n]);
        }
        for (start, len) in &bodies {
            match clarens_wire::decode_response(protocol, &inbuf[*start..*start + *len])
                .expect("pipelined decode")
            {
                clarens_wire::RpcResponse::Success(v) => {
                    if let Some(expected) = &expected {
                        assert_eq!(&v, expected, "echoed value diverged");
                    }
                }
                clarens_wire::RpcResponse::Fault(f) => panic!("pipelined fault: {f:?}"),
            }
        }
        calls += depth as u64;
    }
    let elapsed = t0.elapsed().as_secs_f64();
    ThroughputPoint {
        clients: 1,
        calls,
        calls_per_sec: calls as f64 / elapsed,
    }
}

/// Minimal response-head scan for the pipelined driver: status code and
/// content-length, nothing else.
fn scan_response_head(head: &[u8]) -> (u16, usize) {
    let status: u16 = std::str::from_utf8(&head[9..12])
        .ok()
        .and_then(|s| s.parse().ok())
        .expect("malformed status line");
    let mut content_length = 0usize;
    for line in head.split(|&b| b == b'\n') {
        if line.len() >= 15 && line[..15].eq_ignore_ascii_case(b"content-length:") {
            content_length = std::str::from_utf8(&line[15..])
                .ok()
                .and_then(|s| s.trim().parse().ok())
                .expect("malformed content-length");
        }
    }
    (status, content_length)
}

/// TLS variant of [`measure_throughput`]: each client opens one secure
/// channel (identity from the handshake, no session header needed).
pub fn measure_throughput_tls(
    grid: &TestGrid,
    clients: usize,
    duration: Duration,
) -> ThroughputPoint {
    let stop = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::with_capacity(clients);
    for _ in 0..clients {
        let addr = grid.addr();
        let credential = grid.user.clone();
        let roots = vec![grid.ca.certificate.clone()];
        let stop = Arc::clone(&stop);
        let total = Arc::clone(&total);
        handles.push(std::thread::spawn(move || {
            let mut client = ClarensClient::new_tls(addr, credential, roots);
            let mut local = 0u64;
            while !stop.load(Ordering::Relaxed) {
                client
                    .call("system.list_methods", vec![])
                    .expect("tls call");
                local += 1;
            }
            total.fetch_add(local, Ordering::Relaxed);
        }));
    }
    let t0 = Instant::now();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().expect("bench client thread");
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let calls = total.load(Ordering::Relaxed);
    ThroughputPoint {
        clients,
        calls,
        calls_per_sec: calls as f64 / elapsed,
    }
}

/// Result of one keep-alive connection-sweep point (Ablation F).
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// Concurrent keep-alive connections attempted.
    pub connections: usize,
    /// Total completed calls across all connections.
    pub calls: u64,
    /// Completed calls per second.
    pub calls_per_sec: f64,
    /// Connections that completed at least one call.
    pub served: usize,
    /// Connections that gave up before the window ended (read timeout while
    /// starved behind a pinned worker, a `503` shed, or a dropped socket).
    pub stalled: usize,
    /// Whatever `mid_sample` returned halfway through the window (the
    /// callers pass a parked-connections gauge probe).
    pub mid_sample: u64,
}

/// The wire bytes of one `system.ping` XML-RPC POST, reused verbatim by
/// every sweep client: the sweep stresses connection scheduling, not RPC
/// encoding, and `system.ping` needs no session so every connection is
/// self-contained.
fn ping_request_bytes() -> Vec<u8> {
    let body = clarens_wire::encode_call(
        Protocol::XmlRpc,
        &RpcCall {
            method: "system.ping".into(),
            params: vec![],
            id: Some(Value::Int(1)),
        },
    );
    let mut request = format!(
        "POST /clarens HTTP/1.1\r\nhost: sweep\r\ncontent-type: text/xml\r\ncontent-length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    request.extend_from_slice(&body);
    request
}

/// Connect with exponential backoff: a 1024-connection point overruns the
/// listen backlog no matter how the connects are staggered, so refused or
/// reset connects retry instead of failing the client.
fn connect_patiently(addr: &str) -> std::io::Result<TcpStream> {
    let mut delay = Duration::from_millis(5);
    for _ in 0..8 {
        match TcpStream::connect(addr) {
            Ok(sock) => return Ok(sock),
            Err(_) => {
                std::thread::sleep(delay);
                delay *= 2;
            }
        }
    }
    TcpStream::connect(addr)
}

/// Drive `connections` concurrent keep-alive connections against `addr`,
/// each looping `system.ping` with `think` of client-side idle time between
/// calls, for `duration`. This is the Ablation-F workload: the think time
/// makes every connection idle most of the time, which is exactly the
/// pattern that pins the thread-per-connection path (a worker blocks in
/// `read` during each client's think) while the parked-connection path
/// multiplexes all of them over a few workers.
///
/// Clients that starve behind a pinned worker hit a 2-second read timeout
/// and are counted in [`SweepPoint::stalled`] instead of panicking — with
/// `workers` far below `connections`, starvation is the expected blocking-
/// mode outcome, and surviving it is what the sweep measures.
///
/// `mid_sample` runs on the calling thread halfway through the window;
/// callers pass a probe of the parked-connections gauge so the point
/// records how many connections were parked under steady load.
pub fn measure_keepalive_sweep(
    addr: &str,
    connections: usize,
    duration: Duration,
    think: Duration,
    mid_sample: impl FnOnce() -> u64,
) -> SweepPoint {
    let request = Arc::new(ping_request_bytes());
    let stop = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicU64::new(0));
    let served = Arc::new(AtomicU64::new(0));
    let stalled = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::with_capacity(connections);
    for i in 0..connections {
        let addr = addr.to_owned();
        let request = Arc::clone(&request);
        let stop = Arc::clone(&stop);
        let total = Arc::clone(&total);
        let served = Arc::clone(&served);
        let stalled = Arc::clone(&stalled);
        handles.push(
            std::thread::Builder::new()
                // Up to 1024 client threads; the default 8 MiB stacks would
                // reserve gigabytes of address space for threads that only
                // write a static buffer and parse a tiny response.
                .stack_size(128 * 1024)
                .spawn(move || {
                    // Stagger connects so a big point ramps over ~50 ms
                    // instead of SYN-flooding the accept backlog at once.
                    std::thread::sleep(Duration::from_micros((i as u64 % 256) * 200));
                    let sock = match connect_patiently(&addr) {
                        Ok(sock) => sock,
                        Err(_) => {
                            stalled.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    };
                    sock.set_read_timeout(Some(Duration::from_secs(2))).ok();
                    sock.set_write_timeout(Some(Duration::from_secs(2))).ok();
                    sock.set_nodelay(true).ok();
                    let mut writer = match sock.try_clone() {
                        Ok(clone) => clone,
                        Err(_) => {
                            stalled.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    };
                    let mut reader = BufReader::new(sock);
                    let mut local = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let ok = writer.write_all(&request).is_ok()
                            && matches!(
                                clarens_httpd::parse::read_response(&mut reader, 64 * 1024),
                                Ok(response) if response.status == 200
                            );
                        if !ok {
                            // Starved, shed, or torn down. A failure after
                            // the stop flag is just shutdown noise.
                            if !stop.load(Ordering::Relaxed) {
                                stalled.fetch_add(1, Ordering::Relaxed);
                            }
                            break;
                        }
                        local += 1;
                        if !think.is_zero() {
                            std::thread::sleep(think);
                        }
                    }
                    total.fetch_add(local, Ordering::Relaxed);
                    if local > 0 {
                        served.fetch_add(1, Ordering::Relaxed);
                    }
                })
                .expect("spawn sweep client"),
        );
    }
    let t0 = Instant::now();
    std::thread::sleep(duration / 2);
    let mid = mid_sample();
    std::thread::sleep(duration.saturating_sub(t0.elapsed()));
    // Clock the window at the stop flag, not after the joins: starved
    // clients take up to their 2 s read timeout to notice the flag, and that
    // teardown tail is not measurement time.
    let elapsed = t0.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    for handle in handles {
        handle.join().expect("sweep client thread");
    }
    let calls = total.load(Ordering::Relaxed);
    SweepPoint {
        connections,
        calls,
        calls_per_sec: calls as f64 / elapsed,
        served: served.load(Ordering::Relaxed) as usize,
        stalled: stalled.load(Ordering::Relaxed) as usize,
        mid_sample: mid,
    }
}

/// A set of idle keep-alive connections held open against a server — the
/// `repro quick` gate parks 256 of these and asserts active traffic does
/// not slow down. Each connection completes one `system.ping` so the server
/// sees it as a mid-stream keep-alive client, then goes quiet.
pub struct IdleConnections {
    socks: Vec<(TcpStream, BufReader<TcpStream>)>,
    request: Vec<u8>,
}

impl IdleConnections {
    /// Open `n` connections to `addr` and park them all.
    pub fn open(addr: &str, n: usize) -> IdleConnections {
        let request = ping_request_bytes();
        let socks = (0..n)
            .map(|_| {
                let sock = connect_patiently(addr).expect("idle connect");
                sock.set_read_timeout(Some(Duration::from_secs(5))).ok();
                sock.set_nodelay(true).ok();
                let reader = BufReader::new(sock.try_clone().expect("clone idle socket"));
                (sock, reader)
            })
            .collect();
        let mut idle = IdleConnections { socks, request };
        idle.refresh();
        idle
    }

    /// Complete one ping on every connection, restarting each one's
    /// server-side idle clock (the grid expires parked connections after
    /// its read timeout).
    pub fn refresh(&mut self) {
        for (sock, reader) in &mut self.socks {
            sock.write_all(&self.request).expect("idle ping write");
            let response =
                clarens_httpd::parse::read_response(reader, 64 * 1024).expect("idle ping response");
            assert_eq!(response.status, 200, "idle keep-alive ping must succeed");
        }
    }

    /// Number of connections held.
    pub fn len(&self) -> usize {
        self.socks.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.socks.is_empty()
    }
}

/// A swarm of deliberately slow HTTP readers: every connection requests
/// `target` once, then drains its response at roughly `bytes_per_sec`
/// from a single background thread. The server-side counterpart of a WAN
/// full of modem-grade consumers — each half-written response must park
/// in the poller (Ablation G) instead of pinning a worker.
pub struct SlowReaderSwarm {
    stop: Arc<AtomicBool>,
    drained: Arc<AtomicU64>,
    handle: Option<std::thread::JoinHandle<()>>,
    count: usize,
}

impl SlowReaderSwarm {
    /// Open `n` connections to `addr`, send each a `GET target`, and start
    /// the drain thread.
    pub fn open(addr: &str, target: &str, n: usize, bytes_per_sec: usize) -> SlowReaderSwarm {
        let request = format!("GET {target} HTTP/1.1\r\nhost: bench\r\nconnection: close\r\n\r\n");
        let mut socks = Vec::with_capacity(n);
        for _ in 0..n {
            let mut sock = connect_patiently(addr).expect("swarm connect");
            sock.set_nodelay(true).ok();
            sock.write_all(request.as_bytes()).expect("swarm request");
            sock.set_nonblocking(true).expect("swarm nonblocking");
            socks.push(sock);
        }
        let stop = Arc::new(AtomicBool::new(false));
        let drained = Arc::new(AtomicU64::new(0));
        let thread_stop = Arc::clone(&stop);
        let thread_drained = Arc::clone(&drained);
        // One pass over every socket per tick, a small read each: ~10
        // ticks/second gives each connection bytes_per_sec of drain.
        let per_tick = (bytes_per_sec / 10).max(1);
        let handle = std::thread::spawn(move || {
            use std::io::Read;
            let mut buf = vec![0u8; per_tick];
            while !thread_stop.load(Ordering::Relaxed) {
                for sock in &mut socks {
                    // A read error means nothing buffered yet, or the
                    // server gave up on us — either way the swarm keeps
                    // crawling.
                    if let Ok(got) = sock.read(&mut buf) {
                        thread_drained.fetch_add(got as u64, Ordering::Relaxed);
                    }
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        });
        SlowReaderSwarm {
            stop,
            drained,
            handle: Some(handle),
            count: n,
        }
    }

    /// Connections opened.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the swarm is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Response bytes drained so far across the whole swarm.
    pub fn drained_bytes(&self) -> u64 {
        self.drained.load(Ordering::Relaxed)
    }
}

impl Drop for SlowReaderSwarm {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Single-stream GET throughput: fetch `path` over a warm keep-alive
/// connection until `duration` elapses; returns (bytes moved, MiB/s).
pub fn measure_get_throughput(
    addr: &str,
    session: &str,
    path: &str,
    duration: Duration,
) -> (u64, f64) {
    let mut client = ClarensClient::new(addr.to_owned());
    client.set_session(session.to_owned());
    let t0 = Instant::now();
    let mut bytes = 0u64;
    loop {
        bytes += client.http_get_file(path).expect("bench GET").len() as u64;
        if t0.elapsed() >= duration {
            break;
        }
    }
    (
        bytes,
        bytes as f64 / t0.elapsed().as_secs_f64() / (1024.0 * 1024.0),
    )
}

/// Start the Ablation-G grid: a small worker pool with the zero-copy
/// file path on (`sendfile(2)`) or off (portable buffered copy).
pub fn bench_grid_bulk(workers: usize, zero_copy: bool) -> TestGrid {
    TestGrid::start_with(GridOptions {
        workers,
        zero_copy,
        ..Default::default()
    })
}

/// Start the Ablation-F grid: a deliberately small worker pool with the
/// connection scheduler on (`park_idle`) or off (thread-per-connection).
/// The small pool is the point — parked mode serves hundreds of keep-alive
/// connections from it, while the blocking path pins one worker per
/// connection and starves the rest.
pub fn bench_grid_sweep(workers: usize, park_idle: bool) -> TestGrid {
    TestGrid::start_with(GridOptions {
        workers,
        park_idle,
        ..Default::default()
    })
}

/// Start the standard benchmark grid: plaintext, permissive ACLs, enough
/// workers for the paper's 79-client sweep.
pub fn bench_grid() -> TestGrid {
    TestGrid::start_with(GridOptions {
        workers: 96,
        ..Default::default()
    })
}

/// Start the benchmark grid with the authorization caches disabled —
/// the paper's original "No caching was performed on the server"
/// configuration, kept for cached-vs-uncached comparison.
pub fn bench_grid_uncached() -> TestGrid {
    TestGrid::start_with(GridOptions {
        workers: 96,
        auth_cache: false,
        ..Default::default()
    })
}

/// Start the benchmark grid with request span timing disabled (counters
/// stay live) — the baseline for measuring telemetry overhead.
pub fn bench_grid_no_telemetry() -> TestGrid {
    TestGrid::start_with(GridOptions {
        workers: 96,
        telemetry: false,
        ..Default::default()
    })
}

/// Start the benchmark grid in the pre-optimization configuration: DOM
/// reference encoders and no buffer recycling — the "before" side of the
/// allocation ablation (Ablation E).
pub fn bench_grid_dom() -> TestGrid {
    TestGrid::start_with(GridOptions {
        workers: 96,
        streaming_encode: false,
        buffer_pool: false,
        ..Default::default()
    })
}

/// Start the TLS benchmark grid.
pub fn bench_grid_tls() -> TestGrid {
    TestGrid::start_with(GridOptions {
        workers: 96,
        tls: true,
        ..Default::default()
    })
}

/// Open one session on the grid for session-header clients.
pub fn bench_session(grid: &TestGrid) -> String {
    let client = grid.logged_in_client(&grid.user);
    client.session_id().expect("session").to_owned()
}

/// Server-side allocation profile of a steady-state request loop.
#[derive(Debug, Clone, Copy)]
pub struct AllocReport {
    /// Calls measured (after warm-up).
    pub calls: u64,
    /// Allocation events per request on the server side.
    pub allocs_per_call: f64,
    /// Bytes requested from the allocator per request.
    pub bytes_per_call: f64,
}

/// Measure server-side allocations per request for a steady-state
/// `echo.echo` loop over one keep-alive connection.
///
/// Requires [`alloc_count::CountingAlloc`] to be registered as the global
/// allocator (the `repro` binary does this); returns zeros otherwise. The
/// calling thread is exempted from counting, so in an in-process grid the
/// counts come from the server worker alone.
pub fn measure_allocs_per_request(
    addr: &str,
    session: &str,
    calls: u64,
    protocol: Protocol,
) -> AllocReport {
    alloc_count::exempt_current_thread();
    let mut client = ClarensClient::new(addr.to_owned()).with_protocol(protocol);
    if !session.is_empty() {
        client.set_session(session.to_owned());
    }
    // Warm-up: fill the worker's buffer pool and the auth caches so the
    // measured window is the recycled steady state.
    for i in 0..64 {
        client
            .call("echo.echo", vec![Value::Int(i)])
            .expect("warm-up call");
    }
    let (a0, b0) = alloc_count::snapshot();
    alloc_count::set_counting(true);
    for i in 0..calls {
        client
            .call("echo.echo", vec![Value::Int(i as i64)])
            .expect("measured call");
    }
    alloc_count::set_counting(false);
    let (a1, b1) = alloc_count::snapshot();
    AllocReport {
        calls,
        allocs_per_call: (a1 - a0) as f64 / calls as f64,
        bytes_per_call: (b1 - b0) as f64 / calls as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_driver_smoke() {
        let grid = bench_grid();
        let session = bench_session(&grid);
        let point = measure_throughput(
            &grid.addr(),
            &session,
            2,
            Duration::from_millis(300),
            "system.list_methods",
            Protocol::XmlRpc,
        );
        assert_eq!(point.clients, 2);
        assert!(point.calls > 0, "no calls completed");
        assert!(point.calls_per_sec > 0.0);
        grid.cleanup();
    }

    #[test]
    fn keepalive_sweep_driver_smoke() {
        let grid = bench_grid_sweep(2, true);
        let http = &grid.core().telemetry.http;
        let point = measure_keepalive_sweep(
            &grid.addr(),
            8,
            Duration::from_millis(600),
            Duration::from_millis(2),
            || http.parked.get(),
        );
        assert_eq!(point.connections, 8);
        assert_eq!(point.served, 8, "every connection should complete calls");
        assert_eq!(point.stalled, 0, "nothing should starve at 8 connections");
        assert!(point.calls > 0);
        grid.cleanup();
    }

    #[test]
    fn idle_connections_park_and_refresh() {
        let grid = bench_grid_sweep(2, true);
        let mut idle = IdleConnections::open(&grid.addr(), 16);
        assert_eq!(idle.len(), 16);
        // All 16 are between requests now; give the poller a moment to
        // take them and the parked gauge must account for every one.
        let http = &grid.core().telemetry.http;
        let deadline = Instant::now() + Duration::from_secs(2);
        while http.parked.get() < 16 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(http.parked.get(), 16, "idle connections must be parked");
        idle.refresh();
        drop(idle);
        grid.cleanup();
    }
}
