//! Regenerate the paper's evaluation: every figure and quantitative claim,
//! printed as the same kind of series/rows the paper reports.
//!
//! ```sh
//! cargo run -p clarens-bench --release --bin repro -- all
//! cargo run -p clarens-bench --release --bin repro -- fig4
//! ```
//!
//! Experiments (ids match DESIGN.md / EXPERIMENTS.md):
//!   fig4       Figure 4 — throughput vs concurrent clients
//!   ssl        "SSL reduces performance by up to 50%"
//!   gt3        Globus-GT3 comparison (footnote 4: ~1–5 calls/s)
//!   stream     SC2003 bandwidth-challenge style file streaming
//!   discovery  local-DB vs station fan-out query latency
//!   ablation   request-path cost decomposition + GT3 knob attribution
//!   multiplex  Ablation F alone — parked keep-alive vs thread-per-connection
//!              sweep (also runs as part of `ablation`)
//!   bw         Ablation G — zero-copy bulk data: sendfile vs buffered GET
//!              throughput, and a 1024-client slow-reader swarm (10 KB/s
//!              each) priced against concurrent echo.echo on 4 workers
//!   quick      CI smoke: short workload, then assert GET /metrics serves
//!              non-zero request counts (snapshot to $METRICS_SNAPSHOT),
//!              the allocation ceiling holds, 256 parked keep-alive
//!              connections do not slow active traffic, the sendfile GET
//!              path is no slower than the buffered baseline, and a
//!              slow-reader swarm survives a short-write fault schedule
//!   chaos      Figure-4 workload under a seeded randomized fault schedule
//!              (`--seed N`, plus whatever $CLARENS_FAULTS arms): asserts
//!              zero wrong answers, reads survive a degraded (read-only)
//!              store, and client retries absorb >= 95% of transients
//!   federation Multi-node federation: aggregate echo.echo throughput at
//!              1/2/4 nodes behind discovery-routed balanced clients
//!              (gates: >= 1.7x from 1 to 2 nodes, >= 3x from 1 to 4),
//!              then a node-kill drill (`--seed N`) asserting zero wrong
//!              answers and 100% client re-resolution via discovery
//!              (`--quick`: 2-node scaling + the kill drill only)
//!   failover   Leader-failover drill (`--seed N`, `--quick`): kill the
//!              elected leader under a live login/read workload and gate
//!              on promotion within 3 lease intervals, zero acked-then-
//!              lost writes (every acked session re-authenticates on the
//!              new leader), and zero wrong answers; then a split-brain
//!              injection gating on 100% of stale-leader writes fenced
//!              (`clarens_fenced_writes_total` > 0) and demotion on heal
//!   storage    Storage-engine ablation (DESIGN.md §12): 16-writer durable
//!              append throughput per-append-fsync vs group commit (gates:
//!              fsyncs/op <= 0.25, and >= 3x throughput in full mode),
//!              shard lock-striping sweep, append-latency percentiles while
//!              the janitor compacts in the background (no-stall gate),
//!              cold restart of a churned 100k-session store — uncompacted
//!              replay vs compacted vs mmap snapshot (gate: compacted is
//!              faster) — and write amplification per backend

use std::time::{Duration, Instant};

use clarens_bench::{
    alloc_count, bench_grid, bench_grid_dom, bench_grid_tls, bench_session,
    measure_allocs_per_request, measure_throughput, measure_throughput_params,
    measure_throughput_pipelined, measure_throughput_tls,
};
use clarens_wire::{Protocol, Value};

/// Count every heap allocation so Ablation E and the `quick` gate can
/// report server-side allocations per request. Counting is off until a
/// measurement window turns it on, so the wrapper is two branches on the
/// hot path for every other experiment.
#[global_allocator]
static ALLOC: alloc_count::CountingAlloc = alloc_count::CountingAlloc;

fn main() {
    let experiment = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    // Time budget per measurement point, overridable for quick runs.
    let point_secs: f64 = std::env::var("REPRO_POINT_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let point = Duration::from_secs_f64(point_secs);

    match experiment.as_str() {
        "fig4" => fig4(point),
        "ssl" => ssl(point),
        "gt3" => gt3(),
        "stream" => stream(),
        "discovery" => discovery(),
        "ablation" => ablation(point),
        "multiplex" => ablation_f(point),
        "bw" => bw(point),
        "quick" | "--quick" => quick(),
        "chaos" => chaos(point),
        "federation" => federation(point),
        "failover" => failover(point),
        "storage" => storage(point),
        "binproto" => binproto(point),
        "fuzz" => fuzz_cmd(),
        "all" => {
            fig4(point);
            ssl(point);
            gt3();
            stream();
            discovery();
            ablation(point);
            bw(point);
        }
        other => {
            eprintln!(
                "unknown experiment {other:?}; use fig4|ssl|gt3|stream|discovery|ablation|multiplex|bw|quick|chaos|federation|failover|storage|binproto|fuzz|all"
            );
            std::process::exit(2);
        }
    }
}

/// Per-protocol allocation ceilings for the steady-state echo.echo gates
/// (the `quick` smoke and Ablation H). The XML-RPC streaming path lands at
/// ~18 allocations/request on the reference machine; clarens-binary skips
/// the XML text handling entirely (no escaping buffers, no tag strings)
/// and lands lower still. Both ceilings leave ~2x headroom for
/// allocator/platform variation while catching a reintroduced per-request
/// DOM or buffer churn (the pre-optimization XML path measures ~56).
const MAX_ALLOCS_PER_ECHO_XMLRPC: f64 = 40.0;
const MAX_ALLOCS_PER_ECHO_BINARY: f64 = 30.0;

fn header(title: &str) {
    println!("\n==============================================================");
    println!("{title}");
    println!("==============================================================");
}

/// Figure 4: `system.list_methods` throughput vs number of concurrent
/// clients (paper: 1..79 clients, ~1450 req/s average on 2005 hardware,
/// rising then flat).
fn fig4(point: Duration) {
    header("Figure 4 — requests/second vs concurrent clients (system.list_methods, XML-RPC)");
    println!("Workload per the paper: every request passes the session check and the");
    println!("method ACL check, scans the method registry in the DB (30+ methods), and");
    println!("serializes the names as an XML-RPC string array. The method-registry scan");
    println!("is deliberately uncached, as the paper stresses; the session/ACL checks use");
    println!("the epoch-invalidated auth caches (disable with auth_cache: false).\n");

    let grid = bench_grid();
    let session = bench_session(&grid);
    let addr = grid.addr();

    println!("{:>8} {:>12} {:>14}", "clients", "calls", "calls/sec");
    let mut total_calls = 0u64;
    let mut sum_rate = 0.0;
    let points = [1usize, 2, 4, 8, 12, 16, 24, 32, 48, 64, 79];
    for &clients in &points {
        let p = measure_throughput(
            &addr,
            &session,
            clients,
            point,
            "system.list_methods",
            Protocol::XmlRpc,
        );
        println!("{:>8} {:>12} {:>14.0}", p.clients, p.calls, p.calls_per_sec);
        total_calls += p.calls;
        sum_rate += p.calls_per_sec;
    }
    let db_stats = grid.core().store.stats();
    println!(
        "\naverage over sweep: {:.0} calls/sec; {} requests completed without error",
        sum_rate / points.len() as f64,
        total_calls
    );
    println!(
        "DB activity: {} lookups + {} scans served (the paper's per-request DB lookups)",
        db_stats.lookups, db_stats.scans
    );
    let sessions = grid.core().sessions.cache_stats();
    let decisions = grid.core().acl.decision_cache_stats();
    println!(
        "auth caches: sessions {}/{} hits/misses, ACL decisions {}/{} hits/misses",
        sessions.hits, sessions.misses, decisions.hits, decisions.misses
    );
    // Server-side percentiles from the telemetry plane — latency as the
    // server observed it, free of client-side queueing.
    let telemetry = &grid.core().telemetry;
    let bytes_out = telemetry.http.bytes_out.get();
    let reuses = telemetry.http.buffer_pool_reuse.get();
    println!(
        "wire volume: {:.1} MiB written ({:.0} bytes/request); buffer pool reused {} buffers ({:.1}/request)",
        bytes_out as f64 / (1024.0 * 1024.0),
        bytes_out as f64 / total_calls.max(1) as f64,
        reuses,
        reuses as f64 / total_calls.max(1) as f64
    );
    if let Some((_, stats)) = telemetry
        .methods_snapshot()
        .iter()
        .find(|(name, _)| name == "system.list_methods")
    {
        let snap = stats.latency.snapshot();
        println!(
            "server-side latency (system.list_methods): p50 {}µs  p95 {}µs  p99 {}µs  max {}µs  ({} samples)",
            snap.p50(),
            snap.p95(),
            snap.p99(),
            snap.max,
            snap.count
        );
    }
    println!("(paper, dual 2.8 GHz Xeon, 2005: average 1450 requests/sec, flat profile)");
    grid.cleanup();
}

/// The SSL claim: "Informal tests show the latter to reduce performance by
/// up to 50%."
fn ssl(point: Duration) {
    header("SSL overhead — same workload, plaintext vs encrypted channel");
    let clients = 8;

    let grid = bench_grid();
    let session = bench_session(&grid);
    let plain = measure_throughput(
        &grid.addr(),
        &session,
        clients,
        point,
        "system.list_methods",
        Protocol::XmlRpc,
    );
    grid.cleanup();

    let tls_grid = bench_grid_tls();
    let tls = measure_throughput_tls(&tls_grid, clients, point);
    tls_grid.cleanup();

    println!("{:>12} {:>14}", "transport", "calls/sec");
    println!("{:>12} {:>14.0}", "plaintext", plain.calls_per_sec);
    println!("{:>12} {:>14.0}", "TLS-like", tls.calls_per_sec);
    println!(
        "\nreduction: {:.0}%  (paper: \"up to 50%\")",
        (1.0 - tls.calls_per_sec / plain.calls_per_sec) * 100.0
    );
}

/// The Globus comparison (footnote 4): a trivial method over GT3 ran at
/// ~1–5 calls/s vs Clarens' ~1450/s.
fn gt3() {
    header("Globus GT3 comparison — trivial method (echo.echo), 100 calls each");
    const CALLS: usize = 100;

    // Clarens path: keep-alive, one session, echo.echo.
    let grid = bench_grid();
    let mut client = grid.logged_in_client(&grid.user);
    // Warm-up call (the paper ignores the first invocation).
    client.call("echo.echo", vec![Value::Int(0)]).unwrap();
    let t0 = Instant::now();
    for i in 0..CALLS {
        client
            .call("echo.echo", vec![Value::Int(i as i64)])
            .unwrap();
    }
    let clarens_rate = CALLS as f64 / t0.elapsed().as_secs_f64();
    grid.cleanup();

    // GT3-like path: connection per call, per-message GSI auth, per-call
    // container boot, multi-pass message handling.
    let (root, credential) = gt3_baseline::test_credentials(0x61_u64);
    let server = gt3_baseline::Gt3Server::start(
        "127.0.0.1:0",
        gt3_baseline::Gt3Config::default(),
        vec![root],
    )
    .unwrap();
    let mut gt3_client = gt3_baseline::Gt3Client::new(
        server.local_addr().to_string(),
        gt3_baseline::Gt3Config::default(),
        credential,
    );
    gt3_client.echo(Value::Int(0)).unwrap(); // warm-up
    let t0 = Instant::now();
    for i in 0..CALLS {
        gt3_client.echo(Value::Int(i as i64)).unwrap();
    }
    let gt3_rate = CALLS as f64 / t0.elapsed().as_secs_f64();
    server.shutdown();

    println!("{:>14} {:>14}", "stack", "calls/sec");
    println!("{:>14} {:>14.1}", "clarens", clarens_rate);
    println!("{:>14} {:>14.1}", "gt3-baseline", gt3_rate);
    println!(
        "\nratio: {:.0}x  (paper: ~1450 vs 1-5 calls/sec, i.e. ~300-1400x)",
        clarens_rate / gt3_rate
    );
}

/// SC2003 bandwidth-challenge style streaming throughput.
fn stream() {
    header("File streaming — disk-to-client throughput (SC2003 bandwidth challenge)");
    const FILE_MB: usize = 64;
    let grid = bench_grid();
    let mut data = vec![0u8; FILE_MB * 1024 * 1024];
    let mut state = 1u64;
    for chunk in data.chunks_mut(8) {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let bytes = state.to_le_bytes();
        chunk.copy_from_slice(&bytes[..chunk.len()]);
    }
    grid.write_file("/events.dat", &data);
    let session = bench_session(&grid);

    println!("{:>28} {:>10} {:>12}", "path", "streams", "MiB/s");
    // Single-stream GET (the sendfile-style path).
    let mut client = clarens::ClarensClient::new(grid.addr());
    client.set_session(session.clone());
    let t0 = Instant::now();
    let got = client.http_get_file("/events.dat").unwrap();
    let get_rate = got.len() as f64 / t0.elapsed().as_secs_f64() / (1024.0 * 1024.0);
    println!("{:>28} {:>10} {:>12.0}", "HTTP GET (streamed)", 1, get_rate);

    // Parallel GET streams.
    for streams in [2usize, 4] {
        let t0 = Instant::now();
        let mut handles = Vec::new();
        for _ in 0..streams {
            let addr = grid.addr();
            let session = session.clone();
            handles.push(std::thread::spawn(move || {
                let mut c = clarens::ClarensClient::new(addr);
                c.set_session(session);
                c.http_get_file("/events.dat").unwrap().len() as u64
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let rate = total as f64 / t0.elapsed().as_secs_f64() / (1024.0 * 1024.0);
        println!(
            "{:>28} {:>10} {:>12.0}",
            "HTTP GET (streamed)", streams, rate
        );
    }

    // RPC chunked pulls (base64 overhead + per-chunk round trips).
    let t0 = Instant::now();
    let rpc_bytes = client
        .file_download("/events.dat", 4 * 1024 * 1024)
        .unwrap();
    let rpc_rate = rpc_bytes.len() as f64 / t0.elapsed().as_secs_f64() / (1024.0 * 1024.0);
    println!(
        "{:>28} {:>10} {:>12.0}",
        "file.read RPC (4 MiB chunks)", 1, rpc_rate
    );

    println!(
        "\nGET/RPC ratio {:.1}x — the zero-copy-style GET path is why the paper \"hands\n\
         network I/O off to the web server\" for bulk data (3.2 Gb/s at SC2003).",
        get_rate / rpc_rate
    );
    let telemetry = &grid.core().telemetry;
    println!(
        "wire volume: {:.1} MiB written; buffer pool reused {} buffers",
        telemetry.http.bytes_out.get() as f64 / (1024.0 * 1024.0),
        telemetry.http.buffer_pool_reuse.get()
    );
    grid.cleanup();
}

/// Discovery: local aggregated DB vs synchronous station fan-out.
fn discovery() {
    header("Service discovery — aggregated local DB vs station fan-out (Figure 3)");
    use monalisa_sim::{
        DiscoveryAggregator, Publication, ServiceDescriptor, ServiceQuery, StationServer,
    };
    use std::sync::Arc;

    let stations: Vec<Arc<StationServer>> = (0..3)
        .map(|i| Arc::new(StationServer::spawn(format!("s{i}"), "127.0.0.1:0").unwrap()))
        .collect();
    let t = clarens::testkit::now();
    for site in 0..90 {
        for service in ["file", "proof", "runjob"] {
            stations[site % 3].publish_local(Publication::Service(ServiceDescriptor {
                url: format!("http://site{site:02}.example.edu:8080/clarens"),
                server_dn: format!("/O=grid/CN=host{site}"),
                service: service.into(),
                methods: vec![format!("{service}.run")],
                attributes: [("site".to_string(), format!("site{site:02}"))].into(),
                timestamp: t,
            }));
        }
    }
    let store = Arc::new(clarens_db::Store::in_memory());
    // TTL as a server would run it (the `discovery_ttl_s` default): the
    // sweeper evicts descriptors whose stations stop heartbeating; the
    // fresh ones published above are far inside the window.
    let aggregator = DiscoveryAggregator::new(stations.clone(), store)
        .with_ttl(90, Arc::new(clarens::testkit::now));
    assert!(monalisa_sim::station::wait_until(
        Duration::from_secs(5),
        || aggregator.local_service_count() == 270,
    ));

    let query = ServiceQuery::by_service("proof");
    const N: usize = 500;
    let t0 = Instant::now();
    for _ in 0..N {
        let hits = aggregator.query_local(&query);
        assert_eq!(hits.len(), 90);
    }
    let local = t0.elapsed();
    let t0 = Instant::now();
    for _ in 0..N {
        let hits = aggregator.query_remote(&query);
        assert_eq!(hits.len(), 90);
    }
    let remote = t0.elapsed();

    println!(
        "90 sites x 3 services (270 descriptors) across 3 station servers; {N} queries each.\n"
    );
    println!("{:>28} {:>14} {:>14}", "path", "µs/query", "queries/sec");
    println!(
        "{:>28} {:>14.0} {:>14.0}",
        "local DB (aggregated)",
        local.as_micros() as f64 / N as f64,
        N as f64 / local.as_secs_f64()
    );
    println!(
        "{:>28} {:>14.0} {:>14.0}",
        "station fan-out (TCP)",
        remote.as_micros() as f64 / N as f64,
        N as f64 / remote.as_secs_f64()
    );
    println!(
        "\nspeedup {:.1}x — \"able to respond to service searches far more rapidly by\n\
         using the local database\" (§2.4)",
        remote.as_secs_f64() / local.as_secs_f64()
    );
    aggregator.shutdown();
}

/// Measurement rounds per Ablation-A sweep; each variant's fastest round
/// is kept. An 8-client sweep on a small shared host is scheduler-noise-
/// dominated (single points swing ±20%), so the variants are interleaved
/// — a slow stretch of the machine hits every variant, not just one —
/// and peak throughput is the comparable statistic.
const ABLATION_ROUNDS: usize = 3;

/// One request-path decomposition sweep (Ablation A rows) against a
/// running grid; returns (echo, ping) rates for the auth-overhead gap.
fn ablation_rows(grid: &clarens::testkit::TestGrid, point: Duration, clients: usize) -> (f64, f64) {
    let session = bench_session(grid);
    let addr = grid.addr();
    let variants: [(&str, &str, &'static str); 4] = [
        // Full Figure-4 path: session + ACL + DB scan + 30-string array.
        (
            "list_methods (session+ACL+DB scan)",
            &session,
            "system.list_methods",
        ),
        // Same checks, trivial payload: isolates the DB scan cost.
        ("echo.echo (session+ACL, no DB scan)", &session, "echo.echo"),
        // Public method WITH a session header: the session is resolved but
        // no ACL walk runs — isolates the session check from the ACL check.
        (
            "system.ping (session check, no ACL)",
            &session,
            "system.ping",
        ),
        // Public method, no session header: no session lookup, no ACL walk.
        ("system.ping (no session, no ACL)", "", "system.ping"),
    ];
    let mut best = [0.0f64; 4];
    for _ in 0..ABLATION_ROUNDS {
        for (i, (_, sess, method)) in variants.iter().enumerate() {
            let p = measure_throughput(&addr, sess, clients, point, method, Protocol::XmlRpc);
            best[i] = best[i].max(p.calls_per_sec);
        }
    }
    for (i, (label, _, _)) in variants.iter().enumerate() {
        println!("{:>44} {:>12.0}", label, best[i]);
    }
    let (echo, ping) = (best[1], best[3]);
    println!(
        "{:>44} {:>11.1}%",
        "echo.echo gap below ping (auth overhead)",
        (1.0 - echo / ping) * 100.0
    );
    (echo, ping)
}

/// CI smoke: drive a short workload, then prove the telemetry export
/// surface works end-to-end — `GET /metrics` as the site admin must serve
/// non-zero request counts. The exposition body is written to the path in
/// `$METRICS_SNAPSHOT` (default `metrics-snapshot.txt`) for upload as a
/// build artifact.
fn quick() {
    header("Quick smoke — telemetry export over a live server");
    let grid = bench_grid();
    let mut user = grid.logged_in_client(&grid.user);
    for i in 0..25 {
        user.call("echo.echo", vec![Value::Int(i)]).unwrap();
    }
    user.call("system.list_methods", vec![]).unwrap();

    let mut admin = grid.logged_in_client(&grid.admin);
    let (status, body) = admin.get_page("/metrics").expect("GET /metrics");
    assert_eq!(status, 200, "admin GET /metrics must answer 200");
    let requests: u64 = body
        .lines()
        .find_map(|l| l.strip_prefix("clarens_requests_total "))
        .expect("metrics must include clarens_requests_total")
        .parse()
        .expect("clarens_requests_total must be a number");
    assert!(
        requests > 0,
        "request counter must be non-zero after traffic"
    );
    assert!(
        body.contains("clarens_method_calls_total{method=\"echo.echo\"} 25"),
        "per-method counts must reflect the workload"
    );

    // Allocation regression gate, per protocol: steady-state echo.echo
    // over a warm keep-alive connection, with a lower ceiling for
    // clarens-binary than for XML-RPC (the ceilings and their rationale
    // live next to `MAX_ALLOCS_PER_ECHO_XMLRPC` at the top of this file).
    assert!(
        alloc_count::allocator_installed(),
        "repro must run with the counting allocator"
    );
    let session = bench_session(&grid);
    for (name, protocol, ceiling) in [
        ("XML-RPC", Protocol::XmlRpc, MAX_ALLOCS_PER_ECHO_XMLRPC),
        (
            "clarens-binary",
            Protocol::Binary,
            MAX_ALLOCS_PER_ECHO_BINARY,
        ),
    ] {
        let alloc = measure_allocs_per_request(&grid.addr(), &session, 400, protocol);
        println!(
            "steady-state echo.echo [{name}]: {:.1} allocations/request, \
             {:.0} bytes/request (ceiling {ceiling})",
            alloc.allocs_per_call, alloc.bytes_per_call
        );
        assert!(
            alloc.allocs_per_call <= ceiling,
            "{name} allocations/request regressed: {:.1} > {ceiling}",
            alloc.allocs_per_call
        );
    }

    // Connection-scheduler gate: 256 parked keep-alive connections on a
    // 4-worker event-mode grid must cost active traffic no more than 10%
    // against an idle-free baseline grid of the same shape. Parked sockets
    // live in the poller, not on workers, so holding them should be close
    // to free. Interleaved best-of-3 rounds for the same scheduler-noise
    // reasons as Ablation A; the idlers are refreshed each round so the
    // server's 5 s idle timeout never reaps them mid-measurement.
    let base_grid = clarens_bench::bench_grid_sweep(4, true);
    let load_grid = clarens_bench::bench_grid_sweep(4, true);
    let base_session = bench_session(&base_grid);
    let load_session = bench_session(&load_grid);
    let mut idlers = clarens_bench::IdleConnections::open(&load_grid.addr(), 256);
    let gate_point = Duration::from_millis(1000);
    let (mut best_base, mut best_load) = (0.0f64, 0.0f64);
    for _ in 0..3 {
        let base = measure_throughput(
            &base_grid.addr(),
            &base_session,
            8,
            gate_point,
            "echo.echo",
            Protocol::XmlRpc,
        );
        best_base = best_base.max(base.calls_per_sec);
        idlers.refresh();
        let load = measure_throughput(
            &load_grid.addr(),
            &load_session,
            8,
            gate_point,
            "echo.echo",
            Protocol::XmlRpc,
        );
        best_load = best_load.max(load.calls_per_sec);
    }
    let parked = load_grid.core().telemetry.http.parked.get();
    println!(
        "parked-idlers gate: idle-free {best_base:.0} calls/sec, with {} idle keep-alive \
         connections {best_load:.0} calls/sec ({:+.1}%); parked gauge {parked}",
        idlers.len(),
        (best_load / best_base - 1.0) * 100.0,
    );
    assert!(
        parked >= 250,
        "the idle connections must be parked in the poller (gauge {parked})"
    );
    assert!(
        best_load >= 0.90 * best_base,
        "256 parked connections slowed active traffic beyond 10%: \
         {best_load:.0} vs {best_base:.0} calls/sec"
    );
    drop(idlers);
    base_grid.cleanup();
    load_grid.cleanup();

    // Bulk-data gate: single-stream GET with the zero-copy engine must not
    // regress against the portable buffered baseline (on Linux it should
    // win; the gate only demands "no slower", with a 10% noise allowance
    // on a small shared host). Interleaved best-of-3, same reasoning as
    // the other gates.
    let mut blob = vec![0u8; 8 * 1024 * 1024];
    let mut state = 0x6Au64;
    for chunk in blob.chunks_mut(8) {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let bytes = state.to_le_bytes();
        chunk.copy_from_slice(&bytes[..chunk.len()]);
    }
    let zc_grid = clarens_bench::bench_grid_bulk(4, true);
    let buf_grid = clarens_bench::bench_grid_bulk(4, false);
    zc_grid.write_file("/gate.dat", &blob);
    buf_grid.write_file("/gate.dat", &blob);
    let zc_session = bench_session(&zc_grid);
    let buf_session = bench_session(&buf_grid);
    let bw_point = Duration::from_millis(400);
    let (mut best_zc, mut best_buf) = (0.0f64, 0.0f64);
    for _ in 0..3 {
        let (_, zc) = clarens_bench::measure_get_throughput(
            &zc_grid.addr(),
            &zc_session,
            "/gate.dat",
            bw_point,
        );
        best_zc = best_zc.max(zc);
        let (_, buf) = clarens_bench::measure_get_throughput(
            &buf_grid.addr(),
            &buf_session,
            "/gate.dat",
            bw_point,
        );
        best_buf = best_buf.max(buf);
    }
    println!(
        "bulk-data gate: sendfile {best_zc:.0} MiB/s vs buffered {best_buf:.0} MiB/s \
         ({:.2}x)",
        best_zc / best_buf.max(1.0)
    );
    if cfg!(target_os = "linux") {
        assert!(
            zc_grid.core().telemetry.http.bytes_sendfile.get() > 0,
            "zero_copy: true must actually route GET bodies through sendfile"
        );
    }
    assert_eq!(
        buf_grid.core().telemetry.http.bytes_sendfile.get(),
        0,
        "zero_copy: false must never touch sendfile"
    );
    assert!(
        best_zc >= 0.90 * best_buf,
        "the zero-copy GET path regressed below the buffered baseline: \
         {best_zc:.0} vs {best_buf:.0} MiB/s"
    );
    buf_grid.cleanup();

    // Slow-reader swarm under the fault harness: 128 crawling GET readers
    // while a short-write failpoint fires on 5% of response writes. The
    // server must neither wedge nor serve a wrong answer — failed writes
    // cost the affected connection only, and retrying clients ride it out.
    {
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
        use std::sync::Arc;
        let injected_before = clarens_faults::injected_total();
        let _short_writes =
            clarens_faults::with(clarens_faults::sites::HTTPD_WRITE, "short:512|p=0.05");
        let swarm = clarens_bench::SlowReaderSwarm::open(
            &zc_grid.addr(),
            &format!("/file/gate.dat?session={zc_session}"),
            128,
            10 * 1024,
        );
        let stop = Arc::new(AtomicBool::new(false));
        let ok = Arc::new(AtomicU64::new(0));
        let mut drivers = Vec::new();
        for i in 0..8 {
            let addr = zc_grid.addr();
            let session = zc_session.clone();
            let stop = Arc::clone(&stop);
            let ok = Arc::clone(&ok);
            drivers.push(std::thread::spawn(move || {
                let mut client = clarens::ClarensClient::new(addr)
                    .with_retries(6)
                    .with_retry_seed(0xB1 + i as u64);
                client.set_session(session);
                let mut n = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    n += 1;
                    // A surfaced transient error is acceptable, never a
                    // wrong answer.
                    if let Ok(v) = client.call("echo.echo", vec![Value::Int(n)]) {
                        assert_eq!(v, Value::Int(n), "wrong echo under short writes");
                        ok.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        std::thread::sleep(Duration::from_millis(1200));
        stop.store(true, Ordering::Relaxed);
        for d in drivers {
            d.join().expect("swarm gate driver");
        }
        let injected = clarens_faults::injected_total() - injected_before;
        let completed = ok.load(Ordering::Relaxed);
        println!(
            "fault-swarm gate: {completed} echo calls correct beside {} slow readers \
             with {injected} short-writes injected; swarm drained {:.1} MiB",
            swarm.len(),
            swarm.drained_bytes() as f64 / (1024.0 * 1024.0)
        );
        assert!(injected > 0, "the short-write failpoint must actually fire");
        assert!(
            completed > 100,
            "active RPC traffic must keep flowing under the fault schedule \
             (completed only {completed})"
        );
    }
    // The failpoint is disarmed: the grid must still serve cleanly.
    let mut probe = zc_grid.logged_in_client(&zc_grid.user);
    probe
        .call("echo.echo", vec![Value::Int(7)])
        .expect("grid must serve cleanly after the fault schedule");
    zc_grid.cleanup();

    println!(
        "GET /metrics: {} bytes, clarens_requests_total {requests}",
        body.len()
    );
    let snapshot =
        std::env::var("METRICS_SNAPSHOT").unwrap_or_else(|_| "metrics-snapshot.txt".to_string());
    std::fs::write(&snapshot, &body).expect("write metrics snapshot");
    println!("snapshot written to {snapshot}");
    println!("quick smoke passed");
    grid.cleanup();
}

/// Chaos: the Figure-4 workload under a seeded, randomized fault
/// schedule. The correctness gate for the resilience work: a fault may
/// cost a retry or surface as a clean error, but every response a client
/// actually decodes must be the right answer.
fn chaos(point: Duration) {
    use clarens::testkit::{GridOptions, TestGrid};
    use clarens_faults::sites;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;

    let argv: Vec<String> = std::env::args().collect();
    let seed: u64 = argv
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| argv.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    header(&format!(
        "Chaos — Figure-4 workload under a randomized fault schedule (seed {seed})"
    ));
    println!("Eight resilient clients loop echo.echo and system.list_methods while a");
    println!("seeded scheduler arms and clears probabilistic failpoints on the server's");
    println!("accept/read/write paths (plus whatever $CLARENS_FAULTS adds). Mid-run, one");
    println!("injected WAL write failure degrades the store to read-only. Gates: zero");
    println!("wrong answers, reads keep flowing while degraded, and client retries");
    println!("absorb >= 95% of the injected transient errors.\n");

    let window = (point * 3).clamp(Duration::from_secs(2), Duration::from_secs(60));
    // A persistent store, so the WAL degraded-mode drill is end-to-end.
    let db_dir = std::env::temp_dir().join(format!("clarens-chaos-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&db_dir);
    std::fs::create_dir_all(&db_dir).expect("chaos db dir");
    let grid = TestGrid::start_with(GridOptions {
        workers: 16,
        db_path: Some(db_dir.join("chaos-db")),
        ..Default::default()
    });
    let session = bench_session(&grid);
    let injected_before = clarens_faults::injected_total();

    const CLIENTS: usize = 8;
    let stop = Arc::new(AtomicBool::new(false));
    let ok = Arc::new(AtomicU64::new(0));
    let wrong = Arc::new(AtomicU64::new(0));
    let surfaced = Arc::new(AtomicU64::new(0));
    let retries = Arc::new(AtomicU64::new(0));
    let mut clients = Vec::new();
    for i in 0..CLIENTS {
        let addr = grid.addr();
        let session = session.clone();
        let stop = Arc::clone(&stop);
        let ok = Arc::clone(&ok);
        let wrong = Arc::clone(&wrong);
        let surfaced = Arc::clone(&surfaced);
        let retries = Arc::clone(&retries);
        clients.push(std::thread::spawn(move || {
            let mut client = clarens::ClarensClient::new(addr)
                .with_retries(4)
                .with_retry_seed(seed.wrapping_mul(0x9e37_79b9).wrapping_add(i as u64))
                .with_call_deadline(Duration::from_secs(5));
            client.set_session(session);
            let mut n = 0i64;
            while !stop.load(Ordering::Relaxed) {
                n += 1;
                // Three trivial echoes per DB-backed registry scan, like
                // the Figure-4 mix.
                let verdict = if n % 4 == 0 {
                    match client.call("system.list_methods", vec![]) {
                        Ok(Value::Array(methods))
                            if methods.len() >= 10
                                && methods.contains(&Value::Str("echo.echo".into())) =>
                        {
                            Ok(())
                        }
                        Ok(other) => Err(Some(format!("bad method list: {other:?}"))),
                        Err(_) => Err(None),
                    }
                } else {
                    match client.call("echo.echo", vec![Value::Int(n)]) {
                        Ok(v) if v == Value::Int(n) => Ok(()),
                        Ok(other) => Err(Some(format!("echoed {other:?}, sent {n}"))),
                        Err(_) => Err(None),
                    }
                };
                match verdict {
                    Ok(()) => {
                        ok.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(Some(details)) => {
                        eprintln!("WRONG ANSWER (client {i}): {details}");
                        wrong.fetch_add(1, Ordering::Relaxed);
                    }
                    // A clean fault: the client saw an error, never bad data.
                    Err(None) => {
                        surfaced.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            retries.fetch_add(client.retries_performed(), Ordering::Relaxed);
        }));
    }

    // The fault scheduler: arm one network-edge site at a time with a
    // 5-20% probabilistic error (sometimes plus a small delay), dwell,
    // clear, pause — all derived from the seed so a run replays exactly.
    let sched_stop = Arc::clone(&stop);
    let scheduler = std::thread::spawn(move || {
        let mut rng = StdRng::seed_from_u64(seed);
        let edges = [sites::HTTPD_ACCEPT, sites::HTTPD_READ, sites::HTTPD_WRITE];
        while !sched_stop.load(Ordering::Relaxed) {
            let site = edges[(rng.next_u64() % edges.len() as u64) as usize];
            let p = 0.05 + (rng.next_u64() % 16) as f64 / 100.0;
            let spec = if rng.next_u64() % 4 == 0 {
                format!("delay:2ms|err|p={p:.2}")
            } else {
                format!("err|p={p:.2}")
            };
            clarens_faults::configure(site, &spec).expect("chaos spec");
            std::thread::sleep(Duration::from_millis(30 + rng.next_u64() % 60));
            clarens_faults::clear(site);
            std::thread::sleep(Duration::from_millis(10 + rng.next_u64() % 40));
        }
    });

    // Mid-run degraded-mode drill: arm one WAL append failure, then drive
    // durable writes (each login persists its session through the WAL)
    // until one trips it and poisons the store read-only. The login layer
    // rides out persistence failure, so only the store flips state.
    std::thread::sleep(window / 2);
    {
        let _guard = clarens_faults::with(sites::DB_WAL_APPEND, "err|times=1");
        let degraded_by = Instant::now() + Duration::from_secs(5);
        while !grid.core().store.is_degraded() && Instant::now() < degraded_by {
            let mut fresh = grid.client(&grid.admin);
            let _ = fresh.login();
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    assert!(
        grid.core().store.is_degraded(),
        "the injected WAL write failure must degrade the store"
    );
    // Degraded means read-only, not down: the full RPC read path still
    // answers (under retries, since the edge faults are still armed)...
    let mut probe = clarens::ClarensClient::new(grid.addr()).with_retries(6);
    probe.set_session(session.clone());
    probe
        .call("system.list_methods", vec![])
        .expect("degraded store must still serve reads");
    // ...while writes are refused fast with the documented error.
    let refusal = grid
        .core()
        .store
        .put("chaos", "probe", b"write".to_vec())
        .expect_err("degraded store must refuse writes");
    assert!(
        clarens_db::is_degraded_error(&refusal),
        "refusal must carry the documented degraded error: {refusal}"
    );

    std::thread::sleep(window / 2);
    stop.store(true, Ordering::Relaxed);
    scheduler.join().expect("fault scheduler");
    for client in clients {
        client.join().expect("chaos client");
    }

    let (ok, wrong, surfaced) = (
        ok.load(Ordering::Relaxed),
        wrong.load(Ordering::Relaxed),
        surfaced.load(Ordering::Relaxed),
    );
    let recovered = retries.load(Ordering::Relaxed);
    let injected = clarens_faults::injected_total() - injected_before;
    let transients = recovered + surfaced;
    let recovery = recovered as f64 / transients.max(1) as f64;
    println!("{:>36} {:>12}", "metric", "value");
    println!("{:>36} {:>12}", "correct responses", ok);
    println!("{:>36} {:>12}", "wrong answers", wrong);
    println!("{:>36} {:>12}", "faults injected", injected);
    println!("{:>36} {:>12}", "transients absorbed by retry", recovered);
    println!("{:>36} {:>12}", "errors surfaced to callers", surfaced);
    println!(
        "{:>36} {:>11.1}%  (gate: >= 95%)",
        "retry recovery",
        recovery * 100.0
    );
    println!(
        "{:>36} {:>12}",
        "server deadline faults",
        grid.core().telemetry.resilience.deadline_exceeded.get()
    );
    println!(
        "{:>36} {:>12}",
        "store degraded (read-only)",
        grid.core().store.is_degraded() as u64
    );

    assert!(ok > 0, "the workload must complete calls under chaos");
    assert_eq!(wrong, 0, "chaos must never produce a wrong answer");
    assert!(injected > 0, "the schedule must actually inject faults");
    if transients > 0 {
        assert!(
            recovery >= 0.95,
            "client retries must absorb >= 95% of transient faults \
             (recovered {recovered}, surfaced {surfaced})"
        );
    }
    println!("\nchaos run passed (seed {seed}): {ok} correct responses, 0 wrong");
    grid.cleanup();
    let _ = std::fs::remove_dir_all(&db_dir);
}

/// Ablation: where does the request time go, and which GT3 overhead knob
/// costs what.
fn ablation(point: Duration) {
    header("Ablation A — Clarens request-path decomposition (8 clients)");
    let clients = 8;

    println!("with authorization caches (default configuration):");
    println!("{:>44} {:>12}", "variant", "calls/sec");
    let grid = bench_grid();
    let (echo_cached, ping_cached) = ablation_rows(&grid, point, clients);
    let core = grid.core();
    let sessions = core.sessions.cache_stats();
    let decisions = core.acl.decision_cache_stats();
    println!(
        "cache counters: sessions {}/{} hits/misses, ACL decisions {}/{} hits/misses",
        sessions.hits, sessions.misses, decisions.hits, decisions.misses
    );

    println!("\nwithout caches (auth_cache: false — the paper's \"no caching\" server):");
    println!("{:>44} {:>12}", "variant", "calls/sec");
    let uncached_grid = clarens_bench::bench_grid_uncached();
    let (echo_uncached, _) = ablation_rows(&uncached_grid, point, clients);
    uncached_grid.cleanup();
    println!(
        "\ncaching speedup on the session+ACL path: {:.2}x (echo.echo {:.0} -> {:.0} calls/sec)",
        echo_cached / echo_uncached,
        echo_uncached,
        echo_cached
    );
    println!(
        "target: cached echo.echo within 5% of ping — measured gap {:.1}%",
        (1.0 - echo_cached / ping_cached) * 100.0
    );

    // Telemetry overhead: the span-timed request path vs the counters-only
    // path, interleaved best-of rounds like the other ablations. Budget:
    // timing must cost echo.echo less than 5%.
    println!("\nAblation D — telemetry overhead (echo.echo, 8 clients)");
    println!("{:>44} {:>12}", "configuration", "calls/sec");
    let off_grid = clarens_bench::bench_grid_no_telemetry();
    let on_session = bench_session(&grid);
    let off_session = bench_session(&off_grid);
    let (mut best_on, mut best_off) = (0.0f64, 0.0f64);
    for _ in 0..ABLATION_ROUNDS {
        let on = measure_throughput(
            &grid.addr(),
            &on_session,
            clients,
            point,
            "echo.echo",
            Protocol::XmlRpc,
        );
        best_on = best_on.max(on.calls_per_sec);
        let off = measure_throughput(
            &off_grid.addr(),
            &off_session,
            clients,
            point,
            "echo.echo",
            Protocol::XmlRpc,
        );
        best_off = best_off.max(off.calls_per_sec);
    }
    off_grid.cleanup();
    println!(
        "{:>44} {:>12.0}",
        "telemetry on (spans + histograms)", best_on
    );
    println!("{:>44} {:>12.0}", "telemetry off (counters only)", best_off);
    println!(
        "{:>44} {:>11.1}%  (budget: < 5%)",
        "timing overhead",
        (1.0 - best_on / best_off) * 100.0
    );

    let session = bench_session(&grid);
    let addr = grid.addr();
    println!("\nAblation B — protocol comparison (echo.echo, 8 clients)");
    println!("{:>44} {:>12}", "protocol", "calls/sec");
    for (name, protocol) in [
        ("XML-RPC", Protocol::XmlRpc),
        ("SOAP", Protocol::Soap),
        ("JSON-RPC", Protocol::JsonRpc),
        ("clarens-binary", Protocol::Binary),
    ] {
        let p = measure_throughput(&addr, &session, clients, point, "echo.echo", protocol);
        println!("{:>44} {:>12.0}", name, p.calls_per_sec);
    }
    grid.cleanup();

    println!("\nAblation C — GT3 baseline overhead attribution (echo.echo, 30 calls each)");
    println!("{:>44} {:>12}", "configuration", "calls/sec");
    let variants: [(&str, gt3_baseline::Gt3Config); 5] = [
        (
            "all overheads (faithful GT3 model)",
            gt3_baseline::Gt3Config::default(),
        ),
        (
            "- per-call container boot",
            gt3_baseline::Gt3Config {
                per_call_container_boot: false,
                ..Default::default()
            },
        ),
        (
            "- per-message GSI auth",
            gt3_baseline::Gt3Config {
                per_call_auth: false,
                ..Default::default()
            },
        ),
        (
            "- connection per call (keep-alive)",
            gt3_baseline::Gt3Config {
                connection_per_call: false,
                ..Default::default()
            },
        ),
        (
            "none (all knobs off)",
            gt3_baseline::Gt3Config {
                per_call_auth: false,
                per_call_container_boot: false,
                handler_passes: 1,
                connection_per_call: false,
                deployed_services: 1,
            },
        ),
    ];
    for (name, config) in variants {
        let (root, credential) = gt3_baseline::test_credentials(77);
        let server =
            gt3_baseline::Gt3Server::start("127.0.0.1:0", config.clone(), vec![root]).unwrap();
        let mut client =
            gt3_baseline::Gt3Client::new(server.local_addr().to_string(), config, credential);
        client.echo(Value::Int(0)).unwrap();
        const CALLS: usize = 30;
        let t0 = Instant::now();
        for i in 0..CALLS {
            client.echo(Value::Int(i as i64)).unwrap();
        }
        println!(
            "{:>44} {:>12.1}",
            name,
            CALLS as f64 / t0.elapsed().as_secs_f64()
        );
        server.shutdown();
    }

    ablation_e(point, clients);
    ablation_f(point);
}

/// Ablation E — before/after for the allocation-lean serialization work:
/// streaming encoders + streaming call decoder + per-worker buffer pool vs
/// the DOM reference codecs with recycling disabled (the pre-optimization
/// data path). Two statistics: server-side allocations per request
/// (counting allocator, single warm keep-alive connection) and throughput
/// (8 clients, interleaved best-of rounds).
fn ablation_e(point: Duration, clients: usize) {
    println!("\nAblation E — allocation-lean serialization path (echo.echo)");
    if !alloc_count::allocator_installed() {
        println!("(counting allocator not installed; skipping)");
        return;
    }
    let streaming_grid = bench_grid();
    let dom_grid = bench_grid_dom();
    let streaming_session = bench_session(&streaming_grid);
    let dom_session = bench_session(&dom_grid);
    let streaming_alloc = measure_allocs_per_request(
        &streaming_grid.addr(),
        &streaming_session,
        400,
        Protocol::XmlRpc,
    );
    let dom_alloc =
        measure_allocs_per_request(&dom_grid.addr(), &dom_session, 400, Protocol::XmlRpc);
    let (mut best_streaming, mut best_dom) = (0.0f64, 0.0f64);
    for _ in 0..ABLATION_ROUNDS {
        let s = measure_throughput(
            &streaming_grid.addr(),
            &streaming_session,
            clients,
            point,
            "echo.echo",
            Protocol::XmlRpc,
        );
        best_streaming = best_streaming.max(s.calls_per_sec);
        let d = measure_throughput(
            &dom_grid.addr(),
            &dom_session,
            clients,
            point,
            "echo.echo",
            Protocol::XmlRpc,
        );
        best_dom = best_dom.max(d.calls_per_sec);
    }
    let reuses = streaming_grid.core().telemetry.http.buffer_pool_reuse.get();
    streaming_grid.cleanup();
    dom_grid.cleanup();
    println!(
        "{:>44} {:>14} {:>12}",
        "configuration", "allocs/request", "calls/sec"
    );
    println!(
        "{:>44} {:>14.1} {:>12.0}",
        "streaming + buffer pool (default)", streaming_alloc.allocs_per_call, best_streaming
    );
    println!(
        "{:>44} {:>14.1} {:>12.0}",
        "DOM codecs, no recycling (before)", dom_alloc.allocs_per_call, best_dom
    );
    println!(
        "{:>44} {:>13.0}%  (target: >= 50%)",
        "allocation reduction",
        (1.0 - streaming_alloc.allocs_per_call / dom_alloc.allocs_per_call) * 100.0
    );
    println!(
        "{:>44} {:>+13.1}%  ({} buffers recycled)",
        "throughput delta",
        (best_streaming / best_dom - 1.0) * 100.0,
        reuses
    );
}

/// Ablation G — the zero-copy bulk-data path: `sendfile(2)`-backed GET
/// downloads against the portable buffered copy loop, then the price of a
/// 1024-client slow-reader swarm on concurrent RPC traffic. The paper
/// "hands network I/O off to the web server" for bulk data (§2.3); this is
/// the in-process equivalent, with the kernel doing the copy.
fn bw(point: Duration) {
    header("Ablation G — zero-copy bulk data (GET /file: sendfile vs buffered copy)");
    println!("Single-stream GET of a page-cache-hot file, best of 3 windows per engine.");
    println!("The buffered path stages 64 KiB chunks through userspace; the zero-copy");
    println!("path moves file pages straight to the socket with sendfile(2).\n");

    const FILE_MB: usize = 32;
    let window = point.clamp(Duration::from_millis(500), Duration::from_secs(5));
    let mut data = vec![0u8; FILE_MB * 1024 * 1024];
    let mut state = 0x47u64;
    for chunk in data.chunks_mut(8) {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let bytes = state.to_le_bytes();
        chunk.copy_from_slice(&bytes[..chunk.len()]);
    }

    println!(
        "{:>36} {:>10} {:>12} {:>16}",
        "engine", "MiB moved", "MiB/s", "sendfile share"
    );
    let mut rates = [0.0f64; 2]; // indexed by zero_copy as usize
    for zero_copy in [false, true] {
        let grid = clarens_bench::bench_grid_bulk(4, zero_copy);
        grid.write_file("/events.dat", &data);
        let session = bench_session(&grid);
        // Warm-up: populate the page cache and the session/ACL caches.
        let _ = clarens_bench::measure_get_throughput(
            &grid.addr(),
            &session,
            "/events.dat",
            Duration::from_millis(100),
        );
        let (mut bytes, mut best) = (0u64, 0.0f64);
        for _ in 0..3 {
            let (b, rate) = clarens_bench::measure_get_throughput(
                &grid.addr(),
                &session,
                "/events.dat",
                window,
            );
            bytes += b;
            best = best.max(rate);
        }
        let http = &grid.core().telemetry.http;
        let share = http.bytes_sendfile.get() as f64 / http.bytes_out.get().max(1) as f64;
        println!(
            "{:>36} {:>10.0} {:>12.0} {:>15.1}%",
            if zero_copy {
                "zero_copy: true (sendfile)"
            } else {
                "zero_copy: false (buffered)"
            },
            bytes as f64 / (1024.0 * 1024.0),
            best,
            share * 100.0
        );
        rates[zero_copy as usize] = best;
        grid.cleanup();
    }
    println!(
        "\nzero-copy speedup: {:.2}x single-stream (target: >= 1.3x on Linux)",
        rates[1] / rates[0].max(1.0)
    );

    // The slow-reader swarm: 1024 consumers each crawling a response at
    // ~10 KB/s against a 4-worker grid. Every half-written response parks
    // in the poller; the workers must stay free to serve RPC traffic at
    // (nearly) full speed.
    println!("\nslow-reader swarm: 1024 GET clients draining at ~10 KB/s, 4 workers");
    const SWARM: usize = 1024;
    let swarm_file = &data[..8 * 1024 * 1024];
    let base_grid = clarens_bench::bench_grid_bulk(4, true);
    let load_grid = clarens_bench::bench_grid_bulk(4, true);
    load_grid.write_file("/swarm.dat", swarm_file);
    let base_session = bench_session(&base_grid);
    let load_session = bench_session(&load_grid);
    let swarm = clarens_bench::SlowReaderSwarm::open(
        &load_grid.addr(),
        &format!("/file/swarm.dat?session={load_session}"),
        SWARM,
        10 * 1024,
    );
    let gate_point = window.min(Duration::from_secs(2));
    let (mut best_base, mut best_load) = (0.0f64, 0.0f64);
    let mut parked_mid = 0u64;
    for _ in 0..3 {
        let base = measure_throughput(
            &base_grid.addr(),
            &base_session,
            8,
            gate_point,
            "echo.echo",
            Protocol::XmlRpc,
        );
        best_base = best_base.max(base.calls_per_sec);
        parked_mid = parked_mid.max(load_grid.core().telemetry.http.parked_writers.get());
        let load = measure_throughput(
            &load_grid.addr(),
            &load_session,
            8,
            gate_point,
            "echo.echo",
            Protocol::XmlRpc,
        );
        best_load = best_load.max(load.calls_per_sec);
    }
    let http = &load_grid.core().telemetry.http;
    println!(
        "idle-free {best_base:.0} calls/sec; with the swarm {best_load:.0} calls/sec \
         ({:+.1}%, gate: cost < 10%)",
        (best_load / best_base - 1.0) * 100.0
    );
    // bytes_sendfile is credited when a response *completes*; the swarm's
    // 8 MiB responses are deliberately still in flight, so only finished
    // (or stalled-and-closed) downloads show up here.
    println!(
        "swarm drained {:.1} MiB; parked_writers peak {parked_mid}, write_stalls {}, \
         completed-response sendfile bytes {:.1} MiB",
        swarm.drained_bytes() as f64 / (1024.0 * 1024.0),
        http.write_stalls.get(),
        http.bytes_sendfile.get() as f64 / (1024.0 * 1024.0),
    );
    assert!(
        parked_mid > 0,
        "the swarm's stalled responses must park as writers, not hold workers"
    );
    assert!(
        best_load >= 0.90 * best_base,
        "1024 slow readers slowed active RPC beyond 10%: \
         {best_load:.0} vs {best_base:.0} calls/sec"
    );
    drop(swarm);
    base_grid.cleanup();
    load_grid.cleanup();
    println!("\nAblation G passed");
}

/// Ablation F — connection multiplexing: the readiness scheduler that parks
/// idle keep-alive connections off the worker pool (`park_idle`, the
/// default) versus the classic thread-per-connection path, on a
/// deliberately small 4-worker pool. The paper's Apache deployment owns a
/// process per connection; this is the in-process equivalent of that
/// ceiling and the scheduler that removes it.
fn ablation_f(point: Duration) {
    header("Ablation F — connection multiplexing (system.ping, 4 workers, 2 ms think time)");
    println!("Each client loops one keep-alive connection: ping, think ~2 ms, ping again —");
    println!("idle most of the time, like a real analysis client between calls. The");
    println!("thread-per-connection path parks a *worker* in read() through every think,");
    println!("so 4 workers serve exactly 4 connections and the rest starve into their 2 s");
    println!("client timeout ('stalled'). The event path parks the *connection* in the");
    println!("readiness poller and re-dispatches it to the queue when bytes arrive.\n");

    const WORKERS: usize = 4;
    let think = Duration::from_millis(2);
    // A sweep point needs enough steady state to dominate its connect ramp.
    let window = point.max(Duration::from_secs(2));
    let sweep = [64usize, 256, 1024];

    let mut rate_256 = [0.0f64; 2]; // indexed by park_idle as usize
    for park in [true, false] {
        let mode = if park {
            "parked (park_idle: true, default)"
        } else {
            "thread-per-connection (park_idle: false)"
        };
        println!("{mode}:");
        println!(
            "{:>8} {:>12} {:>12} {:>8} {:>8} {:>12}",
            "conns", "calls", "calls/sec", "served", "stalled", "parked(mid)"
        );
        let grid = clarens_bench::bench_grid_sweep(WORKERS, park);
        let addr = grid.addr();
        for &conns in &sweep {
            let http = &grid.core().telemetry.http;
            let p = clarens_bench::measure_keepalive_sweep(&addr, conns, window, think, || {
                http.parked.get()
            });
            if conns == 256 {
                rate_256[park as usize] = p.calls_per_sec;
            }
            println!(
                "{:>8} {:>12} {:>12.0} {:>8} {:>8} {:>12}",
                p.connections, p.calls, p.calls_per_sec, p.served, p.stalled, p.mid_sample
            );
        }
        // The counters as an operator would read them: off the exposition
        // surface, not the in-process handles.
        let mut admin = grid.logged_in_client(&grid.admin);
        let (status, body) = admin.get_page("/metrics").expect("GET /metrics");
        assert_eq!(status, 200, "admin GET /metrics must answer 200");
        for key in [
            "clarens_http_connections_total",
            "clarens_http_poll_wakeups_total",
            "clarens_http_idle_timeouts_total",
            "clarens_http_sheds_total",
        ] {
            if let Some(line) = body.lines().find(|l| l.starts_with(key)) {
                println!("    /metrics: {line}");
            }
        }
        grid.cleanup();
        println!();
    }
    println!(
        "parked/blocking throughput at 256 connections: {:.1}x  (target: >= 5x)",
        rate_256[1] / rate_256[0].max(1.0)
    );

    // Backpressure rider: cap the budget below the offered load and the
    // overflow must shed with `503` + `Connection: close` instead of
    // queueing without bound — visible as stalled clients here and a
    // non-zero shed counter.
    println!("\nbackpressure: max_connections = 64, 96 connections offered");
    let grid = clarens::testkit::TestGrid::start_with(clarens::testkit::GridOptions {
        workers: WORKERS,
        max_connections: 64,
        ..Default::default()
    });
    let http = &grid.core().telemetry.http;
    let p = clarens_bench::measure_keepalive_sweep(&grid.addr(), 96, window, think, || {
        http.parked.get()
    });
    let sheds = http.sheds.get();
    println!(
        "served {} connections at {:.0} calls/sec under the cap; shed {} with 503 ({} clients stalled)",
        p.served, p.calls_per_sec, sheds, p.stalled
    );
    assert!(sheds > 0, "the over-budget connections must be shed");
    grid.cleanup();
}

/// Federation: aggregate throughput of discovery-routed balanced clients
/// at 1, 2 and 4 nodes, then a mid-run node-kill drill.
///
/// The scaling phase is deliberately latency-bound: a process-wide 10 ms
/// delay on the server read path makes each node's capacity
/// `workers / delay` rather than a share of this machine's CPU, so adding
/// nodes adds capacity exactly as adding hosts would in the paper's grid
/// deployment, and single-machine CI can still observe the scaling.
/// A `file.ls`-style directory listing: the struct-heavy payload Ablation
/// H echoes through `echo.echo` so both the request and the response carry
/// it. 32 entries with the fields the paper's file service returns.
fn file_ls_payload() -> Vec<Value> {
    let entries: Vec<Value> = (0..32)
        .map(|i| {
            Value::structure([
                ("name", Value::from(format!("pythia_run{i:03}.root"))),
                ("size", Value::Int((((i as i64) + 1) * 137) << 20)),
                ("mtime", Value::Int(1_118_845_735 + i as i64 * 3600)),
                ("is_dir", Value::Bool(i % 8 == 0)),
                ("owner", Value::from("/O=Grid/OU=cms/CN=analysis user")),
                ("perms", Value::Int(0o644)),
                ("md5", Value::from("d41d8cd98f00b204e9800998ecf8427e")),
            ])
        })
        .collect();
    vec![Value::array(entries)]
}

/// Ablation H — the clarens-binary wire protocol vs XML-RPC (DESIGN.md
/// §13, EXPERIMENTS.md). Two workloads over the same grid and session:
/// scalar `echo.echo` (framing/dispatch bound) and a struct-heavy
/// `file.ls`-style listing echoed back (serialization bound), then
/// per-protocol allocation accounting against the shared ceilings.
/// Interleaved best-of-3 rounds, same scheduler-noise reasoning as
/// Ablation A.
fn binproto(point: Duration) {
    // CI gates: the whole point of the binary protocol is codec CPU, so
    // the win must be large enough to survive measurement noise.
    const MIN_SPEEDUP_SCALAR: f64 = 1.4;
    const MIN_SPEEDUP_STRUCT: f64 = 2.0;

    header("Ablation H — clarens-binary vs XML-RPC");
    println!("Same Value algebra, different wire image: length-prefixed CBOR frames with");
    println!("a zero-copy streaming decoder instead of angle-bracket text. No tag");
    println!("scanning, no entity escaping, and the struct-heavy payload shrinks by an");
    println!("order of magnitude on the wire. Both protocols run the same HTTP path,");
    println!("session checks, and buffer-pool streaming encoders (DESIGN.md §13).\n");

    let grid = bench_grid();
    let session = bench_session(&grid);
    let addr = grid.addr();
    let clients = 8;
    // Pipeline depth for the scalar workload: deep enough that the
    // response-coalescing path amortizes syscalls and wakeups over the
    // batch, leaving codec cost as the differentiator.
    let depth = 128;
    let round = point.clamp(Duration::from_millis(400), Duration::from_secs(5));

    let mut speedups: Vec<(&str, f64, f64, f64, f64)> = Vec::new();
    // Workload 1 — scalar echo.echo over a pipelined persistent
    // connection. The per-round-trip syscall/scheduler cost is identical
    // across protocols and amortizes over the batch; what remains per
    // request is parse + codec + dispatch, which is where the binary
    // protocol earns its keep.
    {
        let (mut best_xml, mut best_bin) = (0.0f64, 0.0f64);
        for _ in 0..3 {
            let xml = measure_throughput_pipelined(
                &addr,
                &session,
                depth,
                round,
                "echo.echo",
                vec![Value::Int(7)],
                Protocol::XmlRpc,
            );
            best_xml = best_xml.max(xml.calls_per_sec);
            let bin = measure_throughput_pipelined(
                &addr,
                &session,
                depth,
                round,
                "echo.echo",
                vec![Value::Int(7)],
                Protocol::Binary,
            );
            best_bin = best_bin.max(bin.calls_per_sec);
        }
        speedups.push((
            "echo.echo(int), pipelined",
            best_xml,
            best_bin,
            best_bin / best_xml,
            MIN_SPEEDUP_SCALAR,
        ));
    }
    // Workload 2 — the struct-heavy file.ls-style listing over 8 plain
    // keep-alive connections (no pipelining): serialization is such a
    // large share of each call that the binary win shows through even
    // with a full round trip per request.
    {
        let (mut best_xml, mut best_bin) = (0.0f64, 0.0f64);
        for _ in 0..3 {
            let xml = measure_throughput_params(
                &addr,
                &session,
                clients,
                round,
                "echo.echo",
                file_ls_payload(),
                Protocol::XmlRpc,
            );
            best_xml = best_xml.max(xml.calls_per_sec);
            let bin = measure_throughput_params(
                &addr,
                &session,
                clients,
                round,
                "echo.echo",
                file_ls_payload(),
                Protocol::Binary,
            );
            best_bin = best_bin.max(bin.calls_per_sec);
        }
        speedups.push((
            "echo.echo(file.ls listing)",
            best_xml,
            best_bin,
            best_bin / best_xml,
            MIN_SPEEDUP_STRUCT,
        ));
    }

    println!(
        "{:>28} {:>12} {:>12} {:>9} {:>8}",
        "workload", "xml-rpc/s", "binary/s", "speedup", "gate"
    );
    for (workload, xml, bin, speedup, floor) in &speedups {
        println!(
            "{workload:>28} {xml:>12.0} {bin:>12.0} {speedup:>8.2}x {:>7}",
            format!(">={floor}x")
        );
    }

    // Wire sizes, for the table's "why": the same call under each codec.
    let call = clarens_wire::RpcCall::new("echo.echo", file_ls_payload());
    println!(
        "\nwire bytes for the listing call: xml-rpc {}, binary {}",
        clarens_wire::encode_call(Protocol::XmlRpc, &call).len(),
        clarens_wire::encode_call(Protocol::Binary, &call).len(),
    );

    // Per-protocol allocation accounting (same ceilings the quick gate
    // enforces; see MAX_ALLOCS_PER_ECHO_XMLRPC at the top of this file).
    assert!(
        alloc_count::allocator_installed(),
        "repro must run with the counting allocator"
    );
    println!(
        "\n{:>28} {:>14} {:>14} {:>9}",
        "protocol", "allocs/req", "bytes/req", "ceiling"
    );
    for (name, protocol, ceiling) in [
        ("XML-RPC", Protocol::XmlRpc, MAX_ALLOCS_PER_ECHO_XMLRPC),
        (
            "clarens-binary",
            Protocol::Binary,
            MAX_ALLOCS_PER_ECHO_BINARY,
        ),
    ] {
        let alloc = measure_allocs_per_request(&addr, &session, 400, protocol);
        println!(
            "{name:>28} {:>14.1} {:>14.0} {ceiling:>9}",
            alloc.allocs_per_call, alloc.bytes_per_call
        );
        assert!(
            alloc.allocs_per_call <= ceiling,
            "{name} allocations/request regressed: {:.1} > {ceiling}",
            alloc.allocs_per_call
        );
    }
    grid.cleanup();

    for (workload, xml, bin, speedup, floor) in &speedups {
        assert!(
            speedup >= floor,
            "{workload}: clarens-binary must be >= {floor}x XML-RPC \
             (got {speedup:.2}x: {bin:.0} vs {xml:.0} calls/sec)"
        );
    }
    println!("\nbinproto gates met: scalar >= {MIN_SPEEDUP_SCALAR}x, struct-heavy >= {MIN_SPEEDUP_STRUCT}x");
}

/// `repro fuzz [--secs N] [--seed S] [--target NAME]` — the in-tree
/// deterministic mutation fuzzer over the streaming decoders (see
/// `clarens_bench::fuzzer`). CI's binproto-smoke job runs this for two
/// minutes; the cargo-fuzz targets under `fuzz/` drive the same entry
/// points coverage-guided where nightly is available.
fn fuzz_cmd() {
    use clarens_bench::fuzzer::{self, FuzzTarget};

    let argv: Vec<String> = std::env::args().collect();
    let flag = |name: &str| {
        argv.iter()
            .position(|a| a == name)
            .and_then(|i| argv.get(i + 1))
            .cloned()
    };
    let secs: f64 = flag("--secs").and_then(|v| v.parse().ok()).unwrap_or(30.0);
    let seed: u64 = flag("--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xC1A12E45);
    let targets: Vec<FuzzTarget> = match flag("--target") {
        Some(name) => match FuzzTarget::parse(&name) {
            Some(target) => vec![target],
            None => {
                eprintln!(
                    "unknown fuzz target {name:?}; use {}",
                    FuzzTarget::ALL.map(|t| t.name()).join("|")
                );
                std::process::exit(2);
            }
        },
        None => FuzzTarget::ALL.to_vec(),
    };

    header(&format!(
        "Fuzz — seeded mutation over the streaming decoders ({secs}s total, seed {seed})"
    ));
    let budget = Duration::from_secs_f64(secs / targets.len() as f64);
    println!(
        "{:>20} {:>12} {:>8} {:>10}",
        "target", "iterations", "corpus", "elapsed"
    );
    let mut total = 0u64;
    for target in targets {
        let report = fuzzer::run(target, seed, budget);
        println!(
            "{:>20} {:>12} {:>8} {:>9.1}s",
            report.target.name(),
            report.iterations,
            report.corpus,
            report.elapsed.as_secs_f64()
        );
        total += report.iterations;
    }
    println!("\nfuzz pass clean: {total} mutated inputs, no property violations");
}

fn federation(point: Duration) {
    use clarens_faults::sites;
    use clarens_federation::{BalancedClient, FederationCluster};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;

    let argv: Vec<String> = std::env::args().collect();
    let quick = argv.iter().any(|a| a == "--quick");
    let seed: u64 = argv
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| argv.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    header(&format!(
        "Federation — aggregate throughput vs node count, plus a node-kill drill (seed {seed})"
    ));
    println!("Every client resolves echo.echo through the station network, steers by the");
    println!("published p95 latency attributes (power-of-two-choices), and re-resolves");
    println!("with endpoint blacklisting on transport failure. Node 0 leads; followers");
    println!("replicate its WAL, so the session minted on the leader authenticates");
    println!("everywhere. A 10 ms read-path delay makes each node latency-bound.\n");

    const CLIENTS: usize = 32;
    let window = (point * 2).clamp(Duration::from_secs(2), Duration::from_secs(30));

    // One timed scaling measurement: `clients` balanced clients hammer an
    // n-node cluster for `window`; returns (calls/sec, wrong answers).
    let measure = |n: usize, clients: usize, window: Duration| -> (f64, u64) {
        let cluster = FederationCluster::start(n);
        let session = cluster.user_session();
        let stop = Arc::new(AtomicBool::new(false));
        let ok = Arc::new(AtomicU64::new(0));
        let wrong = Arc::new(AtomicU64::new(0));
        let _delay = clarens_faults::with(sites::HTTPD_READ, "delay:10ms");
        let mut threads = Vec::new();
        for i in 0..clients {
            let mut client = cluster
                .balanced_client(&session, seed ^ (i as u64).wrapping_mul(0x9e37_79b9))
                .with_call_deadline(Duration::from_secs(5))
                .with_repin_every(12);
            let stop = Arc::clone(&stop);
            let ok = Arc::clone(&ok);
            let wrong = Arc::clone(&wrong);
            threads.push(std::thread::spawn(move || {
                let mut n = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    n += 1;
                    match client.call("echo.echo", vec![Value::Int(n)]) {
                        Ok(v) if v == Value::Int(n) => {
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(other) => {
                            eprintln!("WRONG ANSWER (client {i}): {other:?}, sent {n}");
                            wrong.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {}
                    }
                }
            }));
        }
        // Ramp first: the fleet's initial placement is a random spread;
        // periodic re-pinning needs a moment to even it out before the
        // steady state is worth measuring.
        std::thread::sleep(
            window
                .mul_f64(0.75)
                .clamp(Duration::from_millis(750), Duration::from_secs(5)),
        );
        let begin = Instant::now();
        let ok_at_begin = ok.load(Ordering::Relaxed);
        std::thread::sleep(window);
        let measured = ok.load(Ordering::Relaxed) - ok_at_begin;
        let elapsed = begin.elapsed();
        stop.store(true, Ordering::Relaxed);
        for t in threads {
            t.join().expect("federation client");
        }
        cluster.cleanup();
        (
            measured as f64 / elapsed.as_secs_f64(),
            wrong.load(Ordering::Relaxed),
        )
    };

    let node_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4] };
    println!(
        "{:>8} {:>12} {:>14} {:>10}",
        "nodes", "clients", "calls/sec", "speedup"
    );
    let mut rates = Vec::new();
    for &n in node_counts {
        let (rate, wrong) = measure(n, CLIENTS, window);
        assert_eq!(wrong, 0, "the {n}-node run must not return wrong answers");
        let speedup = rate / rates.first().copied().unwrap_or(rate);
        println!("{n:>8} {CLIENTS:>12} {rate:>14.0} {speedup:>9.2}x");
        rates.push(rate);
    }
    if rates.len() >= 2 {
        let s2 = rates[1] / rates[0];
        assert!(
            s2 >= 1.7,
            "2 nodes must deliver >= 1.7x the 1-node rate (got {s2:.2}x)"
        );
    }
    if rates.len() >= 3 {
        let s4 = rates[2] / rates[0];
        assert!(
            s4 >= 3.0,
            "4 nodes must deliver >= 3x the 1-node rate (got {s4:.2}x)"
        );
    }

    // --- Node-kill drill -------------------------------------------------
    // Pin 8 clients, kill the node most of them are pinned to, and require
    // every affected client to re-resolve via discovery with zero wrong
    // answers.
    let drill_nodes = if quick { 2 } else { 3 };
    println!("\nnode-kill drill: {drill_nodes} nodes, 8 clients, victim killed mid-run");
    let mut cluster = FederationCluster::start(drill_nodes);
    let session = cluster.user_session();
    let mut clients: Vec<BalancedClient> = (0..8)
        .map(|i| {
            cluster
                .balanced_client(
                    &session,
                    seed ^ (0xD41 + i as u64).wrapping_mul(0x9e37_79b9),
                )
                .with_call_deadline(Duration::from_secs(5))
        })
        .collect();
    // Warmup pins every client to some node.
    let mut wrong = 0u64;
    for (i, client) in clients.iter_mut().enumerate() {
        for _ in 0..3 {
            let n = i as i64;
            match client.call("echo.echo", vec![Value::Int(n)]) {
                Ok(v) if v == Value::Int(n) => {}
                _ => wrong += 1,
            }
        }
    }
    assert_eq!(wrong, 0, "warmup must not return wrong answers");
    let pins: Vec<String> = clients
        .iter()
        .map(|c| c.current_url().expect("pinned after warmup").to_string())
        .collect();
    // Victim: the url with the most pinned clients (ties: first seen).
    let victim = pins
        .iter()
        .max_by_key(|url| pins.iter().filter(|p| p == url).count())
        .expect("eight pins")
        .clone();
    let affected = pins.iter().filter(|p| **p == victim).count();
    let index = cluster
        .nodes
        .iter()
        .position(|node| node.url == victim)
        .expect("victim in cluster");
    println!("killing {victim} ({affected}/8 clients pinned to it)");
    let killed = cluster.kill(index);

    // Post-kill phase: every client keeps calling; affected ones must fail
    // over. 40 calls per client is enough to ride out the blacklist
    // cooldown several times over.
    let threads: Vec<_> = clients
        .into_iter()
        .enumerate()
        .map(|(i, mut client)| {
            let killed = killed.clone();
            std::thread::spawn(move || {
                let mut ok = 0u64;
                let mut wrong = 0u64;
                for n in 0..40i64 {
                    match client.call("echo.echo", vec![Value::Int(n)]) {
                        Ok(v) if v == Value::Int(n) => ok += 1,
                        Ok(other) => {
                            eprintln!("WRONG ANSWER (drill client {i}): {other:?}, sent {n}");
                            wrong += 1;
                        }
                        Err(_) => {}
                    }
                }
                assert_ne!(
                    client.current_url(),
                    Some(killed.as_str()),
                    "drill client {i} ended the run pinned to the dead node"
                );
                (ok, wrong, client.failovers(), client.resolutions())
            })
        })
        .collect();
    let results: Vec<(u64, u64, u64, u64)> = threads
        .into_iter()
        .map(|t| t.join().expect("drill client"))
        .collect();

    let total_ok: u64 = results.iter().map(|r| r.0).sum();
    let total_wrong: u64 = results.iter().map(|r| r.1).sum();
    let failovers: u64 = results.iter().map(|r| r.2).sum();
    let rebound = results.iter().filter(|r| r.0 > 0).count();
    println!("{:>36} {:>12}", "metric", "value");
    println!("{:>36} {:>12}", "post-kill correct responses", total_ok);
    println!("{:>36} {:>12}", "wrong answers", total_wrong);
    println!("{:>36} {:>12}", "failovers (endpoint abandoned)", failovers);
    println!(
        "{:>36} {:>11}%",
        "clients re-resolved and serving",
        rebound * 100 / 8
    );
    assert_eq!(
        total_wrong, 0,
        "the kill drill must not produce wrong answers"
    );
    assert!(affected > 0, "the drill must actually strand some clients");
    assert!(
        failovers as usize >= affected,
        "every client pinned to the victim must fail over ({affected} affected, {failovers} failovers)"
    );
    assert_eq!(
        rebound, 8,
        "100% of clients must re-resolve via discovery and keep serving"
    );
    cluster.cleanup();

    // --- Session-affinity phase ------------------------------------------
    // Rendezvous hashing pins each session to one node, keeping that
    // node's session-resolution cache hot; p2c with aggressive re-pinning
    // spreads the same session over every node and pays a cold resolve on
    // each. Run the same many-session workload under both placement
    // policies and compare the fleet-wide session-cache counters.
    let aff_nodes = if quick { 2 } else { 3 };
    let session_count = if quick { 6 } else { 12 };
    let calls_per_session = 16i64;
    println!(
        "\nsession-affinity phase: {aff_nodes} nodes, {session_count} sessions, \
         {calls_per_session} calls each, re-pin every 2 calls"
    );
    let run_policy = |affinity: bool| -> (u64, u64) {
        let cluster = FederationCluster::start(aff_nodes);
        let sessions: Vec<String> = (0..session_count).map(|_| cluster.user_session()).collect();
        let stats = |cluster: &FederationCluster| {
            cluster.nodes.iter().fold((0u64, 0u64), |(h, m), node| {
                let s = node.server.core.sessions.cache_stats();
                (h + s.hits, m + s.misses)
            })
        };
        let (hits_before, misses_before) = stats(&cluster);
        for (i, session) in sessions.iter().enumerate() {
            let mut client = cluster
                .balanced_client(
                    session,
                    seed ^ (0xAFF1 + i as u64).wrapping_mul(0x9e37_79b9),
                )
                .with_call_deadline(Duration::from_secs(5))
                .with_repin_every(2);
            if affinity {
                client = client.with_session_affinity();
            }
            for n in 0..calls_per_session {
                match client.call("echo.echo", vec![Value::Int(n)]) {
                    Ok(v) if v == Value::Int(n) => {}
                    other => panic!("affinity-phase call failed: {other:?}"),
                }
            }
        }
        let (hits_after, misses_after) = stats(&cluster);
        cluster.cleanup();
        (hits_after - hits_before, misses_after - misses_before)
    };
    let (p2c_hits, p2c_misses) = run_policy(false);
    let (aff_hits, aff_misses) = run_policy(true);
    let hit_rate = |hits: u64, misses: u64| 100.0 * hits as f64 / (hits + misses).max(1) as f64;
    println!(
        "{:>36} {:>10} {:>10} {:>9}",
        "placement", "hits", "misses", "hit rate"
    );
    println!(
        "{:>36} {:>10} {:>10} {:>8.1}%",
        "p2c (latency-steered)",
        p2c_hits,
        p2c_misses,
        hit_rate(p2c_hits, p2c_misses)
    );
    println!(
        "{:>36} {:>10} {:>10} {:>8.1}%",
        "rendezvous session affinity",
        aff_hits,
        aff_misses,
        hit_rate(aff_hits, aff_misses)
    );
    assert!(
        aff_misses < p2c_misses,
        "affinity must reduce session-cache misses ({aff_misses} vs {p2c_misses})"
    );
    assert!(
        hit_rate(aff_hits, aff_misses) > hit_rate(p2c_hits, p2c_misses),
        "affinity must improve the session-cache hit rate"
    );

    println!(
        "\nfederation run passed (seed {seed}): scaling gates met, kill drill clean, \
         affinity cache win confirmed"
    );
}

/// Leader-failover drill (DESIGN.md §14). Two seeded phases on an
/// election-managed 3-node cluster:
///
///   1. **Leader kill.** Writers mint sessions (replicated, barrier-acked
///      writes) and readers echo through balanced clients while the
///      elected leader is killed mid-run. Gates: a follower promotes
///      within 3 lease intervals, every session acked before the kill
///      re-authenticates on the new leader (zero acked-then-lost), the
///      readers return zero wrong answers, and writes flow again after
///      the election.
///   2. **Split-brain injection.** The elected leader's discovery uplink
///      is cut while its RPC plane stays up; once a rival claims epoch
///      N+1, a burst of writes is aimed directly at the deposed leader.
///      Gates: 100% of the stale writes are rejected with NOT_LEADER
///      (`clarens_fenced_writes_total` > 0), none leak into the
///      replicated store, and on healing the old leader demotes and
///      resyncs (`clarens_demotions_total` >= 1).
fn failover(point: Duration) {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};

    use clarens::ClarensClient;
    use clarens_federation::{federation_pki, FederationCluster};
    use clarens_wire::fault::codes;

    let argv: Vec<String> = std::env::args().collect();
    let quick = argv.iter().any(|a| a == "--quick");
    let seed: u64 = argv
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| argv.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let lease_ms: u64 = if quick { 500 } else { 750 };
    let jitter_ms: u64 = 100;
    header(&format!(
        "Leader failover — lease-based election, epoch fencing, write rerouting (seed {seed})"
    ));
    println!("3 nodes under lease-based elections (lease {lease_ms} ms, jitter {jitter_ms} ms).");
    println!("Phase 1 kills the elected leader under a live login/read workload; phase 2");
    println!("partitions the leader's election traffic and aims writes straight at it.\n");

    // --- Phase 1: leader kill under load ---------------------------------
    let mut cluster = FederationCluster::start_elections(3, lease_ms, jitter_ms);
    let session = cluster.user_session();
    let addrs: Vec<String> = cluster.nodes.iter().map(|n| n.addr.clone()).collect();
    let old_index = cluster.leader_index().expect("initial leader");
    let old_epoch = cluster.nodes[old_index].core().federation.epoch();

    let stop = Arc::new(AtomicBool::new(false));
    let acked: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let wrong = Arc::new(AtomicU64::new(0));
    let reads_ok = Arc::new(AtomicU64::new(0));
    let mut threads = Vec::new();
    // Writers: each successful login is a replicated write the leader
    // acked — the barrier guarantees a follower applied it first, so none
    // may be lost across the failover. Writers spray all three addresses;
    // the client's NOT_LEADER redirect finds the leader from any of them.
    for w in 0..3u64 {
        let stop = Arc::clone(&stop);
        let acked = Arc::clone(&acked);
        let addrs = addrs.clone();
        let user = federation_pki().user.clone();
        threads.push(std::thread::spawn(move || {
            let mut n = seed.wrapping_mul(0x9e37_79b9).wrapping_add(w);
            while !stop.load(Ordering::Relaxed) {
                n = n.wrapping_mul(6364136223846793005).wrapping_add(1);
                let addr = &addrs[(n >> 33) as usize % addrs.len()];
                let mut client = ClarensClient::new(addr.clone())
                    .with_credential(user.clone())
                    .with_retries(0)
                    .with_call_deadline(Duration::from_secs(2));
                if let Ok(id) = client.login() {
                    acked.lock().unwrap().push(id);
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }));
    }
    // Readers: balanced echo traffic; any mismatched answer is a wrong
    // answer regardless of what the cluster is going through.
    for r in 0..4u64 {
        let stop = Arc::clone(&stop);
        let wrong = Arc::clone(&wrong);
        let reads_ok = Arc::clone(&reads_ok);
        let mut client = cluster
            .balanced_client(&session, seed ^ (0xFA11 + r).wrapping_mul(0x9e37_79b9))
            .with_call_deadline(Duration::from_secs(2));
        threads.push(std::thread::spawn(move || {
            let mut n = 0i64;
            while !stop.load(Ordering::Relaxed) {
                n += 1;
                match client.call("echo.echo", vec![Value::Int(n)]) {
                    Ok(v) if v == Value::Int(n) => {
                        reads_ok.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(other) => {
                        eprintln!("WRONG ANSWER (reader {r}): {other:?}, sent {n}");
                        wrong.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {}
                }
            }
        }));
    }

    // Ramp, then kill the leader mid-run.
    std::thread::sleep(point.clamp(Duration::from_millis(750), Duration::from_secs(3)));
    let acked_before_kill = acked.lock().unwrap().len();
    let killed_at = Instant::now();
    cluster.kill(old_index);
    // Promotion clock: a follower must claim epoch N+1 within 3 leases.
    let budget = Duration::from_millis(3 * lease_ms);
    let hard_deadline = killed_at + Duration::from_millis(10 * lease_ms);
    let promoted_in = loop {
        let done = cluster
            .leader_index()
            .is_some_and(|i| cluster.nodes[i].core().federation.epoch() > old_epoch);
        if done {
            break killed_at.elapsed();
        }
        assert!(
            Instant::now() < hard_deadline,
            "no follower promoted within {} ms",
            10 * lease_ms
        );
        std::thread::sleep(Duration::from_millis(5));
    };
    // Let writes flow against the new leader for a while before stopping.
    std::thread::sleep(point.clamp(Duration::from_millis(750), Duration::from_secs(3)));
    stop.store(true, Ordering::Relaxed);
    for t in threads {
        t.join().expect("workload thread");
    }

    let new_leader = cluster.leader_index().expect("post-kill leader");
    let new_addr = cluster.nodes[new_leader].addr.clone();
    let new_epoch = cluster.nodes[new_leader].core().federation.epoch();
    let acked = Arc::try_unwrap(acked)
        .expect("writers joined")
        .into_inner()
        .unwrap();
    let acked_after_kill = acked.len() - acked_before_kill;
    // Zero acked-then-lost: every acked session authenticates on the new
    // leader (its log contained the record when it sealed the epoch).
    let mut lost = 0usize;
    for id in &acked {
        let mut probe = ClarensClient::new(new_addr.clone())
            .with_retries(1)
            .with_call_deadline(Duration::from_secs(2));
        probe.set_session(id.clone());
        if probe.call("system.whoami", vec![]).is_err() {
            lost += 1;
        }
    }

    println!("{:>40} {:>12}", "metric", "value");
    println!(
        "{:>40} {:>12}",
        "promotion after kill (ms)",
        promoted_in.as_millis()
    );
    println!(
        "{:>40} {:>12}",
        "promotion budget: 3 leases (ms)",
        budget.as_millis()
    );
    println!(
        "{:>40} {:>11}/{}",
        "new leader epoch (was)", new_epoch, old_epoch
    );
    println!(
        "{:>40} {:>12}",
        "sessions acked before kill", acked_before_kill
    );
    println!(
        "{:>40} {:>12}",
        "sessions acked after kill", acked_after_kill
    );
    println!("{:>40} {:>12}", "acked-then-lost writes", lost);
    println!(
        "{:>40} {:>12}",
        "correct reads",
        reads_ok.load(Ordering::Relaxed)
    );
    println!(
        "{:>40} {:>12}",
        "wrong answers",
        wrong.load(Ordering::Relaxed)
    );
    assert!(
        promoted_in <= budget,
        "promotion took {} ms, budget {} ms",
        promoted_in.as_millis(),
        budget.as_millis()
    );
    assert!(new_epoch > old_epoch, "promotion must bump the epoch");
    assert!(
        acked_before_kill > 0,
        "the drill must ack writes before the kill"
    );
    assert_eq!(lost, 0, "acked writes were lost across the failover");
    assert!(
        acked_after_kill > 0,
        "writes never flowed again after the election"
    );
    assert_eq!(
        wrong.load(Ordering::Relaxed),
        0,
        "readers saw wrong answers"
    );
    cluster.cleanup();

    // --- Phase 2: split-brain injection ----------------------------------
    println!("\nsplit-brain injection: partition the leader's election traffic, elect a");
    println!("rival, aim {} writes straight at the deposed leader", 20);
    let cluster = FederationCluster::start_elections(3, lease_ms, jitter_ms);
    let session = cluster.user_session();
    let stale_index = cluster.leader_index().expect("initial leader");
    let stale_epoch = cluster.nodes[stale_index].core().federation.epoch();
    cluster.nodes[stale_index].set_partitioned(true);
    let rival_deadline = Instant::now() + Duration::from_millis(10 * lease_ms);
    while !cluster.nodes.iter().enumerate().any(|(i, n)| {
        i != stale_index && n.is_leader() && n.core().federation.epoch() > stale_epoch
    }) {
        assert!(
            Instant::now() < rival_deadline,
            "no rival leader emerged behind the partition"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    let user_dn = federation_pki().user.certificate.subject.to_string();
    let stale_addr = cluster.nodes[stale_index].addr.clone();
    let fenced_before = cluster.nodes[stale_index]
        .core()
        .telemetry
        .federation
        .fenced_writes
        .get();
    let (mut fenced, mut accepted, mut other_err) = (0u64, 0u64, 0u64);
    for n in 0..20 {
        let mut stale_client = ClarensClient::new(stale_addr.clone())
            .with_retries(0)
            .with_call_deadline(Duration::from_secs(2));
        stale_client.set_session(session.clone());
        match stale_client.call(
            "im.send",
            vec![
                Value::Str(user_dn.clone()),
                Value::Str(format!("stale-{n}")),
            ],
        ) {
            Ok(_) => accepted += 1,
            Err(clarens::ClientError::Fault(f)) if f.code == codes::NOT_LEADER => fenced += 1,
            Err(_) => other_err += 1,
        }
    }
    let fenced_total = cluster.nodes[stale_index]
        .core()
        .telemetry
        .federation
        .fenced_writes
        .get()
        - fenced_before;
    // None of the stale writes may exist anywhere in the replicated store.
    let mut count_probe = cluster.nodes[cluster.leader_index().expect("rival")].client();
    count_probe.set_session(session.clone());
    let leaked = count_probe
        .call("im.count", vec![])
        .expect("im.count on the rival leader");

    // Heal: the deposed leader sees the rival's epoch and demotes.
    cluster.nodes[stale_index].set_partitioned(false);
    let heal_deadline = Instant::now() + Duration::from_millis(10 * lease_ms);
    while cluster.nodes[stale_index].is_leader()
        || cluster.nodes[stale_index]
            .core()
            .telemetry
            .federation
            .demotions
            .get()
            == 0
    {
        assert!(
            Instant::now() < heal_deadline,
            "partitioned leader never demoted after healing"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let demotions = cluster.nodes[stale_index]
        .core()
        .telemetry
        .federation
        .demotions
        .get();

    println!("{:>40} {:>12}", "metric", "value");
    println!("{:>40} {:>12}", "stale writes fenced (NOT_LEADER)", fenced);
    println!("{:>40} {:>12}", "stale writes accepted", accepted);
    println!("{:>40} {:>12}", "stale writes other errors", other_err);
    println!(
        "{:>40} {:>12}",
        "fenced_writes_total (stale node)", fenced_total
    );
    println!(
        "{:>40} {:>12}",
        "messages leaked to the store",
        format!("{leaked:?}")
    );
    println!("{:>40} {:>12}", "demotions after heal", demotions);
    assert_eq!(accepted, 0, "a deposed leader acknowledged stale writes");
    assert_eq!(
        fenced, 20,
        "100% of stale writes must be fenced with NOT_LEADER"
    );
    assert!(fenced_total > 0, "clarens_fenced_writes_total never ticked");
    assert_eq!(leaked, Value::Int(0), "stale writes leaked into the store");
    assert!(demotions >= 1, "healing must demote the deposed leader");
    cluster.cleanup();

    println!(
        "\nfailover run passed (seed {seed}): promotion within 3 leases, 0 acked-then-lost, \
         0 wrong answers, split-brain 100% fenced, demotion on heal"
    );
}

/// Storage-engine ablation (DESIGN.md §12). Exercises the tentpole
/// mechanisms of the pluggable engine in isolation, on a scratch database
/// under the system temp dir:
///
///   A  durable-append throughput at 16 writers, per-append fsync vs
///      group commit (gates: group-commit fsyncs/op <= 0.25; full mode
///      additionally requires >= 3x the per-append-fsync rate);
///   B  bucket-shard lock striping, 8 writers on disjoint buckets
///      (informational sweep over shard counts, in-memory so the WAL
///      append path does not mask the lock);
///   C  append latency percentiles while the janitor compacts the log in
///      the background (gate: no append ever stalls >= 500 ms — the swap
///      window only copies a bounded final tail);
///   D  cold restart of a 100k-session store after 3x overwrite churn:
///      uncompacted replay vs compacted replay vs mmap snapshot load
///      (gate: compacted restart beats uncompacted replay);
///   E  write amplification (bytes handed to the filesystem / live bytes)
///      for the WAL and mmap backends on the same churned workload.
fn storage(point: Duration) {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;

    use clarens_db::{StorageBackend, StorageOptions, Store};

    let argv: Vec<String> = std::env::args().collect();
    let quick = argv.iter().any(|a| a == "--quick");

    header(if quick {
        "Storage engine ablation (quick) — group commit, shards, compaction, restart"
    } else {
        "Storage engine ablation — group commit, shards, compaction, restart"
    });

    let root = std::env::temp_dir().join(format!("clarens-repro-storage-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("create storage bench dir");

    // ---------------- A: group commit vs per-append fsync ----------------
    println!("\n[A] durable appends, 16 writers, 64-byte values (sync: true)");
    let window = if quick {
        point.min(Duration::from_millis(600))
    } else {
        point.max(Duration::from_secs(1))
    };
    let durable = |name: &str, group: bool| -> (f64, f64) {
        // Drain any writeback backlog an earlier workload left behind:
        // this phase measures fsync latency, and a queue of dirty pages
        // ahead of the journal taxes whichever window runs first.
        #[cfg(unix)]
        {
            extern "C" {
                fn sync();
            }
            unsafe { sync() };
        }
        let path = root.join(format!("a-{name}.wal"));
        let store = Arc::new(
            Store::open_with(
                &path,
                StorageOptions {
                    sync: true,
                    group_commit: group,
                    compact_ratio: 0.0,
                    ..StorageOptions::default()
                },
            )
            .expect("open durable store"),
        );
        let stop = Arc::new(AtomicBool::new(false));
        let done = Arc::new(AtomicU64::new(0));
        let threads: Vec<_> = (0..16)
            .map(|t| {
                let store = Arc::clone(&store);
                let stop = Arc::clone(&stop);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    let key = format!("writer-{t}");
                    let value = vec![0x5au8; 64];
                    let mut n = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        store
                            .put("bench", &key, value.clone())
                            .expect("durable put");
                        n += 1;
                    }
                    done.fetch_add(n, Ordering::Relaxed);
                })
            })
            .collect();
        let t0 = Instant::now();
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
        for t in threads {
            t.join().expect("writer thread");
        }
        let elapsed = t0.elapsed().as_secs_f64();
        let ops = done.load(Ordering::Relaxed).max(1);
        let fsyncs = store.storage_counters().fsyncs;
        (ops as f64 / elapsed, fsyncs as f64 / ops as f64)
    };
    // Best-of-N alternating windows (both modes get the same treatment):
    // a single window is at the mercy of whatever writeback the disk is
    // still digesting from an earlier workload.
    let reps = if quick { 1 } else { 2 };
    let (mut per_append_rate, mut per_append_fpo) = (0.0f64, 1.0f64);
    let (mut group_rate, mut group_fpo) = (0.0f64, 1.0f64);
    for r in 0..reps {
        let (rate, fpo) = durable(&format!("per-append-{r}"), false);
        if rate > per_append_rate {
            (per_append_rate, per_append_fpo) = (rate, fpo);
        }
        let (rate, fpo) = durable(&format!("group-commit-{r}"), true);
        if rate > group_rate {
            (group_rate, group_fpo) = (rate, fpo);
        }
    }
    let speedup = group_rate / per_append_rate.max(1.0);
    println!("{:>22} {:>14} {:>12}", "mode", "appends/sec", "fsyncs/op");
    println!(
        "{:>22} {:>14.0} {:>12.3}",
        "per-append fsync", per_append_rate, per_append_fpo
    );
    println!(
        "{:>22} {:>14.0} {:>12.3}",
        "group commit", group_rate, group_fpo
    );
    println!("group commit speedup: {speedup:.2}x");
    assert!(
        group_fpo <= 0.25,
        "group commit must amortize fsyncs to <= 0.25/op at 16 writers (got {group_fpo:.3})"
    );
    if !quick {
        assert!(
            speedup >= 3.0,
            "group commit must deliver >= 3x durable-append throughput at 16 writers (got {speedup:.2}x)"
        );
    }

    // ---------------- B: bucket-shard lock striping ----------------
    println!("\n[B] lock striping, 8 writers on disjoint buckets (in-memory)");
    let shard_window = if quick {
        Duration::from_millis(250)
    } else {
        window.min(Duration::from_secs(1))
    };
    let striped = |shards: usize| -> f64 {
        let store = Arc::new(Store::in_memory_with_shards(shards));
        let stop = Arc::new(AtomicBool::new(false));
        let done = Arc::new(AtomicU64::new(0));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let store = Arc::clone(&store);
                let stop = Arc::clone(&stop);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    let bucket = format!("bucket-{t}");
                    let value = vec![0x33u8; 64];
                    let mut n = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let key = format!("k{}", n % 64);
                        store
                            .put(&bucket, &key, value.clone())
                            .expect("striped put");
                        n += 1;
                    }
                    done.fetch_add(n, Ordering::Relaxed);
                })
            })
            .collect();
        let t0 = Instant::now();
        std::thread::sleep(shard_window);
        stop.store(true, Ordering::Relaxed);
        for t in threads {
            t.join().expect("striped writer");
        }
        done.load(Ordering::Relaxed) as f64 / t0.elapsed().as_secs_f64()
    };
    println!("{:>10} {:>14}", "shards", "puts/sec");
    let mut striped_rates = Vec::new();
    for &n in &[1usize, 4, 16] {
        let rate = striped(n);
        println!("{:>10} {:>14.0}", n, rate);
        striped_rates.push(rate);
    }

    // ---------------- C: append latency under background compaction ------
    println!("\n[C] append latency while the janitor compacts (1 KiB churn, sync: false)");
    let churn_store = Arc::new(
        Store::open_with(
            root.join("c-churn.wal"),
            StorageOptions {
                sync: false,
                compact_ratio: 0.5,
                ..StorageOptions::default()
            },
        )
        .expect("open churn store"),
    );
    let mut lat_ns: Vec<u64> = Vec::with_capacity(1 << 20);
    let value = vec![0x77u8; 1024];
    let started = Instant::now();
    let c_deadline = started
        + if quick {
            Duration::from_secs(3)
        } else {
            Duration::from_secs(6)
        };
    let c_hard_cap = started + Duration::from_secs(20);
    // Pace the churn to ~12k appends/s (12 MB/s): fast enough that the
    // janitor compacts repeatedly underneath the writer, slow enough that
    // the kernel's dirty-page throttling never blocks write() — a stall
    // from writeback pressure would be charged to the engine otherwise.
    let op_interval = Duration::from_micros(83);
    let mut i = 0u64;
    loop {
        let key = format!("hot-{}", i % 16);
        let t0 = Instant::now();
        churn_store
            .put("churn", &key, value.clone())
            .expect("churn put");
        lat_ns.push(t0.elapsed().as_nanos() as u64);
        i += 1;
        if i.is_multiple_of(256) {
            let ahead = (op_interval * i as u32).saturating_sub(started.elapsed());
            if !ahead.is_zero() {
                std::thread::sleep(ahead);
            }
        }
        let now = Instant::now();
        // Keep churning until the window closes AND at least one background
        // compaction has actually run underneath the writer.
        if now >= c_deadline && churn_store.stats().compactions >= 1 {
            break;
        }
        if now >= c_hard_cap {
            break;
        }
    }
    let compactions = churn_store.stats().compactions;
    lat_ns.sort_unstable();
    let pct = |p: f64| -> f64 {
        let idx = ((lat_ns.len() as f64 - 1.0) * p) as usize;
        lat_ns[idx] as f64 / 1_000.0
    };
    let max_us = *lat_ns.last().expect("latencies recorded") as f64 / 1_000.0;
    println!(
        "{:>12} {:>12} {:>12} {:>12} {:>14}",
        "appends", "p50 (us)", "p99 (us)", "max (us)", "compactions"
    );
    println!(
        "{:>12} {:>12.1} {:>12.1} {:>12.1} {:>14}",
        lat_ns.len(),
        pct(0.50),
        pct(0.99),
        max_us,
        compactions
    );
    assert!(
        compactions >= 1,
        "the janitor must compact at least once under churn (got {compactions})"
    );
    assert!(
        max_us < 500_000.0,
        "no append may stall >= 500 ms during background compaction (got {:.1} ms)",
        max_us / 1_000.0
    );
    // The log must have actually shrunk relative to the bytes churned in.
    let churned = lat_ns.len() as u64 * (value.len() as u64 + 32);
    let final_len = churn_store.wal_offset();
    println!(
        "bytes appended ~{churned}, live log after compaction {final_len} \
         ({} epoch bumps)",
        churn_store.wal_epoch()
    );
    drop(churn_store);

    // ---------------- D: cold restart, 100k sessions, 3x churn -----------
    println!("\n[D] cold restart: 100k sessions after 3x overwrite churn");
    let sessions: usize = 100_000;
    let rounds: usize = 3;
    let restart_path = root.join("d-restart.wal");
    let wal_amp_pre;
    {
        let store = Store::open_with(
            &restart_path,
            StorageOptions {
                sync: false,
                compact_ratio: 0.0, // no janitor: measure the uncompacted replay
                ..StorageOptions::default()
            },
        )
        .expect("open restart store");
        for round in 0..rounds {
            for s in 0..sessions {
                let record = format!(
                    "{{\"dn\":\"/O=Grid/CN=user {s}\",\"round\":{round},\"expires\":1234567890}}"
                );
                store
                    .put("sessions", &format!("s{s:06}"), record)
                    .expect("session put");
            }
        }
        let c = store.storage_counters();
        wal_amp_pre = c.bytes_written as f64 / store.live_bytes().max(1) as f64;
    }
    let t0 = Instant::now();
    let store = Store::open_with(
        &restart_path,
        StorageOptions {
            sync: false,
            compact_ratio: 0.0,
            ..StorageOptions::default()
        },
    )
    .expect("replay uncompacted");
    let uncompacted = t0.elapsed();
    assert!(store.get("sessions", "s000000").is_some());
    store.compact().expect("compact restart store");
    drop(store);
    let t0 = Instant::now();
    let store = Store::open_with(
        &restart_path,
        StorageOptions {
            sync: false,
            compact_ratio: 0.0,
            ..StorageOptions::default()
        },
    )
    .expect("replay compacted");
    let compacted = t0.elapsed();
    assert!(store
        .get("sessions", &format!("s{:06}", sessions - 1))
        .is_some());
    drop(store);
    // The compacted WAL doubles as the mmap backend's snapshot format, so
    // the same file serves the third backend measurement.
    let t0 = Instant::now();
    let store = Store::open_with(
        &restart_path,
        StorageOptions {
            backend: StorageBackend::Mmap,
            sync: false,
            compact_ratio: 0.0,
            ..StorageOptions::default()
        },
    )
    .expect("load mmap snapshot");
    let mmap_load = t0.elapsed();
    assert!(store.get("sessions", "s000000").is_some());
    drop(store);
    println!("write amplification before compaction: {wal_amp_pre:.2}x");
    println!("{:>26} {:>14}", "restart path", "time (ms)");
    println!(
        "{:>26} {:>14.1}",
        "uncompacted replay (3x)",
        uncompacted.as_secs_f64() * 1e3
    );
    println!(
        "{:>26} {:>14.1}",
        "compacted replay",
        compacted.as_secs_f64() * 1e3
    );
    println!(
        "{:>26} {:>14.1}",
        "mmap snapshot load",
        mmap_load.as_secs_f64() * 1e3
    );
    assert!(
        compacted < uncompacted,
        "a compacted {sessions}-session store must cold-restart faster than the \
         uncompacted 3x-churned replay ({:.1} ms vs {:.1} ms)",
        compacted.as_secs_f64() * 1e3,
        uncompacted.as_secs_f64() * 1e3
    );

    // ---------------- E: write amplification per backend ------------------
    println!("\n[E] write amplification, 20k records x3 overwrite churn, checkpoint per round");
    let amp = |backend: StorageBackend| -> f64 {
        let path = root.join(format!("e-{backend:?}.db"));
        let store = Store::open_with(
            &path,
            StorageOptions {
                backend,
                sync: false,
                compact_ratio: 0.0,
                ..StorageOptions::default()
            },
        )
        .expect("open amp store");
        let value = vec![0x11u8; 128];
        for _ in 0..3 {
            for s in 0..20_000 {
                store
                    .put("amp", &format!("k{s:05}"), value.clone())
                    .expect("amp put");
            }
            store.sync().expect("amp checkpoint");
        }
        store.storage_counters().bytes_written as f64 / store.live_bytes().max(1) as f64
    };
    println!("{:>10} {:>22}", "backend", "bytes written / live");
    for backend in [StorageBackend::Wal, StorageBackend::Mmap] {
        println!("{:>10} {:>21.2}x", format!("{backend:?}"), amp(backend));
    }

    let _ = std::fs::remove_dir_all(&root);
    println!(
        "\nstorage ablation passed: group-commit fsyncs/op {group_fpo:.3} (<= 0.25), \
         {speedup:.2}x vs per-append fsync, {compactions} background compaction(s) with \
         max append stall {:.2} ms, compacted restart {:.1} ms < uncompacted {:.1} ms",
        max_us / 1_000.0,
        compacted.as_secs_f64() * 1e3,
        uncompacted.as_secs_f64() * 1e3
    );
    let _ = striped_rates;
}
