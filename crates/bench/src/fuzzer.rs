//! In-tree deterministic mutation fuzzer for the wire and HTTP decoders.
//!
//! The container this reproduction builds in has no nightly toolchain and
//! no `cargo-fuzz`, so coverage-guided libFuzzer runs happen elsewhere
//! (the targets under `fuzz/fuzz_targets/` call the same entry points).
//! This module is the harness CI actually executes: a seeded
//! corpus-mutation loop in plain stable Rust, reproducible from `--seed`,
//! driving the shared entries in `clarens_wire::fuzz` and
//! `clarens_httpd::fuzz`.
//!
//! The corpus seeds mirror the proptest strategies: every protocol's
//! encoder output over a spread of [`Value`] shapes, plus hand-picked
//! valid/malformed HTTP requests. Mutations are the classic byte-level
//! set — bit flips, byte splats, truncation, duplication, cross-splice,
//! random insertion — applied 1-4 times per iteration. A property
//! violation panics inside the entry (fast-vs-DOM divergence, round-trip
//! non-idempotence, parser crash), which aborts the harness with a
//! reproducible seed in the message.

use std::time::{Duration, Instant};

use clarens_wire::datetime::DateTime;
use clarens_wire::fault::Fault;
use clarens_wire::{Protocol, RpcCall, RpcResponse, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which decoder a fuzz run drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuzzTarget {
    /// `xmlrpc::decode_call` streaming fast path vs the DOM reference.
    XmlrpcDivergence,
    /// The clarens-binary frame/CBOR decoders (+ round-trip idempotence).
    BinaryFrame,
    /// The HTTP/1.1 request parser.
    HttpParser,
}

impl FuzzTarget {
    /// Every target, in the order CI runs them.
    pub const ALL: [FuzzTarget; 3] = [
        FuzzTarget::XmlrpcDivergence,
        FuzzTarget::BinaryFrame,
        FuzzTarget::HttpParser,
    ];

    /// Stable name used on the `repro fuzz` command line and in reports.
    pub fn name(self) -> &'static str {
        match self {
            FuzzTarget::XmlrpcDivergence => "xmlrpc-divergence",
            FuzzTarget::BinaryFrame => "binary-frame",
            FuzzTarget::HttpParser => "http-parser",
        }
    }

    /// Parse a command-line target name.
    pub fn parse(name: &str) -> Option<FuzzTarget> {
        FuzzTarget::ALL.iter().copied().find(|t| t.name() == name)
    }

    fn entry(self) -> fn(&[u8]) {
        match self {
            FuzzTarget::XmlrpcDivergence => clarens_wire::fuzz::xmlrpc_divergence,
            FuzzTarget::BinaryFrame => clarens_wire::fuzz::binary_frame,
            FuzzTarget::HttpParser => clarens_httpd::fuzz::http_request,
        }
    }
}

/// Outcome of one fuzz run (reaching this at all means no finding — a
/// property violation panics out of [`run`]).
#[derive(Debug)]
pub struct FuzzReport {
    /// The target driven.
    pub target: FuzzTarget,
    /// Mutated inputs executed.
    pub iterations: u64,
    /// Seed-corpus entries the mutations started from.
    pub corpus: usize,
    /// Wall-clock duration of the loop.
    pub elapsed: Duration,
}

/// A spread of `Value` shapes matching the proptest generators: every
/// scalar variant at boundary points, nesting, and the struct-heavy
/// `file.ls`-style entry the binproto ablation uses.
fn seed_values() -> Vec<Value> {
    vec![
        Value::Nil,
        Value::Bool(true),
        Value::Int(0),
        Value::Int(-1),
        Value::Int(i64::MAX),
        Value::Int(i64::MIN),
        Value::Double(0.0),
        Value::Double(-2.5e10),
        Value::Str("hello & <world> \"quoted\"".into()),
        Value::Str("héllo wörld \u{0416}".into()),
        Value::Bytes((0..=255u8).collect()),
        Value::DateTime(DateTime::new(2005, 6, 15, 14, 8, 55).unwrap()),
        Value::array([Value::Int(1), Value::from("two"), Value::Nil]),
        Value::structure([
            ("name", Value::from("pythia_run7.root")),
            ("size", Value::Int(7 << 30)),
            ("mtime", Value::Int(1_118_845_735)),
            ("is_dir", Value::Bool(false)),
            ("md5", Value::from("d41d8cd98f00b204e9800998ecf8427e")),
        ]),
        Value::array([Value::structure([(
            "nested",
            Value::array([Value::structure([("deep", Value::Int(1))])]),
        )])]),
    ]
}

/// Build the seed corpus for a target.
fn seed_corpus(target: FuzzTarget) -> Vec<Vec<u8>> {
    let mut corpus: Vec<Vec<u8>> = Vec::new();
    let calls: Vec<RpcCall> = seed_values()
        .into_iter()
        .enumerate()
        .map(|(i, v)| RpcCall {
            method: ["echo.echo", "file.ls", "system.list_methods"][i % 3].into(),
            params: vec![v, Value::Int(i as i64)],
            id: (i % 2 == 0).then_some(Value::Int(i as i64)),
        })
        .collect();
    let responses: Vec<RpcResponse> = seed_values()
        .into_iter()
        .map(RpcResponse::Success)
        .chain([RpcResponse::Fault(Fault::new(4, "access denied"))])
        .collect();
    match target {
        FuzzTarget::XmlrpcDivergence => {
            for call in &calls {
                corpus.push(clarens_wire::encode_call(Protocol::XmlRpc, call));
            }
            for resp in &responses {
                corpus.push(clarens_wire::encode_response(Protocol::XmlRpc, resp, None));
            }
            // Edge-of-grammar snippets the mutator struggles to reach from
            // well-formed documents.
            for snippet in [
                &b"<?xml version=\"1.0\"?><methodCall><methodName>a.b</methodName></methodCall>"[..],
                &b"<methodCall><params><param><value><int>1</int></value></param></params></methodCall>"[..],
                &b"<methodCall><methodName>a</methodName><params></params></methodCall>"[..],
                &b"<methodCall><!-- comment --><methodName><![CDATA[x.y]]></methodName></methodCall>"[..],
            ] {
                corpus.push(snippet.to_vec());
            }
        }
        FuzzTarget::BinaryFrame => {
            for call in &calls {
                corpus.push(clarens_wire::encode_call(Protocol::Binary, call));
            }
            for resp in &responses {
                corpus.push(clarens_wire::encode_response(Protocol::Binary, resp, None));
            }
        }
        FuzzTarget::HttpParser => {
            for req in [
                &b"GET /clarens?session=abc HTTP/1.1\r\nHost: h\r\n\r\n"[..],
                &b"POST /clarens HTTP/1.1\r\nContent-Type: text/xml\r\nContent-Length: 5\r\n\r\nhello"[..],
                &b"POST /clarens HTTP/1.1\r\nContent-Type: application/x-clarens-cbor\r\nContent-Length: 0\r\n\r\n"[..],
                &b"GET /file/data.root HTTP/1.1\r\nRange: bytes=0-1023\r\nConnection: keep-alive\r\n\r\n"[..],
                &b"HEAD / HTTP/1.0\r\n\r\n"[..],
                &b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n"[..],
            ] {
                corpus.push(req.to_vec());
            }
        }
    }
    corpus
}

/// Apply one random mutation to `data` in place.
fn mutate(data: &mut Vec<u8>, rng: &mut StdRng) {
    // Mutating an empty input can only insert.
    let op = if data.is_empty() {
        5
    } else {
        rng.next_u64() % 6
    };
    match op {
        // Bit flip.
        0 => {
            let i = (rng.next_u64() as usize) % data.len();
            data[i] ^= 1 << (rng.next_u64() % 8);
        }
        // Byte splat.
        1 => {
            let i = (rng.next_u64() as usize) % data.len();
            data[i] = rng.next_u64() as u8;
        }
        // Truncate.
        2 => {
            let keep = (rng.next_u64() as usize) % (data.len() + 1);
            data.truncate(keep);
        }
        // Duplicate a slice onto the end (grows length fields out of sync).
        3 => {
            let start = (rng.next_u64() as usize) % data.len();
            let len = ((rng.next_u64() as usize) % (data.len() - start)).min(64);
            let slice = data[start..start + len].to_vec();
            data.extend_from_slice(&slice);
        }
        // Remove an interior slice.
        4 => {
            let start = (rng.next_u64() as usize) % data.len();
            let len = (rng.next_u64() as usize) % (data.len() - start);
            data.drain(start..start + len);
        }
        // Insert random bytes.
        _ => {
            let at = (rng.next_u64() as usize) % (data.len() + 1);
            let n = 1 + (rng.next_u64() as usize) % 8;
            let bytes: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
            data.splice(at..at, bytes);
        }
    }
}

/// Fuzz `target` for `duration`, deterministically from `seed`. Panics
/// (with the violating input's provenance in the entry's message) on any
/// property violation; returns iteration statistics otherwise.
pub fn run(target: FuzzTarget, seed: u64, duration: Duration) -> FuzzReport {
    let corpus = seed_corpus(target);
    let entry = target.entry();
    // Every seed must pass unmutated — a failure here is a codec bug, not
    // a fuzz finding.
    for input in &corpus {
        entry(input);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let t0 = Instant::now();
    let mut iterations = 0u64;
    while t0.elapsed() < duration {
        // Check the clock once per batch, not per input.
        for _ in 0..512 {
            let base = (rng.next_u64() as usize) % corpus.len();
            let mut input = corpus[base].clone();
            let rounds = 1 + rng.next_u64() % 4;
            for _ in 0..rounds {
                mutate(&mut input, &mut rng);
            }
            entry(&input);
            iterations += 1;
        }
    }
    FuzzReport {
        target,
        iterations,
        corpus: corpus.len(),
        elapsed: t0.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A bounded pass over every target inside `cargo test`, so the fuzz
    /// entries and the harness cannot bit-rot between CI fuzz runs.
    #[test]
    fn short_run_every_target() {
        for target in FuzzTarget::ALL {
            let report = run(target, 0xC1A12E45, Duration::from_millis(300));
            assert!(
                report.iterations >= 512,
                "{}: only {} iterations",
                target.name(),
                report.iterations
            );
        }
    }

    #[test]
    fn target_names_parse() {
        for target in FuzzTarget::ALL {
            assert_eq!(FuzzTarget::parse(target.name()), Some(target));
        }
        assert_eq!(FuzzTarget::parse("nope"), None);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(FuzzTarget::BinaryFrame, 7, Duration::from_millis(120));
        let b = run(FuzzTarget::BinaryFrame, 7, Duration::from_millis(120));
        // Same seed, same corpus: iteration counts may differ by timing,
        // but both must complete without findings (the property asserted
        // inside the entries).
        assert!(a.iterations > 0 && b.iterations > 0);
    }
}
