//! A counting wrapper around the system allocator, for measuring
//! allocations per request.
//!
//! The `repro` binary (and this crate's test harness) installs
//! [`CountingAlloc`] as the `#[global_allocator]`. Counting is off until
//! [`set_counting`] enables it, and threads that drive the workload call
//! [`exempt_current_thread`] so only the *server side* of an in-process
//! grid is measured: with the client/driver threads exempt, every count
//! recorded during a steady-state window comes from the worker threads
//! servicing requests.
//!
//! `dealloc` is free by design — the metric is allocation *events* (and
//! bytes requested), the thing the recycled-buffer data path eliminates.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static COUNTING: AtomicBool = AtomicBool::new(false);
static INSTALLED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static EXEMPT: Cell<bool> = const { Cell::new(false) };
}

/// Pass-through allocator that counts allocation events on non-exempt
/// threads while counting is enabled.
pub struct CountingAlloc;

impl CountingAlloc {
    #[inline]
    fn record(size: usize) {
        if !COUNTING.load(Ordering::Relaxed) {
            return;
        }
        // `try_with` rather than `with`: the TLS slot may already be torn
        // down when a dying thread's destructors allocate. Treat such
        // threads as exempt.
        let exempt = EXEMPT.try_with(Cell::get).unwrap_or(true);
        if exempt {
            return;
        }
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(size as u64, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        INSTALLED.store(true, Ordering::Relaxed);
        Self::record(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        Self::record(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        Self::record(new_size);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// Is [`CountingAlloc`] actually registered as the global allocator in
/// this process? (It marks itself on first use.)
pub fn allocator_installed() -> bool {
    // Any allocation at all goes through the global allocator, so force
    // one to make sure the flag had a chance to be set.
    let probe = Vec::<u8>::with_capacity(1);
    drop(probe);
    INSTALLED.load(Ordering::Relaxed)
}

/// Turn counting on or off (process-wide).
pub fn set_counting(on: bool) {
    COUNTING.store(on, Ordering::SeqCst);
}

/// Exclude the calling thread from counting (drivers, measurement
/// bookkeeping).
pub fn exempt_current_thread() {
    let _ = EXEMPT.try_with(|e| e.set(true));
}

/// Current totals: (allocation events, bytes requested).
pub fn snapshot() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        BYTES.load(Ordering::Relaxed),
    )
}

// Tests live in `tests/alloc_count.rs`: the counters are process-global,
// so they need a test binary of their own (the lib harness runs tests in
// parallel threads that would pollute the counts).
