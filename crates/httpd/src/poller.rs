//! Readiness polling over raw file descriptors — the event layer under the
//! parked-connection scheduler.
//!
//! The paper's PClarens rode on Apache's process-per-connection model; its
//! Figure 4 tops out at tens of clients because every live connection owns
//! a whole process (here: a worker thread) even while idle between
//! keep-alive requests. This module is the piece that breaks that coupling:
//! a thin, dependency-free readiness facade the server uses to *park* idle
//! connections off the worker pool and wake them only when bytes arrive.
//!
//! Three parts:
//!
//! * [`Poller`] — epoll on Linux, a `poll(2)`-rebuild fallback on other
//!   Unixes, and an unsupported stub elsewhere (the server then falls back
//!   to the classic thread-per-connection path). Connection sockets are
//!   registered **one-shot**: after a readiness event fires the fd stays
//!   registered but disarmed, so a worker can own the socket with no risk
//!   of concurrent events, and re-parking is a cheap re-arm.
//! * A self-pipe **waker**: `wake()` is async-signal-safe-ish (one `write`
//!   on a non-blocking pipe) and may be called from any thread — this is
//!   what makes shutdown deterministic under zero traffic, replacing the
//!   old connect-to-yourself hack.
//! * [`DeadlineWheel`] — a hashed timing wheel for keep-alive idle
//!   deadlines. Insert/advance are O(1) amortized; entries are *candidates*
//!   (a re-dispatched connection leaves a stale entry behind), so the owner
//!   validates each expiry against its live table before closing anything.
//!
//! Everything here speaks raw `RawFd`s and `u64` tokens; connection state
//! stays in [`crate::conn`], and only the poller thread mutates
//! registrations, so no interest-list locking is needed on the hot path.

#![allow(dead_code)] // non-Linux fallbacks keep the same surface

use std::time::{Duration, Instant};

#[cfg(unix)]
pub use std::os::unix::io::RawFd;
#[cfg(not(unix))]
pub type RawFd = i32;

/// Token reserved for the internal wake pipe. Connection tokens are
/// allocated from 0 upward, so the reservation never collides.
pub const WAKE_TOKEN: u64 = u64::MAX;

/// One readiness event: the token the fd was registered with, plus whether
/// the peer hung up (the owner still reads to EOF either way).
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Registration token (`WAKE_TOKEN` events are consumed internally).
    pub token: u64,
    /// Peer closed its end (EPOLLRDHUP/EPOLLHUP/POLLERR family).
    pub hangup: bool,
}

// ---------------------------------------------------------------------------
// Raw syscall bindings. The workspace vendors every external crate, so no
// `libc` is available; std already links the platform C library, which
// makes these `extern "C"` declarations resolve at link time.
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod sys {
    use std::io;
    use std::os::raw::{c_int, c_short};
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    #[repr(C)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    #[cfg(target_os = "linux")]
    type NFds = std::os::raw::c_ulong;
    #[cfg(not(target_os = "linux"))]
    type NFds = std::os::raw::c_uint;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: NFds, timeout: c_int) -> c_int;
        fn pipe(fds: *mut c_int) -> c_int;
        fn fcntl(fd: c_int, cmd: c_int, ...) -> c_int;
        fn close(fd: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
        fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
    }

    const F_GETFL: c_int = 3;
    const F_SETFL: c_int = 4;
    #[cfg(target_os = "linux")]
    const O_NONBLOCK: c_int = 0o4000;
    #[cfg(not(target_os = "linux"))]
    const O_NONBLOCK: c_int = 0x0004;

    pub(super) fn set_nonblocking(fd: RawFd) -> io::Result<()> {
        unsafe {
            let flags = fcntl(fd, F_GETFL);
            if flags < 0 {
                return Err(io::Error::last_os_error());
            }
            if fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0 {
                return Err(io::Error::last_os_error());
            }
        }
        Ok(())
    }

    pub(super) fn make_pipe() -> io::Result<(RawFd, RawFd)> {
        let mut fds = [0 as c_int; 2];
        if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
            return Err(io::Error::last_os_error());
        }
        // Both ends non-blocking: `wake()` never stalls on a full pipe, and
        // draining never stalls on an empty one.
        set_nonblocking(fds[0])?;
        set_nonblocking(fds[1])?;
        Ok((fds[0], fds[1]))
    }

    pub(super) fn close_fd(fd: RawFd) {
        unsafe {
            close(fd);
        }
    }

    pub(super) fn pipe_write_byte(fd: RawFd) {
        let byte = 1u8;
        // EAGAIN means the pipe already holds unconsumed wake bytes, which
        // is exactly as good as writing another.
        unsafe {
            let _ = write(fd, &byte, 1);
        }
    }

    pub(super) fn pipe_drain(fd: RawFd) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { read(fd, buf.as_mut_ptr(), buf.len()) };
            if n < (buf.len() as isize) {
                return; // drained (or EAGAIN/EOF)
            }
        }
    }

    fn timeout_ms(timeout: Option<Duration>) -> c_int {
        match timeout {
            None => -1,
            Some(d) => d.as_millis().min(i32::MAX as u128) as c_int,
        }
    }

    /// Block until `fd` is writable (used by the parked path's response
    /// writer when the socket's send buffer fills).
    pub fn wait_writable(fd: RawFd, timeout: Duration) -> io::Result<()> {
        let mut pfd = PollFd {
            fd,
            events: POLLOUT,
            revents: 0,
        };
        loop {
            let rc = unsafe { poll(&mut pfd, 1, timeout_ms(Some(timeout))) };
            if rc > 0 {
                return Ok(());
            }
            if rc == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "socket not writable before timeout",
                ));
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    /// Block until `fd` is readable (poll-fallback helper and tests).
    pub fn wait_readable(fd: RawFd, timeout: Duration) -> io::Result<bool> {
        let mut pfd = PollFd {
            fd,
            events: POLLIN,
            revents: 0,
        };
        loop {
            let rc = unsafe { poll(&mut pfd, 1, timeout_ms(Some(timeout))) };
            if rc > 0 {
                return Ok(true);
            }
            if rc == 0 {
                return Ok(false);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    /// `poll(2)` over a token-tagged interest set (non-Linux backend).
    /// The third tuple field selects write interest (a parked writer)
    /// instead of the default read interest.
    pub(super) fn poll_set(
        interest: &[(RawFd, u64, bool)],
        timeout: Option<Duration>,
        out: &mut Vec<super::Event>,
    ) -> io::Result<()> {
        let mut fds: Vec<PollFd> = interest
            .iter()
            .map(|&(fd, _, writable)| PollFd {
                fd,
                events: if writable { POLLOUT } else { POLLIN },
                revents: 0,
            })
            .collect();
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as NFds, timeout_ms(timeout)) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for (pfd, &(_, token, _)) in fds.iter().zip(interest.iter()) {
            if pfd.revents != 0 {
                out.push(super::Event {
                    token,
                    hangup: pfd.revents & (POLLHUP | POLLERR) != 0,
                });
            }
        }
        Ok(())
    }
}

#[cfg(unix)]
pub use sys::{wait_readable, wait_writable};

#[cfg(not(unix))]
pub fn wait_writable(_fd: RawFd, _timeout: Duration) -> std::io::Result<()> {
    Err(std::io::Error::new(
        std::io::ErrorKind::Unsupported,
        "readiness polling unsupported on this platform",
    ))
}

#[cfg(not(unix))]
pub fn wait_readable(_fd: RawFd, _timeout: Duration) -> std::io::Result<bool> {
    Err(std::io::Error::new(
        std::io::ErrorKind::Unsupported,
        "readiness polling unsupported on this platform",
    ))
}

// ---------------------------------------------------------------------------
// Linux backend: epoll with one-shot connection registrations.
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod backend {
    use std::io;
    use std::os::raw::c_int;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    use super::sys;

    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLLONESHOT: u32 = 1 << 30;
    const EPOLL_CLOEXEC: c_int = 0o2000000;

    // The kernel ABI packs epoll_event on x86-64 (and x32) only.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
    }

    /// epoll-backed readiness source with a self-pipe waker.
    pub struct Poller {
        epfd: RawFd,
        wake_read: RawFd,
        wake_write: RawFd,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            let (wake_read, wake_write) = match sys::make_pipe() {
                Ok(pair) => pair,
                Err(e) => {
                    sys::close_fd(epfd);
                    return Err(e);
                }
            };
            let poller = Poller {
                epfd,
                wake_read,
                wake_write,
            };
            // The wake pipe is level-triggered and persistent.
            poller.ctl(EPOLL_CTL_ADD, wake_read, EPOLLIN, super::WAKE_TOKEN)?;
            Ok(poller)
        }

        fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            let mut ev = EpollEvent {
                events,
                data: token,
            };
            if unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Register `fd` for readability. `oneshot` registrations disarm
        /// after the first event and must be [`Poller::rearm`]ed.
        pub fn add(&self, fd: RawFd, token: u64, oneshot: bool) -> io::Result<()> {
            let mut events = EPOLLIN | EPOLLRDHUP;
            if oneshot {
                events |= EPOLLONESHOT;
            }
            self.ctl(EPOLL_CTL_ADD, fd, events, token)
        }

        /// Re-arm a one-shot registration after the owner handled its event.
        pub fn rearm(&self, fd: RawFd, token: u64) -> io::Result<()> {
            self.ctl(
                EPOLL_CTL_MOD,
                fd,
                EPOLLIN | EPOLLRDHUP | EPOLLONESHOT,
                token,
            )
        }

        /// Register `fd` for writability (one-shot): a connection parked
        /// mid-response after `EWOULDBLOCK`, waiting for the socket's send
        /// buffer to drain.
        pub fn add_writable(&self, fd: RawFd, token: u64) -> io::Result<()> {
            self.ctl(
                EPOLL_CTL_ADD,
                fd,
                EPOLLOUT | EPOLLRDHUP | EPOLLONESHOT,
                token,
            )
        }

        /// Flip an existing registration to one-shot write interest.
        pub fn rearm_writable(&self, fd: RawFd, token: u64) -> io::Result<()> {
            self.ctl(
                EPOLL_CTL_MOD,
                fd,
                EPOLLOUT | EPOLLRDHUP | EPOLLONESHOT,
                token,
            )
        }

        /// Drop a registration (closing the fd also does this implicitly).
        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Wake a blocked [`Poller::wait`] from any thread.
        pub fn wake(&self) {
            sys::pipe_write_byte(self.wake_write);
        }

        /// Wait for events (`None` = indefinitely). Wake-pipe events are
        /// drained and not reported; callers re-check their own state after
        /// every return.
        pub fn wait(
            &self,
            timeout: Option<Duration>,
            out: &mut Vec<super::Event>,
        ) -> io::Result<()> {
            const MAX_EVENTS: usize = 64;
            let mut events = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
            let timeout_ms: c_int = match timeout {
                None => -1,
                Some(d) => d.as_millis().min(i32::MAX as u128) as c_int,
            };
            let n = loop {
                let rc = unsafe {
                    epoll_wait(
                        self.epfd,
                        events.as_mut_ptr(),
                        MAX_EVENTS as c_int,
                        timeout_ms,
                    )
                };
                if rc >= 0 {
                    break rc as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for ev in events.iter().take(n) {
                let token = ev.data;
                let bits = ev.events;
                if token == super::WAKE_TOKEN {
                    sys::pipe_drain(self.wake_read);
                    continue;
                }
                out.push(super::Event {
                    token,
                    hangup: bits & (EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            sys::close_fd(self.epfd);
            sys::close_fd(self.wake_read);
            sys::close_fd(self.wake_write);
        }
    }
}

// ---------------------------------------------------------------------------
// Portable Unix backend: rebuild a poll(2) set per wait. O(n) per call but
// n is the parked-connection count, and non-Linux hosts are the dev-laptop
// case, not the deployment case.
// ---------------------------------------------------------------------------

#[cfg(all(unix, not(target_os = "linux")))]
mod backend {
    use std::io;
    use std::os::unix::io::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    use super::sys;

    struct Registration {
        fd: RawFd,
        token: u64,
        armed: bool,
        oneshot: bool,
        writable: bool,
    }

    pub struct Poller {
        interest: Mutex<Vec<Registration>>,
        wake_read: RawFd,
        wake_write: RawFd,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let (wake_read, wake_write) = sys::make_pipe()?;
            Ok(Poller {
                interest: Mutex::new(Vec::new()),
                wake_read,
                wake_write,
            })
        }

        pub fn add(&self, fd: RawFd, token: u64, oneshot: bool) -> io::Result<()> {
            self.interest.lock().unwrap().push(Registration {
                fd,
                token,
                armed: true,
                oneshot,
                writable: false,
            });
            Ok(())
        }

        pub fn rearm(&self, fd: RawFd, token: u64) -> io::Result<()> {
            self.rearm_with(fd, token, false)
        }

        pub fn add_writable(&self, fd: RawFd, token: u64) -> io::Result<()> {
            self.interest.lock().unwrap().push(Registration {
                fd,
                token,
                armed: true,
                oneshot: true,
                writable: true,
            });
            Ok(())
        }

        pub fn rearm_writable(&self, fd: RawFd, token: u64) -> io::Result<()> {
            self.rearm_with(fd, token, true)
        }

        fn rearm_with(&self, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
            let mut interest = self.interest.lock().unwrap();
            match interest.iter_mut().find(|r| r.fd == fd) {
                Some(r) => {
                    r.token = token;
                    r.armed = true;
                    r.writable = writable;
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.interest.lock().unwrap().retain(|r| r.fd != fd);
            Ok(())
        }

        pub fn wake(&self) {
            sys::pipe_write_byte(self.wake_write);
        }

        pub fn wait(
            &self,
            timeout: Option<Duration>,
            out: &mut Vec<super::Event>,
        ) -> io::Result<()> {
            let mut set: Vec<(RawFd, u64, bool)> = vec![(self.wake_read, super::WAKE_TOKEN, false)];
            set.extend(
                self.interest
                    .lock()
                    .unwrap()
                    .iter()
                    .filter(|r| r.armed)
                    .map(|r| (r.fd, r.token, r.writable)),
            );
            let mut raw = Vec::new();
            sys::poll_set(&set, timeout, &mut raw)?;
            let mut interest = self.interest.lock().unwrap();
            for event in raw {
                if event.token == super::WAKE_TOKEN {
                    sys::pipe_drain(self.wake_read);
                    continue;
                }
                if let Some(r) = interest.iter_mut().find(|r| r.token == event.token) {
                    if r.oneshot {
                        r.armed = false;
                    }
                }
                out.push(event);
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            sys::close_fd(self.wake_read);
            sys::close_fd(self.wake_write);
        }
    }
}

// ---------------------------------------------------------------------------
// Stub backend: no readiness support; the server detects the construction
// failure and keeps every connection on the blocking worker path.
// ---------------------------------------------------------------------------

#[cfg(not(unix))]
mod backend {
    use std::io;
    use std::time::Duration;

    use super::RawFd;

    pub struct Poller;

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "connection parking requires a Unix readiness backend",
            ))
        }

        pub fn add(&self, _fd: RawFd, _token: u64, _oneshot: bool) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }

        pub fn rearm(&self, _fd: RawFd, _token: u64) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }

        pub fn add_writable(&self, _fd: RawFd, _token: u64) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }

        pub fn rearm_writable(&self, _fd: RawFd, _token: u64) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }

        pub fn delete(&self, _fd: RawFd) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }

        pub fn wake(&self) {}

        pub fn wait(
            &self,
            _timeout: Option<Duration>,
            _out: &mut Vec<super::Event>,
        ) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }
    }
}

pub use backend::Poller;

// ---------------------------------------------------------------------------
// Deadline wheel.
// ---------------------------------------------------------------------------

/// A hashed timing wheel for keep-alive idle deadlines.
///
/// All deadlines share one horizon (the server's `read_timeout`), so the
/// wheel covers a single rotation: `slots × tick > horizon`. Entries are
/// `(token, seq)` *candidates* — a connection that was re-dispatched before
/// its deadline leaves its entry behind, and the owner must validate the
/// sequence number (and the actual deadline) against its parked table
/// before expiring anything. This keeps insert O(1) with no deletion
/// bookkeeping on the wake path.
pub struct DeadlineWheel {
    slots: Vec<Vec<(u64, u64)>>,
    tick: Duration,
    last: Instant,
    cursor: usize,
}

impl DeadlineWheel {
    /// Build a wheel whose rotation covers `horizon` (plus slack). The tick
    /// is `horizon / 32` clamped to [5 ms, 500 ms], so a 200 ms test
    /// timeout expires within ~6 ms of schedule and a 30 s production
    /// timeout costs one wakeup per 500 ms (when anything is parked).
    pub fn new(horizon: Duration) -> DeadlineWheel {
        let tick = (horizon / 32)
            .max(Duration::from_millis(5))
            .min(Duration::from_millis(500));
        let slots = (horizon.as_nanos() / tick.as_nanos().max(1)) as usize + 2;
        DeadlineWheel {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            tick,
            last: Instant::now(),
            cursor: 0,
        }
    }

    /// Tick granularity (tests).
    pub fn tick(&self) -> Duration {
        self.tick
    }

    /// Schedule a candidate expiry for `(token, seq)` at `deadline`.
    pub fn insert(&mut self, token: u64, seq: u64, deadline: Instant) {
        let ahead = deadline.saturating_duration_since(self.last);
        let ticks = ((ahead.as_nanos() / self.tick.as_nanos().max(1)) as usize + 1)
            .min(self.slots.len() - 1);
        let slot = (self.cursor + ticks) % self.slots.len();
        self.slots[slot].push((token, seq));
    }

    /// Advance the wheel to `now`, draining every passed slot's candidates
    /// into `due`. Bounded by one full rotation per call.
    pub fn advance(&mut self, now: Instant, due: &mut Vec<(u64, u64)>) {
        let mut steps = 0;
        while now.saturating_duration_since(self.last) >= self.tick {
            self.last += self.tick;
            self.cursor = (self.cursor + 1) % self.slots.len();
            due.append(&mut self.slots[self.cursor]);
            steps += 1;
            if steps >= self.slots.len() {
                // Lapped (the poller thread stalled for a whole rotation):
                // everything is due; resynchronize the time base.
                self.last = now;
                for slot in &mut self.slots {
                    due.append(slot);
                }
                return;
            }
        }
    }

    /// Time until the next tick boundary (poll timeout when parked
    /// connections exist). Never zero, so a busy loop cannot form.
    pub fn next_tick_in(&self, now: Instant) -> Duration {
        self.tick
            .saturating_sub(now.saturating_duration_since(self.last))
            .max(Duration::from_millis(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wheel_expires_after_horizon() {
        let mut wheel = DeadlineWheel::new(Duration::from_millis(200));
        let now = Instant::now();
        wheel.insert(7, 1, now + Duration::from_millis(200));
        let mut due = Vec::new();
        // Just before the deadline: nothing due.
        wheel.advance(now + Duration::from_millis(150), &mut due);
        assert!(due.is_empty(), "expired {due:?} before the deadline");
        // Well past: the candidate surfaces.
        wheel.advance(now + Duration::from_millis(400), &mut due);
        assert_eq!(due, vec![(7, 1)]);
    }

    #[test]
    fn wheel_keeps_candidates_distinct_by_seq() {
        let mut wheel = DeadlineWheel::new(Duration::from_millis(100));
        let now = Instant::now();
        wheel.insert(1, 1, now + Duration::from_millis(50));
        wheel.insert(1, 2, now + Duration::from_millis(50));
        let mut due = Vec::new();
        wheel.advance(now + Duration::from_millis(200), &mut due);
        due.sort_unstable();
        assert_eq!(due, vec![(1, 1), (1, 2)]);
    }

    #[test]
    fn wheel_survives_a_lap() {
        let mut wheel = DeadlineWheel::new(Duration::from_millis(100));
        let now = Instant::now();
        wheel.insert(9, 3, now + Duration::from_millis(80));
        let mut due = Vec::new();
        // Stall for many rotations; the entry must still surface exactly once.
        wheel.advance(now + Duration::from_secs(10), &mut due);
        assert_eq!(due, vec![(9, 3)]);
        due.clear();
        wheel.advance(now + Duration::from_secs(20), &mut due);
        assert!(due.is_empty());
    }

    #[cfg(unix)]
    #[test]
    fn poller_wake_and_readiness() {
        use std::io::Write as _;
        use std::os::unix::io::AsRawFd;

        let poller = Poller::new().expect("poller");
        let mut events = Vec::new();

        // A wake from another thread interrupts an indefinite wait.
        let waker = std::sync::Arc::new(poller);
        let w = std::sync::Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            w.wake();
        });
        waker.wait(None, &mut events).expect("wait");
        handle.join().unwrap();
        assert!(events.is_empty(), "wake events are internal: {events:?}");

        // A registered socket reports readability once (one-shot), then
        // stays silent until re-armed.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        waker
            .add(server_side.as_raw_fd(), 42, true)
            .expect("register");
        client.write_all(b"ping").unwrap();
        events.clear();
        waker
            .wait(Some(Duration::from_secs(2)), &mut events)
            .expect("wait");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 42);
        events.clear();
        waker
            .wait(Some(Duration::from_millis(50)), &mut events)
            .expect("wait");
        assert!(events.is_empty(), "one-shot fd fired twice: {events:?}");
        waker.rearm(server_side.as_raw_fd(), 42).expect("rearm");
        events.clear();
        waker
            .wait(Some(Duration::from_secs(2)), &mut events)
            .expect("wait");
        assert_eq!(events.len(), 1, "re-armed fd must fire again");
    }

    #[cfg(unix)]
    #[test]
    fn write_interest_fires_only_when_buffer_drains() {
        use std::io::{Read as _, Write as _};
        use std::os::unix::io::AsRawFd;

        let poller = Poller::new().expect("poller");
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        // Stuff the send buffer until the kernel pushes back.
        let chunk = [0u8; 64 * 1024];
        let mut queued = 0usize;
        loop {
            match (&server_side).write(&chunk) {
                Ok(n) => queued += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) => panic!("fill: {e}"),
            }
        }
        poller
            .add_writable(server_side.as_raw_fd(), 7)
            .expect("add_writable");
        let mut events = Vec::new();
        poller
            .wait(Some(Duration::from_millis(100)), &mut events)
            .expect("wait");
        assert!(
            events.is_empty(),
            "writable fired on a full buffer: {events:?}"
        );

        // Drain from the client side; write readiness must now surface.
        let mut rest = vec![0u8; queued];
        client.read_exact(&mut rest).unwrap();
        poller
            .wait(Some(Duration::from_secs(5)), &mut events)
            .expect("wait");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
    }
}
