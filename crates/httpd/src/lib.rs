//! # clarens-httpd — the HTTP substrate
//!
//! In the paper's architecture (Figure 1) the Apache web server fronts
//! PClarens: it terminates HTTP and SSL and dispatches requests into the
//! framework. This crate is that layer, built from scratch on `std::net`:
//!
//! * [`parse`] — HTTP/1.1 request/response parsing with Content-Length and
//!   chunked bodies, hard limits, and streaming response writes (the
//!   `sendfile()`-style path the file service uses),
//! * [`server`] — a worker pool fed by an event-driven connection
//!   scheduler: idle keep-alive connections are *parked* in [`poller`]
//!   instead of pinning a worker thread, so live-connection capacity is
//!   bounded by `max_connections`, not `workers` (the classic
//!   thread-per-connection path stays selectable for A/B),
//! * [`poller`] — a dependency-free readiness facade (epoll on Linux,
//!   `poll(2)` elsewhere on Unix) with a self-pipe waker and a deadline
//!   wheel for keep-alive idle expiry,
//! * [`client`] — a keep-alive client used by examples, tests, and the
//!   Figure-4 benchmark driver.

pub mod client;
mod conn;
pub mod fuzz;
pub mod parse;
pub mod poller;
pub mod scratch;
pub mod server;
pub mod types;
pub mod zerocopy;

pub use client::{ClientError, ClientTls, HttpClient};
pub use parse::{
    is_truncation, resolve_range, ClientResponse, ParseError, RangeOutcome, WriteOpts, WriteOutcome,
};
pub use scratch::Scratch;
pub use server::{Handler, HttpServer, PeerInfo, ServerConfig, ServerStats, TlsConfig};
pub use types::{http_date, Body, Headers, Method, Request, Response};
