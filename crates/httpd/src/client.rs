//! HTTP client with keep-alive connection reuse and optional secure
//! channel, mirroring the Python client the paper's Figure-4 test used
//! ("a single process opening connections to the server and completing
//! requests asynchronously").

use std::io::{self, BufReader, Read};
use std::net::TcpStream;
use std::time::Duration;

use clarens_pki::cert::{Certificate, Credential};
use clarens_pki::dn::DistinguishedName;
use clarens_pki::SecureStream;

use crate::parse::{read_response, write_request, ClientResponse, ParseError};
use crate::types::{Method, Request};

/// TLS settings for the client side.
pub struct ClientTls {
    /// Client credential presented to the server.
    pub credential: Credential,
    /// Trust roots used to validate the server certificate.
    pub roots: Vec<Certificate>,
    /// Clock for certificate validation.
    pub now_fn: Box<dyn Fn() -> i64 + Send + Sync>,
}

enum Connection {
    Plain(BufReader<TcpStream>),
    Secure(Box<BufReader<SecureStream<TcpStream>>>),
}

/// Client errors.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// Malformed response.
    Protocol(String),
    /// Secure channel failure.
    Tls(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client I/O: {e}"),
            ClientError::Protocol(m) => write!(f, "client protocol: {m}"),
            ClientError::Tls(m) => write!(f, "client TLS: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ParseError> for ClientError {
    fn from(e: ParseError) -> Self {
        match e {
            ParseError::Io(io) => ClientError::Io(io),
            other => ClientError::Protocol(other.to_string()),
        }
    }
}

/// A connection-reusing HTTP client bound to one server address.
pub struct HttpClient {
    addr: String,
    tls: Option<ClientTls>,
    connection: Option<Connection>,
    /// Server identity from the TLS handshake (None for plaintext).
    server_identity: Option<DistinguishedName>,
    read_timeout: Duration,
    max_body: usize,
}

impl HttpClient {
    /// A plaintext client.
    pub fn new(addr: impl Into<String>) -> Self {
        HttpClient {
            addr: addr.into(),
            tls: None,
            connection: None,
            server_identity: None,
            read_timeout: Duration::from_secs(30),
            max_body: crate::parse::DEFAULT_MAX_BODY,
        }
    }

    /// A secure-channel client.
    pub fn new_tls(addr: impl Into<String>, tls: ClientTls) -> Self {
        HttpClient {
            tls: Some(tls),
            ..HttpClient::new(addr)
        }
    }

    /// The server's authenticated identity, once a TLS connection has been
    /// established.
    pub fn server_identity(&self) -> Option<&DistinguishedName> {
        self.server_identity.as_ref()
    }

    /// Change the read timeout, applying it to the live connection (if
    /// any) as well as future ones. Callers with a per-call deadline set
    /// this to the remaining budget before each request so a stalled
    /// server cannot hang them past the deadline.
    pub fn set_read_timeout(&mut self, timeout: Duration) {
        // A zero timeout is rejected by the socket API; clamp up.
        self.read_timeout = timeout.max(Duration::from_millis(1));
        if let Some(conn) = &self.connection {
            let sock = match conn {
                Connection::Plain(reader) => reader.get_ref(),
                Connection::Secure(reader) => reader.get_ref().get_ref(),
            };
            sock.set_read_timeout(Some(self.read_timeout)).ok();
        }
    }

    /// The currently configured read timeout.
    pub fn read_timeout(&self) -> Duration {
        self.read_timeout
    }

    fn connect(&mut self) -> Result<(), ClientError> {
        let sock = TcpStream::connect(&self.addr)?;
        sock.set_read_timeout(Some(self.read_timeout)).ok();
        sock.set_nodelay(true).ok();
        match &self.tls {
            None => {
                self.connection = Some(Connection::Plain(BufReader::new(sock)));
            }
            Some(tls) => {
                let now = (tls.now_fn)();
                let mut rng = rand::rng();
                let stream =
                    SecureStream::connect(sock, &tls.credential, &tls.roots, now, &mut rng)
                        .map_err(|e| ClientError::Tls(e.to_string()))?;
                self.server_identity = Some(stream.peer_identity().clone());
                self.connection = Some(Connection::Secure(Box::new(BufReader::new(stream))));
            }
        }
        Ok(())
    }

    /// Send a request, transparently (re)connecting, and read the response.
    pub fn request(&mut self, request: &Request) -> Result<ClientResponse, ClientError> {
        // One retry: a dead keep-alive connection surfaces as an error on
        // the first write/read, after which we reconnect once.
        for attempt in 0..2 {
            if self.connection.is_none() {
                self.connect()?;
            }
            match self.try_request(request) {
                Ok(resp) => {
                    if !resp.keep_alive {
                        self.connection = None;
                    }
                    return Ok(resp);
                }
                Err(e) => {
                    self.connection = None;
                    if attempt == 1 {
                        return Err(e);
                    }
                }
            }
        }
        unreachable!("loop returns on second attempt");
    }

    fn try_request(&mut self, request: &Request) -> Result<ClientResponse, ClientError> {
        let max_body = self.max_body;
        match self.connection.as_mut().expect("connected") {
            Connection::Plain(reader) => {
                write_request(reader.get_mut(), request)?;
                Ok(read_response(reader, max_body)?)
            }
            Connection::Secure(reader) => {
                write_request(reader.get_mut(), request)?;
                Ok(read_response(reader.as_mut(), max_body)?)
            }
        }
    }

    /// Convenience: GET a path.
    pub fn get(&mut self, target: &str) -> Result<ClientResponse, ClientError> {
        let mut req = Request::new(Method::Get, target);
        req.headers.set("host", self.addr.clone());
        self.request(&req)
    }

    /// Convenience: POST a body.
    pub fn post(
        &mut self,
        target: &str,
        content_type: &str,
        body: impl Into<Vec<u8>>,
    ) -> Result<ClientResponse, ClientError> {
        let mut req = Request::new(Method::Post, target);
        req.headers.set("host", self.addr.clone());
        req.headers.set("content-type", content_type);
        req.body = body.into();
        self.request(&req)
    }

    /// Drop the persistent connection (next request reconnects). Used by
    /// the GT3-style baseline comparison, which reconnects per call.
    pub fn close(&mut self) {
        self.connection = None;
    }
}

// The raw-stream read helper is used by tests; quiet the lint when the
// crate is built without them.
#[allow(dead_code)]
fn read_all<R: Read>(mut r: R) -> io::Result<Vec<u8>> {
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Handler, HttpServer, PeerInfo, ServerConfig, TlsConfig};
    use crate::types::Response;
    use clarens_pki::cert::CertificateAuthority;
    use clarens_pki::rsa;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    /// Short keep-alive timeout so `shutdown()` joins quickly in tests.
    fn test_config() -> ServerConfig {
        ServerConfig {
            read_timeout: Duration::from_millis(200),
            ..Default::default()
        }
    }

    fn now() -> i64 {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_secs() as i64
    }

    fn dn(text: &str) -> DistinguishedName {
        DistinguishedName::parse(text).unwrap()
    }

    struct CountingHandler {
        hits: AtomicU64,
    }

    impl Handler for CountingHandler {
        fn handle(&self, request: crate::types::Request, peer: Option<&PeerInfo>) -> Response {
            let n = self.hits.fetch_add(1, Ordering::Relaxed);
            let who = peer.map(|p| p.identity.to_string()).unwrap_or_default();
            Response::ok(
                "text/plain",
                format!("hit={n} path={} peer={who}", request.path()),
            )
        }
    }

    #[test]
    fn plaintext_client_reuses_connection() {
        let server = HttpServer::bind(
            "127.0.0.1:0",
            test_config(),
            Arc::new(CountingHandler {
                hits: AtomicU64::new(0),
            }),
        )
        .unwrap();
        let mut client = HttpClient::new(server.local_addr().to_string());
        for i in 0..10 {
            let resp = client.get(&format!("/p{i}")).unwrap();
            assert_eq!(resp.status, 200);
            assert!(String::from_utf8_lossy(&resp.body).contains(&format!("hit={i}")));
        }
        // All ten requests over one connection.
        assert_eq!(server.stats().connections.load(Ordering::Relaxed), 1);
        server.shutdown();
    }

    #[test]
    fn client_reconnects_after_server_close() {
        let server = HttpServer::bind(
            "127.0.0.1:0",
            test_config(),
            Arc::new(CountingHandler {
                hits: AtomicU64::new(0),
            }),
        )
        .unwrap();
        let mut client = HttpClient::new(server.local_addr().to_string());
        assert_eq!(client.get("/a").unwrap().status, 200);
        client.close();
        assert_eq!(client.get("/b").unwrap().status, 200);
        assert_eq!(server.stats().connections.load(Ordering::Relaxed), 2);
        server.shutdown();
    }

    #[test]
    fn tls_end_to_end_with_mutual_auth() {
        let t = now();
        let mut rng = StdRng::seed_from_u64(42);
        let ca = CertificateAuthority::new(&mut rng, dn("/O=grid/CN=CA"), t - 1000, 3650);
        let server_kp = rsa::generate(&mut rng, rsa::DEFAULT_KEY_BITS);
        let server_cred = Credential {
            certificate: ca.issue(dn("/O=grid/CN=host"), &server_kp.public, t - 1000, 365),
            key: server_kp.private,
            chain: vec![],
        };
        let client_kp = rsa::generate(&mut rng, rsa::DEFAULT_KEY_BITS);
        let client_cred = Credential {
            certificate: ca.issue(
                dn("/O=grid/OU=People/CN=alice"),
                &client_kp.public,
                t - 1000,
                365,
            ),
            key: client_kp.private,
            chain: vec![],
        };

        let config = ServerConfig {
            tls: Some(TlsConfig {
                credential: server_cred,
                roots: vec![ca.certificate.clone()],
            }),
            ..test_config()
        };
        let server = HttpServer::bind(
            "127.0.0.1:0",
            config,
            Arc::new(CountingHandler {
                hits: AtomicU64::new(0),
            }),
        )
        .unwrap();

        let mut client = HttpClient::new_tls(
            server.local_addr().to_string(),
            ClientTls {
                credential: client_cred,
                roots: vec![ca.certificate.clone()],
                now_fn: Box::new(now),
            },
        );
        let resp = client.get("/secure").unwrap();
        assert_eq!(resp.status, 200);
        let text = String::from_utf8_lossy(&resp.body).to_string();
        assert!(text.contains("peer=/O=grid/OU=People/CN=alice"), "{text}");
        assert_eq!(
            client.server_identity().unwrap().to_string(),
            "/O=grid/CN=host"
        );

        // Keep-alive works over TLS too.
        let resp2 = client.get("/secure2").unwrap();
        assert!(String::from_utf8_lossy(&resp2.body).contains("hit=1"));
        assert_eq!(server.stats().connections.load(Ordering::Relaxed), 1);
        server.shutdown();
    }

    #[test]
    fn tls_client_rejects_untrusted_server() {
        let t = now();
        let mut rng = StdRng::seed_from_u64(43);
        let ca = CertificateAuthority::new(&mut rng, dn("/O=grid/CN=CA"), t - 1000, 3650);
        let other_ca = CertificateAuthority::new(&mut rng, dn("/O=evil/CN=CA"), t - 1000, 3650);
        let server_kp = rsa::generate(&mut rng, rsa::DEFAULT_KEY_BITS);
        let server_cred = Credential {
            certificate: ca.issue(dn("/O=grid/CN=host"), &server_kp.public, t - 1000, 365),
            key: server_kp.private,
            chain: vec![],
        };
        let client_kp = rsa::generate(&mut rng, rsa::DEFAULT_KEY_BITS);
        let client_cred = Credential {
            certificate: ca.issue(dn("/O=grid/CN=bob"), &client_kp.public, t - 1000, 365),
            key: client_kp.private,
            chain: vec![],
        };
        let config = ServerConfig {
            tls: Some(TlsConfig {
                credential: server_cred,
                roots: vec![ca.certificate.clone()],
            }),
            ..test_config()
        };
        let server = HttpServer::bind(
            "127.0.0.1:0",
            config,
            Arc::new(CountingHandler {
                hits: AtomicU64::new(0),
            }),
        )
        .unwrap();
        // Client only trusts the *other* CA.
        let mut client = HttpClient::new_tls(
            server.local_addr().to_string(),
            ClientTls {
                credential: client_cred,
                roots: vec![other_ca.certificate.clone()],
                now_fn: Box::new(now),
            },
        );
        match client.get("/x") {
            Err(ClientError::Tls(_)) | Err(ClientError::Io(_)) => {}
            other => panic!("expected TLS failure, got {other:?}"),
        }
        server.shutdown();
    }
}
