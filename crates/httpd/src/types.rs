//! HTTP message types.
//!
//! Clarens rides on plain HTTP/1.1: "The Apache server receives an HTTP
//! POST or GET request from the client" (paper §2). These types are shared
//! by the server and client halves of this crate.

use std::collections::BTreeMap;
use std::io::Read;

/// Request method. Clarens uses GET (file/portal) and POST (RPC); the rest
/// are parsed so the server can answer 405 rather than 400.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// HTTP GET.
    Get,
    /// HTTP POST.
    Post,
    /// HTTP HEAD.
    Head,
    /// HTTP PUT.
    Put,
    /// HTTP DELETE.
    Delete,
    /// HTTP OPTIONS.
    Options,
}

impl Method {
    /// Parse from the request-line token.
    pub fn parse(token: &str) -> Option<Method> {
        match token {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            "HEAD" => Some(Method::Head),
            "PUT" => Some(Method::Put),
            "DELETE" => Some(Method::Delete),
            "OPTIONS" => Some(Method::Options),
            _ => None,
        }
    }

    /// The wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Head => "HEAD",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
            Method::Options => "OPTIONS",
        }
    }
}

/// Case-insensitive header map (last value wins; multi-value headers are
/// comma-joined by the parser).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Headers {
    map: BTreeMap<String, String>,
}

impl Headers {
    /// Empty header set.
    pub fn new() -> Self {
        Headers::default()
    }

    /// Set a header (name is canonicalized to lowercase).
    pub fn set(&mut self, name: &str, value: impl Into<String>) {
        self.map.insert(name.to_ascii_lowercase(), value.into());
    }

    /// Get a header by case-insensitive name. Already-lowercase names
    /// (every internal caller) look up without allocating.
    pub fn get(&self, name: &str) -> Option<&str> {
        if name.bytes().any(|b| b.is_ascii_uppercase()) {
            self.map.get(&name.to_ascii_lowercase()).map(String::as_str)
        } else {
            self.map.get(name).map(String::as_str)
        }
    }

    /// Remove a header.
    pub fn remove(&mut self, name: &str) -> Option<String> {
        self.map.remove(&name.to_ascii_lowercase())
    }

    /// Iterate over `(name, value)` pairs (names lowercase).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Number of headers.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Raw request target (path + optional `?query`).
    pub target: String,
    /// HTTP minor version (0 or 1; the major is always 1).
    pub minor_version: u8,
    /// Headers.
    pub headers: Headers,
    /// Decoded body (Content-Length and chunked both end up here).
    pub body: Vec<u8>,
}

impl Request {
    /// New request with sensible defaults (HTTP/1.1, no headers).
    pub fn new(method: Method, target: impl Into<String>) -> Self {
        Request {
            method,
            target: target.into(),
            minor_version: 1,
            headers: Headers::new(),
            body: Vec::new(),
        }
    }

    /// The path portion of the target.
    pub fn path(&self) -> &str {
        match self.target.split_once('?') {
            Some((p, _)) => p,
            None => &self.target,
        }
    }

    /// The query portion (empty when absent).
    pub fn query(&self) -> &str {
        match self.target.split_once('?') {
            Some((_, q)) => q,
            None => "",
        }
    }

    /// Does the client want the connection kept open afterwards?
    pub fn wants_keep_alive(&self) -> bool {
        match self.headers.get("connection").map(str::to_ascii_lowercase) {
            Some(c) if c.contains("close") => false,
            Some(c) if c.contains("keep-alive") => true,
            // HTTP/1.1 defaults to persistent connections; 1.0 to close.
            _ => self.minor_version >= 1,
        }
    }
}

/// Response body: in-memory bytes, a streaming reader, or a file segment
/// (the file service hands the network "I/O off to the web server" — §2.3 —
/// which we model by streaming straight from the file handle, or on Linux
/// by `sendfile(2)` without touching userspace at all).
pub enum Body {
    /// Fully buffered body.
    Bytes(Vec<u8>),
    /// Streaming body with a known length (sent with Content-Length, copied
    /// through a fixed buffer).
    Stream {
        /// Byte source.
        reader: Box<dyn Read + Send>,
        /// Exact number of bytes the reader will yield.
        len: u64,
    },
    /// A segment of an open file. Eligible for the zero-copy `sendfile(2)`
    /// path on plaintext Linux sockets; elsewhere it is copied through a
    /// fixed buffer with positioned reads (the file cursor is never moved,
    /// so a parked writer can resume from its saved offset).
    File {
        /// The open file; only `[offset, offset + len)` is sent.
        file: std::fs::File,
        /// First byte of the segment (absolute file position).
        offset: u64,
        /// Segment length in bytes.
        len: u64,
    },
    /// A declared length with no byte source — for `HEAD` responses built
    /// from `stat()` metadata alone. Writing one with a body is a framing
    /// bug and fails rather than under-delivering.
    Sized(u64),
}

impl std::fmt::Debug for Body {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Body::Bytes(b) => write!(f, "Body::Bytes({} bytes)", b.len()),
            Body::Stream { len, .. } => write!(f, "Body::Stream({len} bytes)"),
            Body::File { offset, len, .. } => {
                write!(f, "Body::File({len} bytes @ {offset})")
            }
            Body::Sized(len) => write!(f, "Body::Sized({len} bytes)"),
        }
    }
}

impl Body {
    /// Declared length.
    pub fn len(&self) -> u64 {
        match self {
            Body::Bytes(b) => b.len() as u64,
            Body::Stream { len, .. } => *len,
            Body::File { len, .. } => *len,
            Body::Sized(len) => *len,
        }
    }

    /// Is the body empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An HTTP response.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Headers.
    pub headers: Headers,
    /// Body.
    pub body: Body,
}

impl Response {
    /// Build a response with a byte body and content type.
    pub fn new(status: u16, content_type: &str, body: impl Into<Vec<u8>>) -> Self {
        let mut headers = Headers::new();
        headers.set("content-type", content_type);
        Response {
            status,
            headers,
            body: Body::Bytes(body.into()),
        }
    }

    /// 200 with a body.
    pub fn ok(content_type: &str, body: impl Into<Vec<u8>>) -> Self {
        Response::new(200, content_type, body)
    }

    /// A plain-text error response.
    pub fn error(status: u16, message: &str) -> Self {
        Response::new(
            status,
            "text/plain",
            format!("{status} {}\n{message}\n", reason(status)),
        )
    }

    /// A streaming response of known length.
    pub fn stream(content_type: &str, reader: Box<dyn Read + Send>, len: u64) -> Self {
        let mut headers = Headers::new();
        headers.set("content-type", content_type);
        Response {
            status: 200,
            headers,
            body: Body::Stream { reader, len },
        }
    }

    /// A response serving `[offset, offset + len)` of an open file —
    /// `status` is 200 for whole-file GETs and 206 for ranges (the caller
    /// sets `content-range`).
    pub fn file(
        status: u16,
        content_type: &str,
        file: std::fs::File,
        offset: u64,
        len: u64,
    ) -> Self {
        let mut headers = Headers::new();
        headers.set("content-type", content_type);
        Response {
            status,
            headers,
            body: Body::File { file, offset, len },
        }
    }
}

/// Format a Unix timestamp (seconds) as an IMF-fixdate (RFC 7231 §7.1.1.1),
/// e.g. `Sun, 06 Nov 1994 08:49:37 GMT` — the only date form `Last-Modified`
/// may use. Hand-rolled from the civil-from-days algorithm; no date crate.
pub fn http_date(unix_secs: u64) -> String {
    let days = unix_secs / 86_400;
    let secs_of_day = unix_secs % 86_400;
    // Howard Hinnant's civil_from_days, shifted so the era starts 0000-03-01.
    let z = days as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097); // day of era [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let year = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // March-based month [0, 11]
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { year + 1 } else { year };
    // 1970-01-01 was a Thursday.
    const WEEKDAYS: [&str; 7] = ["Thu", "Fri", "Sat", "Sun", "Mon", "Tue", "Wed"];
    const MONTHS: [&str; 12] = [
        "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
    ];
    format!(
        "{}, {:02} {} {:04} {:02}:{:02}:{:02} GMT",
        WEEKDAYS[(days % 7) as usize],
        day,
        MONTHS[(month - 1) as usize],
        year,
        secs_of_day / 3600,
        (secs_of_day / 60) % 60,
        secs_of_day % 60,
    )
}

/// Canonical reason phrase for a status code.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        204 => "No Content",
        206 => "Partial Content",
        301 => "Moved Permanently",
        302 => "Found",
        304 => "Not Modified",
        400 => "Bad Request",
        401 => "Unauthorized",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        414 => "URI Too Long",
        416 => "Range Not Satisfiable",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_parsing() {
        assert_eq!(Method::parse("GET"), Some(Method::Get));
        assert_eq!(Method::parse("POST"), Some(Method::Post));
        assert_eq!(Method::parse("get"), None); // methods are case-sensitive
        assert_eq!(Method::parse("BREW"), None);
        assert_eq!(Method::Get.as_str(), "GET");
    }

    #[test]
    fn headers_case_insensitive() {
        let mut h = Headers::new();
        h.set("Content-Type", "text/xml");
        assert_eq!(h.get("content-type"), Some("text/xml"));
        assert_eq!(h.get("CONTENT-TYPE"), Some("text/xml"));
        h.set("content-TYPE", "application/json");
        assert_eq!(h.get("Content-Type"), Some("application/json"));
        assert_eq!(h.len(), 1);
        assert_eq!(h.remove("CONTENT-type"), Some("application/json".into()));
        assert!(h.is_empty());
    }

    #[test]
    fn target_splitting() {
        let req = Request::new(Method::Get, "/file/data.root?offset=10&n=20");
        assert_eq!(req.path(), "/file/data.root");
        assert_eq!(req.query(), "offset=10&n=20");
        let req = Request::new(Method::Get, "/plain");
        assert_eq!(req.path(), "/plain");
        assert_eq!(req.query(), "");
    }

    #[test]
    fn keep_alive_defaults() {
        let mut req = Request::new(Method::Get, "/");
        assert!(req.wants_keep_alive()); // 1.1 default
        req.minor_version = 0;
        assert!(!req.wants_keep_alive()); // 1.0 default
        req.headers.set("connection", "keep-alive");
        assert!(req.wants_keep_alive());
        req.minor_version = 1;
        req.headers.set("connection", "close");
        assert!(!req.wants_keep_alive());
    }

    #[test]
    fn body_lengths() {
        assert_eq!(Body::Bytes(vec![1, 2, 3]).len(), 3);
        assert!(Body::Bytes(vec![]).is_empty());
        let stream = Body::Stream {
            reader: Box::new(std::io::empty()),
            len: 42,
        };
        assert_eq!(stream.len(), 42);
    }

    #[test]
    fn response_builders() {
        let r = Response::ok("text/xml", "<a/>");
        assert_eq!(r.status, 200);
        assert_eq!(r.headers.get("content-type"), Some("text/xml"));
        let e = Response::error(404, "no such file");
        assert_eq!(e.status, 404);
        match &e.body {
            Body::Bytes(b) => assert!(String::from_utf8_lossy(b).contains("Not Found")),
            _ => panic!("expected bytes"),
        }
    }

    #[test]
    fn reasons() {
        assert_eq!(reason(200), "OK");
        assert_eq!(reason(206), "Partial Content");
        assert_eq!(reason(404), "Not Found");
        assert_eq!(reason(416), "Range Not Satisfiable");
        assert_eq!(reason(999), "Unknown");
    }

    #[test]
    fn http_date_formatting() {
        // The RFC 7231 example date.
        assert_eq!(http_date(784_111_777), "Sun, 06 Nov 1994 08:49:37 GMT");
        assert_eq!(http_date(0), "Thu, 01 Jan 1970 00:00:00 GMT");
        // Leap-day handling across a century boundary divisible by 400.
        assert_eq!(http_date(951_782_400), "Tue, 29 Feb 2000 00:00:00 GMT");
        assert_eq!(http_date(1_754_352_000), "Tue, 05 Aug 2025 00:00:00 GMT");
    }

    #[test]
    fn file_and_sized_bodies() {
        let f = std::fs::File::open("/dev/null")
            .or_else(|_| std::fs::File::open(std::env::current_exe().unwrap()));
        if let Ok(file) = f {
            let body = Body::File {
                file,
                offset: 10,
                len: 90,
            };
            assert_eq!(body.len(), 90);
            assert!(format!("{body:?}").contains("90 bytes @ 10"));
        }
        assert_eq!(Body::Sized(123).len(), 123);
        assert!(!Body::Sized(123).is_empty());
    }
}
