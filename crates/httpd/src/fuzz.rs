//! Shared fuzz entry point for the HTTP request parser.
//!
//! Same contract as `clarens_wire::fuzz`: raw attacker bytes in, and the
//! parser must reject or accept them gracefully — no panic, no unbounded
//! allocation. Driven by the cargo-fuzz target in `fuzz/fuzz_targets/`,
//! the in-tree `repro fuzz` harness, and a bounded pass in `cargo test`.

use std::io::BufReader;

use crate::parse::read_request;

/// Body cap used while fuzzing — large enough to exercise the
/// Content-Length path, small enough that a hostile header cannot make
/// the harness itself allocate gigabytes.
const FUZZ_MAX_BODY: usize = 1 << 20;

/// Feed one connection's worth of bytes to the request parser. Anything it
/// accepts must expose self-consistent accessors (path/query never panic).
pub fn http_request(data: &[u8]) {
    let mut reader = BufReader::new(data);
    if let Ok(request) = read_request(&mut reader, FUZZ_MAX_BODY) {
        // Exercise the derived accessors on accepted requests.
        let _ = request.path();
        let _ = request.query();
        let _ = request.headers.get("content-type");
        assert!(
            request.body.len() <= FUZZ_MAX_BODY,
            "parser exceeded its body cap"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_accepts_valid_and_garbage_inputs() {
        http_request(b"GET /clarens?x=1 HTTP/1.1\r\nHost: h\r\n\r\n");
        http_request(b"POST /clarens HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc");
        http_request(b"");
        http_request(&[0xff; 128]);
        http_request(b"POST / HTTP/1.1\r\nContent-Length: 99999999999999999999\r\n\r\n");
    }
}
