//! Zero-copy file-to-socket transfer via `sendfile(2)`.
//!
//! The paper's bulk-data claim is that Clarens "hands network I/O off to
//! the web server" (§2.3); on Linux we can go one step further and hand it
//! to the kernel — `sendfile` moves file pages to the socket without ever
//! touching a userspace buffer. Raw `extern "C"` declaration in the same
//! style as the epoll bindings in `poller.rs`: std already links the
//! platform libc, so no crate dependency is needed.

use std::io;

#[cfg(target_os = "linux")]
mod sys {
    use std::os::raw::c_int;

    extern "C" {
        // ssize_t sendfile(int out_fd, int in_fd, off_t *offset, size_t count);
        pub fn sendfile(out_fd: c_int, in_fd: c_int, offset: *mut i64, count: usize) -> isize;
    }
}

/// Is the zero-copy path compiled in on this target?
pub fn available() -> bool {
    cfg!(target_os = "linux")
}

/// Transfer up to `count` bytes of `file_fd` starting at `*offset` into
/// `sock_fd`, advancing `*offset` by the bytes sent. The file's own cursor
/// is never moved (the offset-pointer form), so a parked writer can resume
/// from its saved position.
///
/// Returns `Ok(0)` at end-of-file (the caller treats a premature EOF as a
/// truncated body), `Err(WouldBlock)` when a nonblocking socket's buffer
/// is full, and `Err(Unsupported)` when the kernel refuses this fd pair
/// (EINVAL/ENOSYS — e.g. an exotic filesystem) so the caller can fall back
/// to the buffered copy loop.
#[cfg(target_os = "linux")]
pub fn send_file(sock_fd: i32, file_fd: i32, offset: &mut u64, count: usize) -> io::Result<usize> {
    let mut off = *offset as i64;
    let rc = unsafe { sys::sendfile(sock_fd, file_fd, &mut off, count) };
    if rc < 0 {
        let err = io::Error::last_os_error();
        const EINVAL: i32 = 22;
        const ENOSYS: i32 = 38;
        return Err(match err.raw_os_error() {
            Some(EINVAL) | Some(ENOSYS) => io::Error::new(io::ErrorKind::Unsupported, err),
            _ => err, // EAGAIN surfaces as ErrorKind::WouldBlock
        });
    }
    *offset = off as u64;
    Ok(rc as usize)
}

/// Portable stub: report the path unsupported so callers use the buffered
/// fallback.
#[cfg(not(target_os = "linux"))]
pub fn send_file(
    _sock_fd: i32,
    _file_fd: i32,
    _offset: &mut u64,
    _count: usize,
) -> io::Result<usize> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "sendfile(2) is only wired up on Linux",
    ))
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::Read;
    use std::os::unix::io::AsRawFd;

    #[test]
    fn sendfile_moves_bytes_and_offset() {
        let dir = std::env::temp_dir().join(format!("clarens-zerocopy-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("payload.bin");
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        std::fs::write(&path, &data).unwrap();
        let file = std::fs::File::open(&path).unwrap();

        // A loopback socket pair: sendfile needs a real socket, a pipe of
        // Vec<u8> won't do.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let tx = std::net::TcpStream::connect(addr).unwrap();
        let (mut rx, _) = listener.accept().unwrap();

        let mut offset = 10u64;
        let mut sent = 0usize;
        let want = data.len() - 10;
        let reader = std::thread::spawn(move || {
            let mut got = Vec::new();
            rx.read_to_end(&mut got).unwrap();
            got
        });
        while sent < want {
            let n = send_file(tx.as_raw_fd(), file.as_raw_fd(), &mut offset, want - sent)
                .expect("sendfile on loopback");
            assert!(n > 0);
            sent += n;
        }
        assert_eq!(offset, data.len() as u64);
        drop(tx);
        assert_eq!(reader.join().unwrap(), &data[10..]);
        // The file's own cursor never moved.
        let mut first = [0u8; 1];
        assert_eq!(read_file_cursor(&file, &mut first), 1);
        assert_eq!(first[0], data[0]);
    }

    fn read_file_cursor(mut file: &std::fs::File, buf: &mut [u8]) -> usize {
        file.read(buf).unwrap()
    }
}
