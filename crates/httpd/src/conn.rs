//! The per-connection state machine for the parked (event-driven) path.
//!
//! In the classic path a worker owns a connection for its whole life and
//! blocks in `read()` between keep-alive requests. Here the connection is
//! an explicit object — socket, accumulated input bytes, request count,
//! budget/shutdown guards — that shuttles between a worker (while there is
//! CPU work to do) and the poller (while waiting for bytes). A worker
//! *drives* the connection: parse whatever is buffered, serve complete
//! requests, read more without blocking, and hand the connection back to
//! the poller the moment the socket runs dry.
//!
//! Invariant: a connection is only ever parked when its input buffer holds
//! no complete request (either empty or a strict prefix of one), so a
//! readiness event is always the correct wake condition and pipelined
//! requests can never stall in the buffer.

use std::io::{self, Cursor, IoSlice, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::Duration;

use clarens_telemetry::{Phase, RequestTrace};

use crate::parse::{
    encode_head, read_file_at, read_request_pooled, truncated, write_response_pooled, ParseError,
    COPY_BUFFER,
};
use crate::poller;
use crate::scratch::Scratch;
use crate::server::{
    classify_io_error, BudgetGuard, Handler, InFlightGuard, LiveGuard, WorkerShared,
};
use crate::types::{Body, Method, Response};

/// Bytes pulled off the socket per `read` call while filling.
const READ_CHUNK: usize = 16 * 1024;
/// Cap on bytes absorbed in one fill burst before re-parsing, so one
/// fire-hose peer cannot monopolize a worker between parse attempts.
const MAX_FILL_BURST: usize = 256 * 1024;
/// Cap on coalesced response bytes staged for pipelined requests before a
/// flush is forced, so a client that never stops pipelining cannot grow
/// the staging buffer without bound.
const MAX_STAGED_BYTES: usize = 64 * 1024;

/// One plaintext keep-alive connection on the event-driven path. Owns the
/// (non-blocking) socket and every piece of per-connection state that must
/// survive a park/resume cycle.
pub(crate) struct Conn {
    /// The non-blocking socket.
    pub(crate) sock: TcpStream,
    /// Bytes read but not yet consumed by the parser (at most a strict
    /// prefix of one request whenever the connection parks).
    pub(crate) inbuf: Vec<u8>,
    /// Requests served on this connection (drives `keepalive_reuse`).
    pub(crate) served: u64,
    /// Poller token; unique per connection for the server's lifetime.
    pub(crate) id: u64,
    /// Whether the socket has ever been registered with the poller (first
    /// park registers, later parks re-arm).
    pub(crate) registered: bool,
    /// A response that hit `EWOULDBLOCK` mid-write: the connection parks
    /// with write interest and resumes from the saved cursor (and in-flight
    /// sendfile offset) when the socket drains, instead of pinning a worker.
    pub(crate) pending_write: Option<WriteState>,
    /// Connection-budget slot, released when the connection drops.
    pub(crate) _budget: Option<BudgetGuard>,
    /// Shutdown registration: force-closed by `HttpServer::shutdown` so
    /// in-flight writes fail fast.
    pub(crate) _live: Option<LiveGuard>,
}

/// What a worker does with a connection after driving it as far as the
/// buffered bytes and the socket allow.
///
/// `Park` carries the whole `Conn` by value on purpose: parking happens
/// once per idle cycle on the hot path, and boxing the variant would buy
/// lint silence with an allocation per park (the allocations-per-request
/// gate in `repro quick` exists to keep exactly this kind of cost out).
#[allow(clippy::large_enum_variant)]
pub(crate) enum Disposition {
    /// Waiting for more bytes: hand the connection to the poller.
    Park(Box<Conn>),
    /// Finished (clean close, error, or shutdown): the socket closes when
    /// the connection drops.
    Closed,
}

enum Parsed {
    /// A full request plus the number of input bytes it consumed.
    Complete(crate::types::Request, usize),
    /// The buffer holds a strict prefix of a request; need more bytes.
    Incomplete,
    /// Protocol violation: answer with this status and close.
    Fail(u16, String),
}

enum Fill {
    /// New bytes were appended; try parsing again.
    Progress,
    /// Nothing available without blocking; park.
    Park,
    /// Peer closed its end.
    Eof,
    /// Transport error.
    Err(io::Error),
}

/// A response mid-flight on a nonblocking socket: everything needed to
/// resume after the socket's send buffer drains. Holds the in-flight guard
/// so graceful shutdown waits (bounded by `drain_timeout`) for parked
/// writers just as it does for running handlers.
pub(crate) struct WriteState {
    /// Encoded status line + headers (scratch-pooled; recycled at completion).
    head: Vec<u8>,
    /// Bytes of `head` already on the socket.
    head_pos: usize,
    /// The body and its cursor.
    body: PendingBody,
    /// Whether the connection survives this response.
    pub(crate) keep_alive: bool,
    /// Total bytes written so far (head + body), for `bytes_out`.
    written: u64,
    /// Subset of `written` that went through `sendfile(2)`.
    sendfile: u64,
    /// Keeps the response(s) inside the shutdown drain window — one guard
    /// per request for a coalesced batch of pipelined responses.
    _in_flight: Vec<InFlightGuard>,
}

enum PendingBody {
    /// Nothing (left) to send beyond the head: HEAD, empty, or metadata-only.
    None,
    /// In-memory body with a cursor.
    Bytes { buf: Vec<u8>, pos: usize },
    /// File segment `[pos, end)`. `zero_copy` selects `sendfile(2)`; the
    /// chunk fields stage buffered-fallback bytes that were read from the
    /// file but not yet accepted by the socket.
    File {
        file: std::fs::File,
        pos: u64,
        end: u64,
        zero_copy: bool,
        chunk: Vec<u8>,
        chunk_pos: usize,
        chunk_len: usize,
    },
    /// Opaque reader with `remaining` bytes promised; `chunk` stages the
    /// bytes between reader and socket across parks.
    Stream {
        reader: Box<dyn Read + Send>,
        remaining: u64,
        chunk: Vec<u8>,
        chunk_pos: usize,
        chunk_len: usize,
    },
}

impl WriteState {
    /// Encode the response head and capture the body with a zeroed cursor.
    /// Buffers come from `scratch` so the steady state allocates nothing.
    fn new(
        response: Response,
        keep_alive: bool,
        head_only: bool,
        zero_copy: bool,
        in_flight: Option<InFlightGuard>,
        scratch: &mut Scratch,
    ) -> io::Result<WriteState> {
        let mut head = scratch.take();
        encode_head(&response, keep_alive, &mut head)?;
        let body = if head_only || response.body.is_empty() {
            if let Body::Bytes(buf) = response.body {
                scratch.recycle(buf);
            }
            PendingBody::None
        } else {
            match response.body {
                Body::Bytes(buf) => PendingBody::Bytes { buf, pos: 0 },
                Body::Sized(_) => {
                    scratch.recycle(head);
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        "Body::Sized has no bytes to send",
                    ));
                }
                Body::File { file, offset, len } => PendingBody::File {
                    file,
                    pos: offset,
                    end: offset + len,
                    zero_copy,
                    chunk: Vec::new(),
                    chunk_pos: 0,
                    chunk_len: 0,
                },
                Body::Stream { reader, len } => PendingBody::Stream {
                    reader,
                    remaining: len,
                    chunk: scratch.take(),
                    chunk_pos: 0,
                    chunk_len: 0,
                },
            }
        };
        Ok(WriteState {
            head,
            head_pos: 0,
            body,
            keep_alive,
            written: 0,
            sendfile: 0,
            _in_flight: in_flight.into_iter().collect(),
        })
    }

    /// Wrap a staging buffer of already-encoded pipelined responses as a
    /// write in flight: all head, no body, connection stays open.
    fn staged(head: Vec<u8>, in_flight: Vec<InFlightGuard>) -> WriteState {
        WriteState {
            head,
            head_pos: 0,
            body: PendingBody::None,
            keep_alive: true,
            written: 0,
            sendfile: 0,
            _in_flight: in_flight,
        }
    }

    /// Push bytes at the socket until the response completes (`Ok(true)`),
    /// the socket pushes back (`Ok(false)` — park with write interest), or
    /// the transfer fails. Never blocks the calling thread.
    fn advance(&mut self, sock: &TcpStream) -> io::Result<bool> {
        loop {
            // Head first — vectored with an in-memory body so small
            // responses still leave in one syscall.
            if self.head_pos < self.head.len() {
                let head_rest = &self.head[self.head_pos..];
                let wrote = match &self.body {
                    PendingBody::Bytes { buf, pos } => (&mut &*sock)
                        .write_vectored(&[IoSlice::new(head_rest), IoSlice::new(&buf[*pos..])]),
                    _ => (&mut &*sock).write(head_rest),
                };
                match wrote {
                    Ok(0) => return Err(write_zero()),
                    Ok(n) => {
                        let from_head = n.min(head_rest.len());
                        self.head_pos += from_head;
                        self.written += n as u64;
                        if n > from_head {
                            if let PendingBody::Bytes { pos, .. } = &mut self.body {
                                *pos += n - from_head;
                            }
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
                continue;
            }
            match &mut self.body {
                PendingBody::None => return Ok(true),
                PendingBody::Bytes { buf, pos } => {
                    if *pos >= buf.len() {
                        return Ok(true);
                    }
                    match (&mut &*sock).write(&buf[*pos..]) {
                        Ok(0) => return Err(write_zero()),
                        Ok(n) => {
                            *pos += n;
                            self.written += n as u64;
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(e) => return Err(e),
                    }
                }
                PendingBody::File {
                    file,
                    pos,
                    end,
                    zero_copy,
                    chunk,
                    chunk_pos,
                    chunk_len,
                } => {
                    // Staged fallback bytes drain before anything else (they
                    // are already consumed from the file).
                    if *chunk_pos < *chunk_len {
                        match (&mut &*sock).write(&chunk[*chunk_pos..*chunk_len]) {
                            Ok(0) => return Err(write_zero()),
                            Ok(n) => {
                                *chunk_pos += n;
                                self.written += n as u64;
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                            Err(e) => return Err(e),
                        }
                        continue;
                    }
                    if *pos >= *end {
                        return Ok(true);
                    }
                    #[cfg(unix)]
                    if *zero_copy && crate::zerocopy::available() {
                        use std::os::unix::io::AsRawFd;
                        let want = (*end - *pos) as usize;
                        match crate::zerocopy::send_file(raw_fd(sock), file.as_raw_fd(), pos, want)
                        {
                            Ok(0) => return Err(truncated(*end - *pos)),
                            Ok(n) => {
                                self.written += n as u64;
                                self.sendfile += n as u64;
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                            Err(e) if e.kind() == io::ErrorKind::Unsupported => {
                                // Kernel refused this fd pair: finish the
                                // segment through the buffered loop below.
                                *zero_copy = false;
                            }
                            Err(e) => return Err(e),
                        }
                        continue;
                    }
                    // Buffered fallback: stage the next chunk via a
                    // positioned read (the cursor stays parked-safe).
                    if chunk.len() < COPY_BUFFER {
                        chunk.resize(COPY_BUFFER, 0);
                    }
                    let want = ((*end - *pos) as usize).min(chunk.len());
                    match read_file_at(file, &mut chunk[..want], *pos) {
                        Ok(0) => return Err(truncated(*end - *pos)),
                        Ok(n) => {
                            *pos += n as u64;
                            *chunk_pos = 0;
                            *chunk_len = n;
                        }
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(e) => return Err(e),
                    }
                }
                PendingBody::Stream {
                    reader,
                    remaining,
                    chunk,
                    chunk_pos,
                    chunk_len,
                } => {
                    if *chunk_pos < *chunk_len {
                        match (&mut &*sock).write(&chunk[*chunk_pos..*chunk_len]) {
                            Ok(0) => return Err(write_zero()),
                            Ok(n) => {
                                *chunk_pos += n;
                                self.written += n as u64;
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                            Err(e) => return Err(e),
                        }
                        continue;
                    }
                    if *remaining == 0 {
                        return Ok(true);
                    }
                    if chunk.len() < COPY_BUFFER {
                        chunk.resize(COPY_BUFFER, 0);
                    }
                    let want = (*remaining as usize).min(chunk.len());
                    match reader.read(&mut chunk[..want]) {
                        Ok(0) => return Err(truncated(*remaining)),
                        Ok(n) => {
                            *remaining -= n as u64;
                            *chunk_pos = 0;
                            *chunk_len = n;
                        }
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(e) => return Err(e),
                    }
                }
            }
        }
    }

    /// Byte accounting for telemetry: `(total written, via sendfile)`.
    fn accounted(&self) -> (u64, u64) {
        (self.written, self.sendfile)
    }

    /// Return pooled buffers to the worker's arena once the response is
    /// done (possibly a different worker than the one that started it).
    fn recycle_into(self, scratch: &mut Scratch) {
        scratch.recycle(self.head);
        match self.body {
            PendingBody::Bytes { buf, .. } => scratch.recycle(buf),
            PendingBody::File { chunk, .. } | PendingBody::Stream { chunk, .. } => {
                scratch.recycle(chunk)
            }
            PendingBody::None => {}
        }
    }
}

fn write_zero() -> io::Error {
    io::Error::new(io::ErrorKind::WriteZero, "failed to write whole response")
}

/// How one call to [`WriteState::advance`] left the response.
enum WriteProgress {
    /// Fully written; connection continues (or closes per keep-alive).
    Done(WriteState),
    /// Socket full; park with write interest and resume later.
    Parked,
    /// Transport or framing failure; close.
    Failed(io::Error),
}

/// Drive `conn`'s pending response forward. On `Parked` the state is back
/// inside `conn` with its cursors saved.
fn advance_pending(conn: &mut Conn, mut state: WriteState) -> WriteProgress {
    match state.advance(&conn.sock) {
        Ok(true) => WriteProgress::Done(state),
        Ok(false) => {
            conn.pending_write = Some(state);
            WriteProgress::Parked
        }
        Err(error) => WriteProgress::Failed(error),
    }
}

/// How a staged-response flush left the connection.
enum FlushProgress {
    /// Staging buffer fully on the socket (or it was empty).
    Done,
    /// Socket full mid-flush; the remainder is parked as a pending write.
    Parked,
    /// Transport failure; close.
    Failed(io::Error),
}

/// Append one response's head + in-memory body to the staging buffer
/// instead of writing it to the socket. Only called for keep-alive
/// responses with `Body::Bytes` bodies (the RPC fast path).
fn stage_response(response: Response, outq: &mut Vec<u8>, scratch: &mut Scratch) -> io::Result<()> {
    encode_head(&response, true, outq)?;
    if let Body::Bytes(buf) = response.body {
        outq.extend_from_slice(&buf);
        scratch.recycle(buf);
    }
    Ok(())
}

/// Non-blocking flush of the staging buffer through the parked-write
/// machinery: on `Parked` the remainder (guards included) rides in
/// `conn.pending_write` and the poller waits for writability.
fn flush_staged<H: Handler>(
    conn: &mut Conn,
    outq: &mut Vec<u8>,
    guards: &mut Vec<InFlightGuard>,
    shared: &WorkerShared<H>,
    scratch: &mut Scratch,
) -> FlushProgress {
    if outq.is_empty() {
        guards.clear();
        return FlushProgress::Done;
    }
    let state = WriteState::staged(std::mem::take(outq), std::mem::take(guards));
    match advance_pending(conn, state) {
        WriteProgress::Done(state) => {
            let (total, _) = state.accounted();
            if let Some(t) = &shared.telemetry {
                t.http.bytes_out.add(total);
            }
            state.recycle_into(scratch);
            FlushProgress::Done
        }
        WriteProgress::Parked => FlushProgress::Parked,
        WriteProgress::Failed(error) => FlushProgress::Failed(error),
    }
}

/// Blocking-ish flush for the paths that cannot park (a non-coalescible
/// response queued behind staged ones, protocol failure, shutdown):
/// bounded by the read timeout, like any other blocking response write.
fn flush_staged_blocking<H: Handler>(
    conn: &Conn,
    outq: &mut Vec<u8>,
    guards: &mut Vec<InFlightGuard>,
    shared: &WorkerShared<H>,
) -> io::Result<()> {
    let result = if outq.is_empty() {
        Ok(())
    } else {
        let mut writer = NonblockingWriter::new(&conn.sock, shared.read_timeout);
        let result = writer.write_all(outq);
        if result.is_ok() {
            if let Some(t) = &shared.telemetry {
                t.http.bytes_out.add(outq.len() as u64);
            }
        }
        result
    };
    outq.clear();
    guards.clear();
    result
}

/// Drive `conn` until it parks, closes, or fails. This is the event-path
/// sibling of `serve_stream`: identical request accounting, identical
/// response bytes (both funnel through `write_response_pooled`), but reads
/// never block — they either make progress or return the connection to the
/// poller. Pipelined requests get their responses *coalesced*: while the
/// input buffer still holds more requests, each in-memory response is
/// staged instead of written, and the whole batch leaves in one syscall
/// when the buffer runs dry — one peer wakeup per batch, not per response.
pub(crate) fn drive<H: Handler>(
    mut conn: Box<Conn>,
    shared: &WorkerShared<H>,
    scratch: &mut Scratch,
) -> Disposition {
    // A response parked mid-write resumes before anything else — even
    // during shutdown, so graceful drain can finish it.
    if let Some(state) = conn.pending_write.take() {
        match advance_pending(&mut conn, state) {
            WriteProgress::Done(state) => {
                let (total, via_sendfile) = state.accounted();
                if let Some(t) = &shared.telemetry {
                    t.http.bytes_out.add(total);
                    t.http.bytes_sendfile.add(via_sendfile);
                }
                let keep_alive = state.keep_alive;
                state.recycle_into(scratch);
                if !keep_alive {
                    return Disposition::Closed;
                }
            }
            WriteProgress::Parked => return Disposition::Park(conn),
            WriteProgress::Failed(error) => {
                classify_io_error(&error, shared);
                return Disposition::Closed;
            }
        }
    }
    // Staging buffer for coalesced pipelined responses. Lazily grown: the
    // non-pipelined steady state never touches it, and a pipelined batch
    // amortizes its one allocation over the whole batch.
    let mut outq: Vec<u8> = Vec::new();
    let mut guards: Vec<InFlightGuard> = Vec::new();
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            let _ = flush_staged_blocking(&conn, &mut outq, &mut guards, shared);
            return Disposition::Closed;
        }
        let mut trace = match &shared.telemetry {
            Some(t) => t.begin_request(),
            None => RequestTrace::disabled(),
        };
        let reuses_before = scratch.reuses();
        let attempt = trace.span(Phase::Parse, || {
            try_parse(&conn.inbuf, shared.max_body, scratch)
        });
        match attempt {
            Parsed::Incomplete => {
                // Not a request yet: the pipeline (if any) has run dry, so
                // the staged responses must leave before this connection
                // waits on its peer — which is almost certainly blocked on
                // exactly those responses.
                match flush_staged(&mut conn, &mut outq, &mut guards, shared, scratch) {
                    FlushProgress::Done => {}
                    FlushProgress::Parked => return Disposition::Park(conn),
                    FlushProgress::Failed(error) => {
                        classify_io_error(&error, shared);
                        return Disposition::Closed;
                    }
                }
                // The trace never finishes and records nothing. Pull more
                // bytes or park.
                match fill(&mut conn, scratch) {
                    Fill::Progress => continue,
                    Fill::Park => return Disposition::Park(conn),
                    Fill::Eof => {
                        if conn.inbuf.is_empty() {
                            // EOF exactly at a message boundary: clean close.
                        } else if let Some(t) = &shared.telemetry {
                            // Peer abandoned a half-sent request.
                            t.http.peer_resets.inc();
                        }
                        return Disposition::Closed;
                    }
                    Fill::Err(error) => {
                        classify_io_error(&error, shared);
                        return Disposition::Closed;
                    }
                }
            }
            Parsed::Fail(status, message) => {
                // Earlier pipelined responses still go out before the error.
                if flush_staged_blocking(&conn, &mut outq, &mut guards, shared).is_err() {
                    return Disposition::Closed;
                }
                shared.stats.requests.fetch_add(1, Ordering::Relaxed);
                let response = Response::error(status, &message);
                if let Some(t) = &shared.telemetry {
                    trace.status = status;
                    t.finish_request(&trace, (shared.now_fn)());
                }
                let mut writer = NonblockingWriter::new(&conn.sock, shared.read_timeout);
                let _ = write_response_pooled(&mut writer, response, false, false, scratch);
                return Disposition::Closed;
            }
            Parsed::Complete(request, consumed) => {
                conn.inbuf.drain(..consumed);
                // Parsed and about to be handled: in flight until the
                // response write finishes (shutdown drains these) — the
                // guard rides inside the write state across parks.
                let in_flight = InFlightGuard::enter(&shared.in_flight);
                let keep_alive = request.wants_keep_alive() && !shared.stop.load(Ordering::SeqCst);
                let head_only = request.method == Method::Head;
                shared.stats.requests.fetch_add(1, Ordering::Relaxed);
                if conn.served > 0 {
                    if let Some(t) = &shared.telemetry {
                        t.http.keepalive_reuse.inc();
                    }
                }
                conn.served += 1;

                let response = shared
                    .handler
                    .handle_pooled(request, None, &mut trace, scratch);
                if response.status >= 500 {
                    shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                }
                trace.status = response.status;
                // Coalescing fast path: more requests are already buffered
                // and this response is plain bytes, so stage it and keep
                // parsing instead of waking the peer per response.
                if keep_alive
                    && !head_only
                    && !conn.inbuf.is_empty()
                    && outq.len() < MAX_STAGED_BYTES
                    && matches!(response.body, Body::Bytes(_))
                {
                    let staged = trace.span(Phase::Write, || {
                        clarens_faults::check_io(clarens_faults::sites::HTTPD_WRITE)
                            .and_then(|()| stage_response(response, &mut outq, scratch))
                    });
                    if let Some(t) = &shared.telemetry {
                        t.http
                            .buffer_pool_reuse
                            .add(scratch.reuses().wrapping_sub(reuses_before));
                        t.finish_request(&trace, (shared.now_fn)());
                    }
                    match staged {
                        Ok(()) => {
                            guards.push(in_flight);
                            if !shared.buffer_pool {
                                scratch.purge();
                            }
                            continue;
                        }
                        Err(error) => {
                            classify_io_error(&error, shared);
                            return Disposition::Closed;
                        }
                    }
                }
                // Not coalescible (file/stream body, HEAD, close, or the
                // staging cap): anything staged leaves first, in order.
                if flush_staged_blocking(&conn, &mut outq, &mut guards, shared).is_err() {
                    return Disposition::Closed;
                }
                let progress = trace.span(Phase::Write, || {
                    match clarens_faults::check_io(clarens_faults::sites::HTTPD_WRITE).and_then(
                        |()| {
                            WriteState::new(
                                response,
                                keep_alive,
                                head_only,
                                shared.zero_copy,
                                Some(in_flight),
                                scratch,
                            )
                        },
                    ) {
                        Ok(state) => advance_pending(&mut conn, state),
                        Err(error) => WriteProgress::Failed(error),
                    }
                });
                if let Some(t) = &shared.telemetry {
                    if let WriteProgress::Done(state) = &progress {
                        let (total, via_sendfile) = state.accounted();
                        t.http.bytes_out.add(total);
                        t.http.bytes_sendfile.add(via_sendfile);
                    }
                    t.http
                        .buffer_pool_reuse
                        .add(scratch.reuses().wrapping_sub(reuses_before));
                    t.finish_request(&trace, (shared.now_fn)());
                }
                match progress {
                    WriteProgress::Done(state) => {
                        state.recycle_into(scratch);
                    }
                    WriteProgress::Parked => {
                        // Socket full mid-response: the state (cursor and
                        // sendfile offset included) is saved on the
                        // connection; the poller waits for EPOLLOUT.
                        return Disposition::Park(conn);
                    }
                    WriteProgress::Failed(error) => {
                        classify_io_error(&error, shared);
                        return Disposition::Closed;
                    }
                }
                if !shared.buffer_pool {
                    scratch.purge();
                }
                if !keep_alive {
                    return Disposition::Closed;
                }
            }
        }
    }
}

/// Try to parse one request out of the accumulated bytes. Runs the exact
/// parser the blocking path uses, over an in-memory cursor: running out of
/// buffered bytes mid-message surfaces as `UnexpectedEof`, which here means
/// "incomplete", not "error".
fn try_parse(inbuf: &[u8], max_body: usize, scratch: &mut Scratch) -> Parsed {
    if inbuf.is_empty() {
        return Parsed::Incomplete;
    }
    let mut cursor = Cursor::new(inbuf);
    match read_request_pooled(&mut cursor, max_body, scratch) {
        Ok(request) => Parsed::Complete(request, cursor.position() as usize),
        Err(ParseError::Eof) | Err(ParseError::Io(_)) => Parsed::Incomplete,
        Err(ParseError::Protocol(status, message)) => Parsed::Fail(status, message),
    }
}

/// Pull whatever the socket has without blocking.
fn fill(conn: &mut Conn, scratch: &mut Scratch) -> Fill {
    if let Err(e) = clarens_faults::check_io(clarens_faults::sites::HTTPD_READ) {
        return Fill::Err(e);
    }
    let mut chunk = scratch.take();
    chunk.resize(READ_CHUNK, 0);
    let mut appended = 0usize;
    let outcome = loop {
        match (&conn.sock).read(&mut chunk) {
            Ok(0) => break Fill::Eof,
            Ok(n) => {
                conn.inbuf.extend_from_slice(&chunk[..n]);
                appended += n;
                if n < chunk.len() || appended >= MAX_FILL_BURST {
                    break Fill::Progress;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                break if appended > 0 {
                    Fill::Progress
                } else {
                    Fill::Park
                };
            }
            Err(e) => break Fill::Err(e),
        }
    };
    scratch.recycle(chunk);
    outcome
}

/// `Write` adapter over a non-blocking socket: on `WouldBlock` it waits for
/// writability (bounded by `timeout`) and retries, so the shared response
/// serializer behaves exactly as it does on a blocking socket — including
/// the vectored head+body write.
pub(crate) struct NonblockingWriter<'a> {
    sock: &'a TcpStream,
    timeout: Duration,
}

impl<'a> NonblockingWriter<'a> {
    pub(crate) fn new(sock: &'a TcpStream, timeout: Duration) -> NonblockingWriter<'a> {
        NonblockingWriter { sock, timeout }
    }

    fn wait_writable(&self) -> io::Result<()> {
        wait_writable(self.sock, self.timeout)
    }
}

#[cfg(unix)]
fn wait_writable(sock: &TcpStream, timeout: Duration) -> io::Result<()> {
    use std::os::unix::io::AsRawFd;
    poller::wait_writable(sock.as_raw_fd(), timeout)
}

#[cfg(not(unix))]
fn wait_writable(_sock: &TcpStream, _timeout: Duration) -> io::Result<()> {
    // The event path never runs here: Poller construction fails on
    // non-Unix hosts and the server stays on the blocking path.
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "readiness polling unsupported on this platform",
    ))
}

impl Write for NonblockingWriter<'_> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        loop {
            match (&mut &*self.sock).write(buf) {
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => self.wait_writable()?,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                other => return other,
            }
        }
    }

    fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
        loop {
            match (&mut &*self.sock).write_vectored(bufs) {
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => self.wait_writable()?,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                other => return other,
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        // TCP sockets have no userspace buffer to flush.
        Ok(())
    }
}

/// Raw fd of a socket, for poller registration.
#[cfg(unix)]
pub(crate) fn raw_fd(sock: &TcpStream) -> poller::RawFd {
    use std::os::unix::io::AsRawFd;
    sock.as_raw_fd()
}

#[cfg(not(unix))]
pub(crate) fn raw_fd(_sock: &TcpStream) -> poller::RawFd {
    -1
}

/// Raw fd of a listener, for the acceptor's wakeable poll loop.
#[cfg(unix)]
pub(crate) fn raw_fd_listener(listener: &std::net::TcpListener) -> poller::RawFd {
    use std::os::unix::io::AsRawFd;
    listener.as_raw_fd()
}

#[cfg(not(unix))]
pub(crate) fn raw_fd_listener(_listener: &std::net::TcpListener) -> poller::RawFd {
    -1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_parse_states() {
        let mut scratch = Scratch::new();
        // Empty and prefix buffers are incomplete, not errors.
        assert!(matches!(
            try_parse(b"", 1024, &mut scratch),
            Parsed::Incomplete
        ));
        assert!(matches!(
            try_parse(b"GET / HT", 1024, &mut scratch),
            Parsed::Incomplete
        ));
        assert!(matches!(
            try_parse(b"GET / HTTP/1.1\r\nHost: h\r\n", 1024, &mut scratch),
            Parsed::Incomplete
        ));
        // Partial body: still incomplete.
        assert!(matches!(
            try_parse(
                b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc",
                1024,
                &mut scratch
            ),
            Parsed::Incomplete
        ));
        // A complete request reports exactly the bytes it consumed.
        let wire = b"GET /a HTTP/1.1\r\nHost: h\r\n\r\nGET /b";
        match try_parse(wire, 1024, &mut scratch) {
            Parsed::Complete(request, consumed) => {
                assert_eq!(request.target, "/a");
                assert_eq!(&wire[consumed..], b"GET /b");
            }
            _ => panic!("expected a complete request"),
        }
        // Garbage is a protocol failure.
        assert!(matches!(
            try_parse(b"NONSENSE\r\n\r\n", 1024, &mut scratch),
            Parsed::Fail(400, _)
        ));
        // An oversized declared body fails fast without needing the bytes.
        assert!(matches!(
            try_parse(
                b"POST / HTTP/1.1\r\nContent-Length: 99999\r\n\r\n",
                1024,
                &mut scratch
            ),
            Parsed::Fail(413, _)
        ));
    }
}
