//! The per-connection state machine for the parked (event-driven) path.
//!
//! In the classic path a worker owns a connection for its whole life and
//! blocks in `read()` between keep-alive requests. Here the connection is
//! an explicit object — socket, accumulated input bytes, request count,
//! budget/shutdown guards — that shuttles between a worker (while there is
//! CPU work to do) and the poller (while waiting for bytes). A worker
//! *drives* the connection: parse whatever is buffered, serve complete
//! requests, read more without blocking, and hand the connection back to
//! the poller the moment the socket runs dry.
//!
//! Invariant: a connection is only ever parked when its input buffer holds
//! no complete request (either empty or a strict prefix of one), so a
//! readiness event is always the correct wake condition and pipelined
//! requests can never stall in the buffer.

use std::io::{self, Cursor, IoSlice, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::Duration;

use clarens_telemetry::{Phase, RequestTrace};

use crate::parse::{read_request_pooled, write_response_pooled, ParseError};
use crate::poller;
use crate::scratch::Scratch;
use crate::server::{classify_io_error, BudgetGuard, Handler, LiveGuard, WorkerShared};
use crate::types::{Method, Response};

/// Bytes pulled off the socket per `read` call while filling.
const READ_CHUNK: usize = 16 * 1024;
/// Cap on bytes absorbed in one fill burst before re-parsing, so one
/// fire-hose peer cannot monopolize a worker between parse attempts.
const MAX_FILL_BURST: usize = 256 * 1024;

/// One plaintext keep-alive connection on the event-driven path. Owns the
/// (non-blocking) socket and every piece of per-connection state that must
/// survive a park/resume cycle.
pub(crate) struct Conn {
    /// The non-blocking socket.
    pub(crate) sock: TcpStream,
    /// Bytes read but not yet consumed by the parser (at most a strict
    /// prefix of one request whenever the connection parks).
    pub(crate) inbuf: Vec<u8>,
    /// Requests served on this connection (drives `keepalive_reuse`).
    pub(crate) served: u64,
    /// Poller token; unique per connection for the server's lifetime.
    pub(crate) id: u64,
    /// Whether the socket has ever been registered with the poller (first
    /// park registers, later parks re-arm).
    pub(crate) registered: bool,
    /// Connection-budget slot, released when the connection drops.
    pub(crate) _budget: Option<BudgetGuard>,
    /// Shutdown registration: force-closed by `HttpServer::shutdown` so
    /// in-flight writes fail fast.
    pub(crate) _live: Option<LiveGuard>,
}

/// What a worker does with a connection after driving it as far as the
/// buffered bytes and the socket allow.
pub(crate) enum Disposition {
    /// Waiting for more bytes: hand the connection to the poller.
    Park(Conn),
    /// Finished (clean close, error, or shutdown): the socket closes when
    /// the connection drops.
    Closed,
}

enum Parsed {
    /// A full request plus the number of input bytes it consumed.
    Complete(crate::types::Request, usize),
    /// The buffer holds a strict prefix of a request; need more bytes.
    Incomplete,
    /// Protocol violation: answer with this status and close.
    Fail(u16, String),
}

enum Fill {
    /// New bytes were appended; try parsing again.
    Progress,
    /// Nothing available without blocking; park.
    Park,
    /// Peer closed its end.
    Eof,
    /// Transport error.
    Err(io::Error),
}

/// Drive `conn` until it parks, closes, or fails. This is the event-path
/// sibling of `serve_stream`: identical request accounting, identical
/// response bytes (both funnel through `write_response_pooled`), but reads
/// never block — they either make progress or return the connection to the
/// poller.
pub(crate) fn drive<H: Handler>(
    mut conn: Conn,
    shared: &WorkerShared<H>,
    scratch: &mut Scratch,
) -> Disposition {
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return Disposition::Closed;
        }
        let mut trace = match &shared.telemetry {
            Some(t) => t.begin_request(),
            None => RequestTrace::disabled(),
        };
        let reuses_before = scratch.reuses();
        let attempt = trace.span(Phase::Parse, || {
            try_parse(&conn.inbuf, shared.max_body, scratch)
        });
        match attempt {
            Parsed::Incomplete => {
                // Not a request yet; the trace never finishes and records
                // nothing. Pull more bytes or park.
                match fill(&mut conn, scratch) {
                    Fill::Progress => continue,
                    Fill::Park => return Disposition::Park(conn),
                    Fill::Eof => {
                        if conn.inbuf.is_empty() {
                            // EOF exactly at a message boundary: clean close.
                        } else if let Some(t) = &shared.telemetry {
                            // Peer abandoned a half-sent request.
                            t.http.peer_resets.inc();
                        }
                        return Disposition::Closed;
                    }
                    Fill::Err(error) => {
                        classify_io_error(&error, shared);
                        return Disposition::Closed;
                    }
                }
            }
            Parsed::Fail(status, message) => {
                shared.stats.requests.fetch_add(1, Ordering::Relaxed);
                let response = Response::error(status, &message);
                if let Some(t) = &shared.telemetry {
                    trace.status = status;
                    t.finish_request(&trace, (shared.now_fn)());
                }
                let mut writer = NonblockingWriter::new(&conn.sock, shared.read_timeout);
                let _ = write_response_pooled(&mut writer, response, false, false, scratch);
                return Disposition::Closed;
            }
            Parsed::Complete(request, consumed) => {
                conn.inbuf.drain(..consumed);
                // Parsed and about to be handled: in flight until the
                // response write finishes (shutdown drains these).
                let _in_flight = crate::server::InFlightGuard::enter(&shared.in_flight);
                let keep_alive = request.wants_keep_alive() && !shared.stop.load(Ordering::SeqCst);
                let head_only = request.method == Method::Head;
                shared.stats.requests.fetch_add(1, Ordering::Relaxed);
                if conn.served > 0 {
                    if let Some(t) = &shared.telemetry {
                        t.http.keepalive_reuse.inc();
                    }
                }
                conn.served += 1;

                let response = shared
                    .handler
                    .handle_pooled(request, None, &mut trace, scratch);
                if response.status >= 500 {
                    shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                }
                trace.status = response.status;
                let written = trace.span(Phase::Write, || {
                    clarens_faults::check_io(clarens_faults::sites::HTTPD_WRITE).and_then(|()| {
                        let mut writer = NonblockingWriter::new(&conn.sock, shared.read_timeout);
                        write_response_pooled(&mut writer, response, keep_alive, head_only, scratch)
                    })
                });
                if let Some(t) = &shared.telemetry {
                    if let Ok(total) = written {
                        t.http.bytes_out.add(total);
                    }
                    t.http
                        .buffer_pool_reuse
                        .add(scratch.reuses().wrapping_sub(reuses_before));
                    t.finish_request(&trace, (shared.now_fn)());
                }
                if let Err(error) = written {
                    classify_io_error(&error, shared);
                    return Disposition::Closed;
                }
                if !shared.buffer_pool {
                    scratch.purge();
                }
                if !keep_alive {
                    return Disposition::Closed;
                }
            }
        }
    }
}

/// Try to parse one request out of the accumulated bytes. Runs the exact
/// parser the blocking path uses, over an in-memory cursor: running out of
/// buffered bytes mid-message surfaces as `UnexpectedEof`, which here means
/// "incomplete", not "error".
fn try_parse(inbuf: &[u8], max_body: usize, scratch: &mut Scratch) -> Parsed {
    if inbuf.is_empty() {
        return Parsed::Incomplete;
    }
    let mut cursor = Cursor::new(inbuf);
    match read_request_pooled(&mut cursor, max_body, scratch) {
        Ok(request) => Parsed::Complete(request, cursor.position() as usize),
        Err(ParseError::Eof) | Err(ParseError::Io(_)) => Parsed::Incomplete,
        Err(ParseError::Protocol(status, message)) => Parsed::Fail(status, message),
    }
}

/// Pull whatever the socket has without blocking.
fn fill(conn: &mut Conn, scratch: &mut Scratch) -> Fill {
    if let Err(e) = clarens_faults::check_io(clarens_faults::sites::HTTPD_READ) {
        return Fill::Err(e);
    }
    let mut chunk = scratch.take();
    chunk.resize(READ_CHUNK, 0);
    let mut appended = 0usize;
    let outcome = loop {
        match (&conn.sock).read(&mut chunk) {
            Ok(0) => break Fill::Eof,
            Ok(n) => {
                conn.inbuf.extend_from_slice(&chunk[..n]);
                appended += n;
                if n < chunk.len() || appended >= MAX_FILL_BURST {
                    break Fill::Progress;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                break if appended > 0 {
                    Fill::Progress
                } else {
                    Fill::Park
                };
            }
            Err(e) => break Fill::Err(e),
        }
    };
    scratch.recycle(chunk);
    outcome
}

/// `Write` adapter over a non-blocking socket: on `WouldBlock` it waits for
/// writability (bounded by `timeout`) and retries, so the shared response
/// serializer behaves exactly as it does on a blocking socket — including
/// the vectored head+body write.
pub(crate) struct NonblockingWriter<'a> {
    sock: &'a TcpStream,
    timeout: Duration,
}

impl<'a> NonblockingWriter<'a> {
    pub(crate) fn new(sock: &'a TcpStream, timeout: Duration) -> NonblockingWriter<'a> {
        NonblockingWriter { sock, timeout }
    }

    fn wait_writable(&self) -> io::Result<()> {
        wait_writable(self.sock, self.timeout)
    }
}

#[cfg(unix)]
fn wait_writable(sock: &TcpStream, timeout: Duration) -> io::Result<()> {
    use std::os::unix::io::AsRawFd;
    poller::wait_writable(sock.as_raw_fd(), timeout)
}

#[cfg(not(unix))]
fn wait_writable(_sock: &TcpStream, _timeout: Duration) -> io::Result<()> {
    // The event path never runs here: Poller construction fails on
    // non-Unix hosts and the server stays on the blocking path.
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "readiness polling unsupported on this platform",
    ))
}

impl Write for NonblockingWriter<'_> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        loop {
            match (&mut &*self.sock).write(buf) {
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => self.wait_writable()?,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                other => return other,
            }
        }
    }

    fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
        loop {
            match (&mut &*self.sock).write_vectored(bufs) {
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => self.wait_writable()?,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                other => return other,
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        // TCP sockets have no userspace buffer to flush.
        Ok(())
    }
}

/// Raw fd of a socket, for poller registration.
#[cfg(unix)]
pub(crate) fn raw_fd(sock: &TcpStream) -> poller::RawFd {
    use std::os::unix::io::AsRawFd;
    sock.as_raw_fd()
}

#[cfg(not(unix))]
pub(crate) fn raw_fd(_sock: &TcpStream) -> poller::RawFd {
    -1
}

/// Raw fd of a listener, for the acceptor's wakeable poll loop.
#[cfg(unix)]
pub(crate) fn raw_fd_listener(listener: &std::net::TcpListener) -> poller::RawFd {
    use std::os::unix::io::AsRawFd;
    listener.as_raw_fd()
}

#[cfg(not(unix))]
pub(crate) fn raw_fd_listener(_listener: &std::net::TcpListener) -> poller::RawFd {
    -1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_parse_states() {
        let mut scratch = Scratch::new();
        // Empty and prefix buffers are incomplete, not errors.
        assert!(matches!(
            try_parse(b"", 1024, &mut scratch),
            Parsed::Incomplete
        ));
        assert!(matches!(
            try_parse(b"GET / HT", 1024, &mut scratch),
            Parsed::Incomplete
        ));
        assert!(matches!(
            try_parse(b"GET / HTTP/1.1\r\nHost: h\r\n", 1024, &mut scratch),
            Parsed::Incomplete
        ));
        // Partial body: still incomplete.
        assert!(matches!(
            try_parse(
                b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc",
                1024,
                &mut scratch
            ),
            Parsed::Incomplete
        ));
        // A complete request reports exactly the bytes it consumed.
        let wire = b"GET /a HTTP/1.1\r\nHost: h\r\n\r\nGET /b";
        match try_parse(wire, 1024, &mut scratch) {
            Parsed::Complete(request, consumed) => {
                assert_eq!(request.target, "/a");
                assert_eq!(&wire[consumed..], b"GET /b");
            }
            _ => panic!("expected a complete request"),
        }
        // Garbage is a protocol failure.
        assert!(matches!(
            try_parse(b"NONSENSE\r\n\r\n", 1024, &mut scratch),
            Parsed::Fail(400, _)
        ));
        // An oversized declared body fails fast without needing the bytes.
        assert!(matches!(
            try_parse(
                b"POST / HTTP/1.1\r\nContent-Length: 99999\r\n\r\n",
                1024,
                &mut scratch
            ),
            Parsed::Fail(413, _)
        ));
    }
}
