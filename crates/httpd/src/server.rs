//! The HTTP server: a worker pool fed by an event-driven connection
//! scheduler.
//!
//! Architecturally this plays the role of "Apache + mod_python" in Figure 1
//! of the paper: it accepts connections, does SSL "transparently... with no
//! special coding needed in [the service layer] to decrypt (encrypt)
//! requests (responses)", and hands parsed requests to a [`Handler`].
//!
//! The concurrency model (see DESIGN.md "Concurrency model") decouples
//! connections from threads. Workers are pure CPU executors pulling
//! [`WorkItem`]s off one queue; the acceptor feeds fresh connections into
//! that queue; and a poller thread ([`crate::poller`]) holds every idle
//! keep-alive connection *parked* on an epoll set, re-dispatching each one
//! to the queue when bytes arrive and expiring it through a deadline wheel
//! when the keep-alive idle timeout lapses. An idle connection therefore
//! costs a few hundred bytes of state instead of a blocked worker thread —
//! the difference between concurrency capped at `workers` (the Apache
//! prefork shape the paper measured, which is what Figure 4 tops out on)
//! and concurrency capped at `max_connections`.
//!
//! The classic thread-per-connection path is kept selectable
//! (`park_idle = false`, and always used for TLS connections, whose record
//! layer buffers plaintext internally and therefore cannot be parked on
//! socket readiness) and produces byte-identical responses; both paths
//! funnel through the same parser and serializer.

use std::collections::HashMap;
use std::io::{self, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};

use clarens_telemetry::{Phase, RequestTrace, Telemetry};

use clarens_pki::cert::{Certificate, Credential};
use clarens_pki::dn::DistinguishedName;
use clarens_pki::SecureStream;

use crate::conn::{self, Conn, Disposition};
use crate::parse::{
    read_request_pooled, write_response_opts, write_response_pooled, ParseError, WriteOpts,
};
use crate::poller::{DeadlineWheel, Event, Poller};
use crate::scratch::Scratch;
use crate::types::{Method, Request, Response};

/// A bidirectional byte stream the server can serve HTTP over.
pub trait Transport: Read + Write + Send {}
impl<T: Read + Write + Send> Transport for T {}

/// Information about an authenticated peer, available when the connection
/// came in over the secure channel.
#[derive(Debug, Clone)]
pub struct PeerInfo {
    /// Effective identity (end-entity DN below any proxy certs).
    pub identity: DistinguishedName,
    /// The leaf certificate presented.
    pub certificate: Certificate,
    /// The full presented chain (leaf first).
    pub chain: Vec<Certificate>,
}

/// The application-side request handler.
pub trait Handler: Send + Sync + 'static {
    /// Handle one request. `peer` is `Some` only on TLS connections.
    fn handle(&self, request: Request, peer: Option<&PeerInfo>) -> Response;

    /// Handle one request with a trace riding along. Handlers that time
    /// their internal phases (auth, ACL walk, dispatch, serialization)
    /// override this; the default ignores the trace.
    fn handle_traced(
        &self,
        request: Request,
        peer: Option<&PeerInfo>,
        _trace: &mut RequestTrace,
    ) -> Response {
        self.handle(request, peer)
    }

    /// Handle one request with the worker's scratch arena riding along.
    /// Handlers on the allocation-lean path override this to encode the
    /// response body into a recycled buffer (and recycle the request body
    /// once decoded); the default ignores the arena.
    fn handle_pooled(
        &self,
        request: Request,
        peer: Option<&PeerInfo>,
        trace: &mut RequestTrace,
        _scratch: &mut Scratch,
    ) -> Response {
        self.handle_traced(request, peer, trace)
    }
}

impl<F> Handler for F
where
    F: Fn(Request, Option<&PeerInfo>) -> Response + Send + Sync + 'static,
{
    fn handle(&self, request: Request, peer: Option<&PeerInfo>) -> Response {
        self(request, peer)
    }
}

/// TLS settings for the server side.
pub struct TlsConfig {
    /// Server credential presented to clients.
    pub credential: Credential,
    /// Trust roots used to validate client certificates.
    pub roots: Vec<Certificate>,
}

/// Server configuration.
pub struct ServerConfig {
    /// Number of worker threads. With parking on they are pure CPU
    /// executors sized to cores; without it each serves one connection at
    /// a time, like Apache prefork children.
    pub workers: usize,
    /// Maximum decoded request body.
    pub max_body: usize,
    /// Socket read timeout for keep-alive connections (parked connections
    /// idle past this are expired by the deadline wheel).
    pub read_timeout: Duration,
    /// Enable the secure channel. `None` = plaintext HTTP.
    pub tls: Option<TlsConfig>,
    /// Clock used for certificate validation (overridable in tests).
    pub now_fn: Arc<dyn Fn() -> i64 + Send + Sync>,
    /// Telemetry plane to record into. `None` = untraced (tests, tools).
    pub telemetry: Option<Arc<Telemetry>>,
    /// Recycle per-worker scratch buffers across requests. Disable only to
    /// measure the per-request-allocation baseline (every buffer is then
    /// allocated fresh, like the pre-pooling data path).
    pub buffer_pool: bool,
    /// Cap on simultaneously live connections (queued + active + parked).
    /// Connections beyond the cap are shed with `503` +
    /// `Connection: close` instead of growing the queue without bound.
    pub max_connections: usize,
    /// Park idle keep-alive connections in the readiness poller instead of
    /// blocking a worker in `read()` between requests. `false` selects the
    /// classic thread-per-connection path (the A/B baseline; also what TLS
    /// connections always use).
    pub park_idle: bool,
    /// How long `shutdown()` waits for in-flight requests to complete
    /// before force-closing their connections. Idle (parked or between-
    /// request) connections are closed immediately either way.
    pub drain_timeout: Duration,
    /// Send file-backed bodies with `sendfile(2)` on plaintext Linux
    /// sockets instead of copying through a userspace buffer. Off (or on
    /// unsupported targets/TLS) every path uses the buffered copy loop;
    /// the wire bytes are identical either way.
    pub zero_copy: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 16,
            max_body: crate::parse::DEFAULT_MAX_BODY,
            read_timeout: Duration::from_secs(30),
            tls: None,
            now_fn: Arc::new(|| {
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_secs() as i64)
                    .unwrap_or(0)
            }),
            telemetry: None,
            buffer_pool: true,
            max_connections: 4096,
            park_idle: true,
            drain_timeout: Duration::from_secs(5),
            zero_copy: true,
        }
    }
}

/// Monotonic server counters (exposed so benches can report served
/// request totals like the paper's "316 million requests ... completed").
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Requests served (any status).
    pub requests: AtomicU64,
    /// Requests that produced 5xx responses.
    pub errors: AtomicU64,
}

/// One unit of worker work: a connection with (potential) CPU work to do.
pub(crate) enum WorkItem {
    /// A connection served on the classic path: the worker owns it until
    /// it closes (TLS, or `park_idle = false`).
    Blocking(TcpStream, Option<BudgetGuard>),
    /// An event-path connection to drive until it parks or closes.
    Event(Box<Conn>),
}

/// RAII slot in the live-connection budget.
pub(crate) struct BudgetGuard {
    count: Arc<AtomicUsize>,
}

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        self.count.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The worker side of the park channel: where to send a connection that
/// ran out of bytes, and how to nudge the poller to pick it up.
pub(crate) struct Parker {
    tx: Sender<Box<Conn>>,
    poller: Arc<Poller>,
}

enum AcceptWake {
    /// Acceptor blocks in its own poller; wake it through the self-pipe.
    Poller(Arc<Poller>),
    /// Acceptor blocks in `accept(2)` (poller construction failed); wake
    /// it the old way, with a throwaway connection.
    Connect,
}

/// A running HTTP server.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    poller_thread: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    stats: Arc<ServerStats>,
    /// Raw handles of live connections, force-closed on shutdown so that
    /// workers blocked in keep-alive reads wake immediately.
    live: Arc<LiveConnections>,
    accept_wake: AcceptWake,
    conn_poller: Option<Arc<Poller>>,
    /// Requests currently between parse-complete and write-complete;
    /// shutdown drains this to zero (bounded) before force-closing.
    in_flight: Arc<AtomicUsize>,
    drain_timeout: Duration,
}

/// RAII marker for a request being actively processed (parsed, handled,
/// written). Shutdown waits for these to finish before it starts tearing
/// sockets out from under workers.
pub(crate) struct InFlightGuard {
    count: Arc<AtomicUsize>,
}

impl InFlightGuard {
    pub(crate) fn enter(count: &Arc<AtomicUsize>) -> InFlightGuard {
        count.fetch_add(1, Ordering::AcqRel);
        InFlightGuard {
            count: Arc::clone(count),
        }
    }
}

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        self.count.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Registry of raw socket handles for live connections. Entries are
/// removed (and the clone dropped) when their connection finishes, so the
/// peer observes EOF normally; on server shutdown all remaining handles
/// are force-closed to wake blocked keep-alive reads.
#[derive(Default)]
pub(crate) struct LiveConnections {
    next_id: AtomicU64,
    sockets: parking_lot::Mutex<std::collections::HashMap<u64, TcpStream>>,
}

impl LiveConnections {
    fn register(self: &Arc<Self>, sock: &TcpStream) -> Option<LiveGuard> {
        let clone = sock.try_clone().ok()?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.sockets.lock().insert(id, clone);
        Some(LiveGuard {
            id,
            live: Arc::clone(self),
        })
    }

    fn close_all(&self) {
        for (_, sock) in self.sockets.lock().drain() {
            let _ = sock.shutdown(std::net::Shutdown::Both);
        }
    }
}

pub(crate) struct LiveGuard {
    id: u64,
    live: Arc<LiveConnections>,
}

impl Drop for LiveGuard {
    fn drop(&mut self) {
        self.live.sockets.lock().remove(&self.id);
    }
}

impl HttpServer {
    /// Bind and start serving on `addr` (e.g. `"127.0.0.1:0"`).
    pub fn bind<H: Handler>(
        addr: &str,
        config: ServerConfig,
        handler: Arc<H>,
    ) -> io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        let live = Arc::new(LiveConnections::default());
        let conn_count = Arc::new(AtomicUsize::new(0));
        let (tx, rx): (Sender<WorkItem>, Receiver<WorkItem>) = unbounded();

        // Event mode needs a working readiness backend; TLS connections
        // cannot be parked (the record layer buffers decrypted bytes the
        // poller cannot see), so a TLS server stays fully on the classic
        // path.
        let conn_poller = if config.park_idle && config.tls.is_none() {
            Poller::new().ok().map(Arc::new)
        } else {
            None
        };
        let event_mode = conn_poller.is_some();
        let (park_tx, park_rx): (Sender<Box<Conn>>, Receiver<Box<Conn>>) = unbounded();

        let in_flight = Arc::new(AtomicUsize::new(0));
        let shared = Arc::new(WorkerShared {
            handler,
            tls: config.tls,
            max_body: config.max_body,
            read_timeout: config.read_timeout,
            now_fn: config.now_fn,
            telemetry: config.telemetry,
            buffer_pool: config.buffer_pool,
            zero_copy: config.zero_copy,
            stop: Arc::clone(&stop),
            stats: Arc::clone(&stats),
            live: Arc::clone(&live),
            in_flight: Arc::clone(&in_flight),
            parker: conn_poller.as_ref().map(|p| Parker {
                tx: park_tx,
                poller: Arc::clone(p),
            }),
        });

        let mut workers = Vec::with_capacity(config.workers);
        for i in 0..config.workers.max(1) {
            let rx = rx.clone();
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("clarens-worker-{i}"))
                    .spawn(move || worker_loop(rx, shared))
                    .expect("spawn worker"),
            );
        }

        let poller_thread = conn_poller.as_ref().map(|p| {
            let poller = Arc::clone(p);
            let work_tx = tx.clone();
            let stop = Arc::clone(&stop);
            let telemetry = shared.telemetry.clone();
            let read_timeout = config.read_timeout;
            std::thread::Builder::new()
                .name("clarens-poller".into())
                .spawn(move || poller_loop(poller, park_rx, work_tx, stop, telemetry, read_timeout))
                .expect("spawn poller")
        });

        // The acceptor gets its own poller purely for a wakeable accept
        // loop; if that fails (non-Unix host) it falls back to blocking
        // `accept` plus the connect-to-self wake.
        let accept_poller = Poller::new().ok().map(Arc::new);
        let accept_wake = match &accept_poller {
            Some(p) => AcceptWake::Poller(Arc::clone(p)),
            None => AcceptWake::Connect,
        };

        let accept_stop = Arc::clone(&stop);
        let accept_stats = Arc::clone(&stats);
        let accept_telemetry = shared.telemetry.clone();
        let accept_live = Arc::clone(&live);
        let max_connections = config.max_connections.max(1);
        let acceptor = std::thread::Builder::new()
            .name("clarens-acceptor".into())
            .spawn(move || {
                accept_loop(AcceptLoop {
                    listener,
                    poller: accept_poller,
                    stop: accept_stop,
                    stats: accept_stats,
                    telemetry: accept_telemetry,
                    live: accept_live,
                    conn_count,
                    max_connections,
                    event_mode,
                    tx,
                });
                // Dropping the acceptor's (and later the poller's) sender
                // lets workers drain and exit.
            })
            .expect("spawn acceptor");

        Ok(HttpServer {
            addr: local_addr,
            stop,
            acceptor: Some(acceptor),
            poller_thread,
            workers,
            stats,
            live,
            accept_wake,
            conn_poller,
            in_flight,
            drain_timeout: config.drain_timeout,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Server counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Stop accepting and join all threads. Outstanding keep-alive
    /// connections are closed after their current request. Deterministic
    /// under zero traffic: both the acceptor and the poller are woken
    /// explicitly (no dummy connection, no timeout race).
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        match &self.accept_wake {
            AcceptWake::Poller(p) => p.wake(),
            AcceptWake::Connect => {
                let _ = TcpStream::connect(self.addr);
            }
        }
        if let Some(p) = &self.conn_poller {
            p.wake();
        }
        // Graceful drain: requests already past the parser get a bounded
        // window to finish handling and write their response. Connections
        // that are merely idle hold no in-flight marker, so a quiet server
        // still shuts down instantly.
        let drain_deadline = Instant::now() + self.drain_timeout;
        while self.in_flight.load(Ordering::Acquire) > 0 && Instant::now() < drain_deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Force-close remaining live connections (blocking-path keep-alive
        // reads and overrunning writes return immediately; parked sockets
        // see HUP).
        self.live.close_all();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        if let Some(poller) = self.poller_thread.take() {
            let _ = poller.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

pub(crate) struct WorkerShared<H: Handler> {
    pub(crate) handler: Arc<H>,
    pub(crate) tls: Option<TlsConfig>,
    pub(crate) max_body: usize,
    pub(crate) read_timeout: Duration,
    pub(crate) now_fn: Arc<dyn Fn() -> i64 + Send + Sync>,
    pub(crate) telemetry: Option<Arc<Telemetry>>,
    pub(crate) buffer_pool: bool,
    pub(crate) zero_copy: bool,
    pub(crate) stop: Arc<AtomicBool>,
    pub(crate) stats: Arc<ServerStats>,
    pub(crate) live: Arc<LiveConnections>,
    pub(crate) in_flight: Arc<AtomicUsize>,
    pub(crate) parker: Option<Parker>,
}

struct AcceptLoop {
    listener: TcpListener,
    poller: Option<Arc<Poller>>,
    stop: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    telemetry: Option<Arc<Telemetry>>,
    live: Arc<LiveConnections>,
    conn_count: Arc<AtomicUsize>,
    max_connections: usize,
    event_mode: bool,
    tx: Sender<WorkItem>,
}

fn accept_loop(ctx: AcceptLoop) {
    // The acceptor is the sole allocator of connection ids (poller tokens).
    let mut next_id: u64 = 0;
    let mut admit = |sock: TcpStream| -> bool {
        // Fault injection: a failed accept behaves like ECONNABORTED —
        // the connection is dropped before any accounting sees it.
        if matches!(
            clarens_faults::eval(clarens_faults::sites::HTTPD_ACCEPT),
            Some(clarens_faults::Injected::Err) | Some(clarens_faults::Injected::ShortWrite(_))
        ) {
            drop(sock);
            return true;
        }
        ctx.stats.connections.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = &ctx.telemetry {
            t.http.connections.inc();
        }
        // Budget check: `fetch_add` claims a slot; over-budget claims are
        // rolled back and the connection shed instead of queued.
        let prev = ctx.conn_count.fetch_add(1, Ordering::AcqRel);
        if prev >= ctx.max_connections {
            ctx.conn_count.fetch_sub(1, Ordering::AcqRel);
            shed(sock, &ctx.telemetry);
            return true;
        }
        let budget = BudgetGuard {
            count: Arc::clone(&ctx.conn_count),
        };
        let item = if ctx.event_mode && sock.set_nonblocking(true).is_ok() {
            sock.set_nodelay(true).ok();
            let id = next_id;
            next_id += 1;
            WorkItem::Event(Box::new(Conn {
                _live: ctx.live.register(&sock),
                sock,
                inbuf: Vec::new(),
                served: 0,
                id,
                registered: false,
                pending_write: None,
                _budget: Some(budget),
            }))
        } else {
            // Classic path; `serve_connection` expects a blocking socket.
            sock.set_nonblocking(false).ok();
            WorkItem::Blocking(sock, Some(budget))
        };
        if let Some(t) = &ctx.telemetry {
            t.http.queue_depth.inc();
        }
        ctx.tx.send(item).is_ok()
    };

    match &ctx.poller {
        Some(poller) => {
            // Wakeable accept loop: non-blocking listener registered
            // level-triggered, so `wait` returns whenever connections are
            // pending or `wake()` is called.
            if ctx.listener.set_nonblocking(true).is_err()
                || poller
                    .add(conn::raw_fd_listener(&ctx.listener), 0, false)
                    .is_err()
            {
                return blocking_accept_loop(&ctx.listener, &ctx.stop, admit);
            }
            let mut events: Vec<Event> = Vec::new();
            loop {
                if ctx.stop.load(Ordering::SeqCst) {
                    return;
                }
                events.clear();
                let _ = poller.wait(None, &mut events);
                if ctx.stop.load(Ordering::SeqCst) {
                    return;
                }
                loop {
                    match ctx.listener.accept() {
                        Ok((sock, _)) => {
                            if !admit(sock) {
                                return;
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => break, // transient (e.g. ECONNABORTED)
                    }
                }
            }
        }
        None => blocking_accept_loop(&ctx.listener, &ctx.stop, admit),
    }
}

fn blocking_accept_loop(
    listener: &TcpListener,
    stop: &AtomicBool,
    mut admit: impl FnMut(TcpStream) -> bool,
) {
    listener.set_nonblocking(false).ok();
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match stream {
            Ok(sock) => {
                if !admit(sock) {
                    return;
                }
            }
            Err(_) => continue,
        }
    }
}

/// Answer an over-budget connection with `503` + `Connection: close` and
/// drop it, without ever reading the request (the peer may not have sent
/// one yet, and we will not hold a slot waiting for it).
fn shed(mut sock: TcpStream, telemetry: &Option<Arc<Telemetry>>) {
    if let Some(t) = telemetry {
        t.http.sheds.inc();
    }
    sock.set_nonblocking(false).ok();
    sock.set_write_timeout(Some(Duration::from_secs(1))).ok();
    let _ = crate::parse::write_response(
        &mut sock,
        Response::error(503, "connection limit reached, retry later"),
        false,
        false,
    );
}

/// The poller thread: owns every parked connection, its epoll set, and the
/// deadline wheel. Three duties per iteration: absorb newly parked
/// connections from the park channel, re-dispatch readable ones to the
/// worker queue, and expire those idle past the keep-alive timeout.
fn poller_loop(
    poller: Arc<Poller>,
    park_rx: Receiver<Box<Conn>>,
    work_tx: Sender<WorkItem>,
    stop: Arc<AtomicBool>,
    telemetry: Option<Arc<Telemetry>>,
    read_timeout: Duration,
) {
    struct Parked {
        conn: Box<Conn>,
        deadline: Instant,
        seq: u64,
        /// Waiting for the socket to become writable (response parked
        /// mid-write) rather than readable (idle keep-alive).
        writer: bool,
    }

    let mut parked: HashMap<u64, Parked> = HashMap::new();
    let mut wheel = DeadlineWheel::new(read_timeout);
    let mut events: Vec<Event> = Vec::new();
    let mut due: Vec<(u64, u64)> = Vec::new();
    // Park sequence numbers distinguish a connection's current park from
    // stale wheel candidates left by its earlier parks.
    let mut seq: u64 = 0;
    // Writers among `parked` (for the parked_writers gauge and the
    // write_stall expiry class).
    let mut writers: usize = 0;

    loop {
        while let Some(mut conn) = park_rx.try_recv() {
            let fd = conn::raw_fd(&conn.sock);
            let writer = conn.pending_write.is_some();
            let armed = if conn.registered {
                if writer {
                    poller.rearm_writable(fd, conn.id)
                } else {
                    poller.rearm(fd, conn.id)
                }
            } else {
                let added = if writer {
                    poller.add_writable(fd, conn.id)
                } else {
                    poller.add(fd, conn.id, true)
                };
                if added.is_ok() {
                    conn.registered = true;
                }
                added
            };
            if armed.is_err() {
                // Cannot watch it → cannot ever wake it; close now.
                continue;
            }
            seq += 1;
            let deadline = Instant::now() + read_timeout;
            wheel.insert(conn.id, seq, deadline);
            if writer {
                writers += 1;
            }
            parked.insert(
                conn.id,
                Parked {
                    conn,
                    deadline,
                    seq,
                    writer,
                },
            );
        }
        if stop.load(Ordering::SeqCst) {
            break;
        }
        if let Some(t) = &telemetry {
            t.http.parked.set(parked.len() as u64);
            t.http.parked_writers.set(writers as u64);
        }

        // With nothing parked there is no deadline to honor: sleep until a
        // wake (new park or shutdown). Otherwise sleep to the next wheel
        // tick.
        let timeout = if parked.is_empty() {
            None
        } else {
            Some(wheel.next_tick_in(Instant::now()))
        };
        events.clear();
        if poller.wait(timeout, &mut events).is_err() {
            // Defensive: never spin hot on a persistent backend error.
            std::thread::sleep(Duration::from_millis(1));
        }

        for event in events.drain(..) {
            if let Some(p) = parked.remove(&event.token) {
                if p.writer {
                    writers -= 1;
                }
                if let Some(t) = &telemetry {
                    t.http.poll_wakeups.inc();
                    t.http.queue_depth.inc();
                }
                if work_tx.send(WorkItem::Event(p.conn)).is_err() {
                    return;
                }
            }
        }

        let now = Instant::now();
        due.clear();
        wheel.advance(now, &mut due);
        for &(token, candidate_seq) in &due {
            let verdict = match parked.get(&token) {
                Some(p) if p.seq == candidate_seq => Some(now >= p.deadline),
                _ => None, // stale candidate from an earlier park
            };
            match verdict {
                Some(true) => {
                    if let Some(p) = parked.remove(&token) {
                        if p.writer {
                            writers -= 1;
                        }
                        if let Some(t) = &telemetry {
                            if p.writer {
                                // A consumer too slow to drain its response
                                // within the deadline: a stalled writer, not
                                // keep-alive churn.
                                t.http.write_stalls.inc();
                            } else {
                                // The server's own idle timeout, not a peer
                                // reset.
                                t.http.idle_timeouts.inc();
                            }
                        }
                    }
                }
                Some(false) => {
                    // Early candidate (wheel tick granularity); requeue.
                    let deadline = parked[&token].deadline;
                    wheel.insert(token, candidate_seq, deadline);
                }
                None => {}
            }
        }
    }
    // Shutdown: dropping the map closes every parked socket.
    if let Some(t) = &telemetry {
        t.http.parked.set(0);
    }
}

fn worker_loop<H: Handler>(rx: Receiver<WorkItem>, shared: Arc<WorkerShared<H>>) {
    // The worker's scratch arena lives as long as the thread: buffers
    // recycle across requests *and* connections.
    let mut scratch = Scratch::new();
    while let Ok(item) = rx.recv() {
        if let Some(t) = &shared.telemetry {
            t.http.queue_depth.dec();
        }
        if shared.stop.load(Ordering::SeqCst) {
            // Drain and drop: queued sockets close unserved.
            continue;
        }
        match item {
            WorkItem::Blocking(sock, budget) => {
                let _budget = budget;
                let _ = serve_connection(sock, &shared, &mut scratch);
            }
            WorkItem::Event(conn) => match conn::drive(conn, &shared, &mut scratch) {
                Disposition::Park(conn) => {
                    if let Some(parker) = &shared.parker {
                        if parker.tx.send(conn).is_ok() {
                            parker.poller.wake();
                        }
                    }
                }
                Disposition::Closed => {}
            },
        }
    }
}

fn serve_connection<H: Handler>(
    sock: TcpStream,
    shared: &WorkerShared<H>,
    scratch: &mut Scratch,
) -> Result<(), ParseError> {
    sock.set_read_timeout(Some(shared.read_timeout)).ok();
    sock.set_nodelay(true).ok();

    // Register for forced shutdown; the guard unregisters (dropping the
    // cloned handle) when this connection finishes.
    let _live_guard = shared.live.register(&sock);

    match &shared.tls {
        None => {
            // Plaintext: the socket fd is visible through the BufReader, so
            // the write path may hand file bodies straight to sendfile(2).
            let out_fd = Some(conn::raw_fd(&sock));
            serve_stream(sock, None, shared, scratch, out_fd)
        }
        Some(tls) => {
            let now = (shared.now_fn)();
            let mut rng = rand::rng();
            match SecureStream::accept(sock, &tls.credential, &tls.roots, now, &mut rng) {
                Ok((stream, chain)) => {
                    let peer = PeerInfo {
                        identity: stream.peer_identity().clone(),
                        certificate: stream.peer_certificate().clone(),
                        chain,
                    };
                    // TLS frames every byte, so zero-copy is off the table.
                    serve_stream(stream, Some(peer), shared, scratch, None)
                }
                Err(error) => {
                    if let Some(t) = &shared.telemetry {
                        t.http.handshake_failures.inc();
                    }
                    clarens_telemetry::debug!("TLS handshake failed: {error:?}");
                    Ok(())
                }
            }
        }
    }
}

/// Classify a keep-alive read/write I/O failure: the server's own idle
/// timeout firing is normal churn, while everything else means the peer
/// tore the connection down under us.
pub(crate) fn classify_io_error<H: Handler>(error: &io::Error, shared: &WorkerShared<H>) {
    if crate::parse::is_truncation(error) {
        // The body source under-delivered against its declared
        // Content-Length — a server-side framing hazard, not peer churn.
        if let Some(t) = &shared.telemetry {
            t.http.stream_truncations.inc();
        }
        clarens_telemetry::debug!("response body truncated: {error}");
        return;
    }
    let idle = matches!(
        error.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    );
    if let Some(t) = &shared.telemetry {
        if idle {
            t.http.idle_timeouts.inc();
        } else {
            t.http.peer_resets.inc();
        }
    }
    if !idle {
        clarens_telemetry::debug!("connection reset by peer: {error}");
    }
}

fn serve_stream<S: Transport, H: Handler>(
    stream: S,
    peer: Option<PeerInfo>,
    shared: &WorkerShared<H>,
    scratch: &mut Scratch,
    out_fd: Option<i32>,
) -> Result<(), ParseError> {
    let mut reader = BufReader::new(stream);
    let mut served = 0u64;
    loop {
        // The trace opens before the read, so for keep-alive connections
        // the parse phase includes time spent waiting for the next request
        // (negligible under the closed-loop benchmark workloads).
        let mut trace = match &shared.telemetry {
            Some(t) => t.begin_request(),
            None => RequestTrace::disabled(),
        };
        let reuses_before = scratch.reuses();
        let request = match trace.span(Phase::Parse, || {
            clarens_faults::check_io(clarens_faults::sites::HTTPD_READ)
                .map_err(ParseError::Io)
                .and_then(|()| read_request_pooled(&mut reader, shared.max_body, scratch))
        }) {
            Ok(req) => req,
            Err(ParseError::Eof) => return Ok(()), // clean close between requests
            Err(ParseError::Io(error)) => {
                classify_io_error(&error, shared);
                return Ok(());
            }
            Err(ParseError::Protocol(status, message)) => {
                shared.stats.requests.fetch_add(1, Ordering::Relaxed);
                let response = Response::error(status, &message);
                if let Some(t) = &shared.telemetry {
                    trace.status = status;
                    t.finish_request(&trace, (shared.now_fn)());
                }
                let _ = write_response_pooled(reader.get_mut(), response, false, false, scratch);
                return Ok(());
            }
        };
        // From here to write-completion this request is in flight:
        // shutdown will wait (bounded) for the guard to drop.
        let _in_flight = InFlightGuard::enter(&shared.in_flight);
        let keep_alive = request.wants_keep_alive() && !shared.stop.load(Ordering::SeqCst);
        let head_only = request.method == Method::Head;
        shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        if served > 0 {
            if let Some(t) = &shared.telemetry {
                t.http.keepalive_reuse.inc();
            }
        }
        served += 1;

        let response = shared
            .handler
            .handle_pooled(request, peer.as_ref(), &mut trace, scratch);
        if response.status >= 500 {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
        }
        trace.status = response.status;
        let written = trace.span(Phase::Write, || {
            clarens_faults::check_io(clarens_faults::sites::HTTPD_WRITE).and_then(|()| {
                write_response_opts(
                    reader.get_mut(),
                    response,
                    keep_alive,
                    head_only,
                    scratch,
                    WriteOpts {
                        out_fd,
                        zero_copy: shared.zero_copy,
                    },
                )
            })
        });
        if let Some(t) = &shared.telemetry {
            if let Ok(outcome) = &written {
                t.http.bytes_out.add(outcome.total);
                t.http.bytes_sendfile.add(outcome.sendfile);
            }
            t.http
                .buffer_pool_reuse
                .add(scratch.reuses().wrapping_sub(reuses_before));
            t.finish_request(&trace, (shared.now_fn)());
        }
        if let Err(error) = written {
            classify_io_error(&error, shared);
            return Err(ParseError::Io(error));
        }
        if !shared.buffer_pool {
            scratch.purge();
        }
        if !keep_alive {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::read_response;

    fn echo_handler() -> Arc<impl Handler> {
        Arc::new(|req: Request, peer: Option<&PeerInfo>| {
            let who = peer
                .map(|p| p.identity.to_string())
                .unwrap_or_else(|| "anonymous".to_string());
            Response::ok(
                "text/plain",
                format!(
                    "{} {} {} {}",
                    req.method.as_str(),
                    req.target,
                    who,
                    req.body.len()
                ),
            )
        })
    }

    /// Short keep-alive timeout so `shutdown()` joins quickly in tests.
    /// Every scenario runs under both concurrency models (`park` =
    /// event-driven vs classic thread-per-connection) — the two paths must
    /// be behaviorally indistinguishable from the wire.
    fn test_config(park: bool) -> ServerConfig {
        ServerConfig {
            read_timeout: Duration::from_millis(200),
            park_idle: park,
            ..Default::default()
        }
    }

    const BOTH_MODES: [bool; 2] = [false, true];

    fn start_plain(park: bool) -> HttpServer {
        HttpServer::bind("127.0.0.1:0", test_config(park), echo_handler()).unwrap()
    }

    fn raw_roundtrip(addr: SocketAddr, request: &str) -> (u16, Vec<u8>) {
        let mut sock = TcpStream::connect(addr).unwrap();
        sock.write_all(request.as_bytes()).unwrap();
        let mut reader = BufReader::new(sock);
        let resp = read_response(&mut reader, usize::MAX).unwrap();
        (resp.status, resp.body)
    }

    #[test]
    fn serves_get() {
        for park in BOTH_MODES {
            let server = start_plain(park);
            let (status, body) =
                raw_roundtrip(server.local_addr(), "GET /x HTTP/1.1\r\nHost: h\r\n\r\n");
            assert_eq!(status, 200);
            assert_eq!(body, b"GET /x anonymous 0");
            server.shutdown();
        }
    }

    #[test]
    fn keep_alive_multiple_requests() {
        for park in BOTH_MODES {
            let server = start_plain(park);
            let mut sock = TcpStream::connect(server.local_addr()).unwrap();
            for i in 0..5 {
                let req = format!("GET /r{i} HTTP/1.1\r\nHost: h\r\n\r\n");
                sock.write_all(req.as_bytes()).unwrap();
            }
            let mut reader = BufReader::new(sock);
            for i in 0..5 {
                let resp = read_response(&mut reader, usize::MAX).unwrap();
                assert_eq!(resp.status, 200);
                assert_eq!(resp.body, format!("GET /r{i} anonymous 0").as_bytes());
                assert!(resp.keep_alive);
            }
            assert_eq!(server.stats().requests.load(Ordering::Relaxed), 5);
            assert_eq!(server.stats().connections.load(Ordering::Relaxed), 1);
            server.shutdown();
        }
    }

    #[test]
    fn post_body_delivered() {
        for park in BOTH_MODES {
            let server = start_plain(park);
            let (status, body) = raw_roundtrip(
                server.local_addr(),
                "POST /rpc HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nabcd",
            );
            assert_eq!(status, 200);
            assert_eq!(body, b"POST /rpc anonymous 4");
            server.shutdown();
        }
    }

    #[test]
    fn bad_request_answered_not_dropped() {
        for park in BOTH_MODES {
            let server = start_plain(park);
            let (status, _) = raw_roundtrip(server.local_addr(), "NONSENSE\r\n\r\n");
            assert_eq!(status, 400);
            let (status, _) =
                raw_roundtrip(server.local_addr(), "BREW / HTTP/1.1\r\nHost: h\r\n\r\n");
            assert_eq!(status, 501);
            server.shutdown();
        }
    }

    #[test]
    fn connection_close_honored() {
        for park in BOTH_MODES {
            let server = start_plain(park);
            let mut sock = TcpStream::connect(server.local_addr()).unwrap();
            sock.write_all(b"GET / HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n")
                .unwrap();
            let mut reader = BufReader::new(sock);
            let resp = read_response(&mut reader, usize::MAX).unwrap();
            assert!(!resp.keep_alive);
            // Server must actually close: next read returns EOF.
            let mut probe = [0u8; 1];
            assert_eq!(reader.read(&mut probe).unwrap(), 0);
            server.shutdown();
        }
    }

    #[test]
    fn concurrent_clients() {
        for park in BOTH_MODES {
            let server = start_plain(park);
            let addr = server.local_addr();
            let mut handles = Vec::new();
            for t in 0..8 {
                handles.push(std::thread::spawn(move || {
                    for i in 0..20 {
                        let (status, body) = raw_roundtrip(
                            addr,
                            &format!(
                                "GET /t{t}-{i} HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n"
                            ),
                        );
                        assert_eq!(status, 200);
                        assert_eq!(body, format!("GET /t{t}-{i} anonymous 0").as_bytes());
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(server.stats().requests.load(Ordering::Relaxed), 160);
            server.shutdown();
        }
    }

    #[test]
    fn oversized_body_rejected() {
        for park in BOTH_MODES {
            let config = ServerConfig {
                max_body: 10,
                ..test_config(park)
            };
            let server = HttpServer::bind("127.0.0.1:0", config, echo_handler()).unwrap();
            let (status, _) = raw_roundtrip(
                server.local_addr(),
                "POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 1000\r\n\r\n",
            );
            assert_eq!(status, 413);
            server.shutdown();
        }
    }

    #[test]
    fn io_errors_classified_idle_vs_reset() {
        for park in BOTH_MODES {
            let telemetry = Telemetry::enabled();
            let config = ServerConfig {
                telemetry: Some(Arc::clone(&telemetry)),
                ..test_config(park)
            };
            let server = HttpServer::bind("127.0.0.1:0", config, echo_handler()).unwrap();

            // Idle past the read timeout: counted as an idle timeout (in
            // park mode the deadline wheel expires it; in blocking mode
            // the worker's socket timeout fires).
            let idle_sock = TcpStream::connect(server.local_addr()).unwrap();
            std::thread::sleep(Duration::from_millis(400));
            drop(idle_sock);

            // Close mid-request (truncated body → UnexpectedEof): counted
            // as a peer reset, not a clean close.
            let mut reset_sock = TcpStream::connect(server.local_addr()).unwrap();
            reset_sock
                .write_all(b"POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 100\r\n\r\npartial")
                .unwrap();
            drop(reset_sock);
            std::thread::sleep(Duration::from_millis(100));

            assert_eq!(telemetry.http.idle_timeouts.get(), 1, "park={park}");
            assert_eq!(telemetry.http.peer_resets.get(), 1, "park={park}");
            // Neither path counts as a completed request.
            assert_eq!(telemetry.http.requests.get(), 0, "park={park}");
            assert_eq!(telemetry.http.connections.get(), 2, "park={park}");
            server.shutdown();
        }
    }

    #[test]
    fn telemetry_counts_requests_and_keepalive_reuse() {
        // Runs on the blocking path: the phase-histogram assertions need
        // the parse span to include read-wait time (the event path parses
        // from memory in sub-microsecond time, which rounds to a zero
        // sample). Event-path counter coverage lives in
        // tests/event_mode.rs.
        let telemetry = Telemetry::enabled();
        let config = ServerConfig {
            telemetry: Some(Arc::clone(&telemetry)),
            ..test_config(false)
        };
        let server = HttpServer::bind("127.0.0.1:0", config, echo_handler()).unwrap();
        let mut sock = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = BufReader::new(sock.try_clone().unwrap());
        // Strictly request-response paced: each parse span then includes a
        // blocking read-wait, so no sample can round down to the zero
        // microseconds that the phase histogram (correctly) drops.
        for i in 0..3 {
            let req = format!("GET /r{i} HTTP/1.1\r\nHost: h\r\n\r\n");
            sock.write_all(req.as_bytes()).unwrap();
            assert_eq!(read_response(&mut reader, usize::MAX).unwrap().status, 200);
        }
        drop(reader);
        drop(sock);
        server.shutdown();
        assert_eq!(telemetry.http.requests.get(), 3);
        assert_eq!(telemetry.http.keepalive_reuse.get(), 2);
        // Spans were timed: parse and write histograms saw every request.
        let phases = telemetry.phase_snapshots();
        assert_eq!(phases[Phase::Parse as usize].1.count, 3);
        assert_eq!(phases[Phase::Write as usize].1.count, 3);
        assert_eq!(phases.last().unwrap().1.count, 3);
    }

    #[test]
    fn graceful_shutdown_drains_in_flight_requests() {
        for park in BOTH_MODES {
            let handler = Arc::new(|_req: Request, _peer: Option<&PeerInfo>| {
                std::thread::sleep(Duration::from_millis(300));
                Response::ok("text/plain", "slow done")
            });
            let server = HttpServer::bind("127.0.0.1:0", test_config(park), handler).unwrap();
            let addr = server.local_addr();
            let client = std::thread::spawn(move || {
                let mut sock = TcpStream::connect(addr).unwrap();
                sock.write_all(b"GET /slow HTTP/1.1\r\nHost: h\r\n\r\n")
                    .unwrap();
                let mut reader = BufReader::new(sock);
                read_response(&mut reader, usize::MAX)
                    .map(|r| (r.status, r.body))
                    .ok()
            });
            // Let the request reach the handler, then shut down mid-flight:
            // the drain must let the response complete rather than severing
            // the socket.
            std::thread::sleep(Duration::from_millis(100));
            server.shutdown();
            let result = client.join().unwrap();
            assert_eq!(
                result,
                Some((200, b"slow done".to_vec())),
                "park={park}: in-flight request lost on shutdown"
            );
        }
    }

    #[test]
    fn head_omits_body() {
        for park in BOTH_MODES {
            let server = start_plain(park);
            let mut sock = TcpStream::connect(server.local_addr()).unwrap();
            sock.write_all(b"HEAD /h HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n")
                .unwrap();
            let mut text = String::new();
            BufReader::new(sock).read_to_string(&mut text).unwrap();
            assert!(text.contains("content-length: 19")); // "HEAD /h anonymous 0"
            assert!(!text.contains("anonymous"));
            server.shutdown();
        }
    }
}
