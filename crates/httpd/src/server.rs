//! The threaded HTTP server.
//!
//! Architecturally this plays the role of "Apache + mod_python" in Figure 1
//! of the paper: it accepts connections, does SSL "transparently... with no
//! special coding needed in [the service layer] to decrypt (encrypt)
//! requests (responses)", and hands parsed requests to a [`Handler`]. The
//! concurrency model is a bounded worker pool over blocking sockets — the
//! same process-pool shape as the Apache prefork server the paper measured.

use std::io::{self, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};

use clarens_telemetry::{Phase, RequestTrace, Telemetry};

use clarens_pki::cert::{Certificate, Credential};
use clarens_pki::dn::DistinguishedName;
use clarens_pki::SecureStream;

use crate::parse::{read_request_pooled, write_response_pooled, ParseError};
use crate::scratch::Scratch;
use crate::types::{Method, Request, Response};

/// A bidirectional byte stream the server can serve HTTP over.
pub trait Transport: Read + Write + Send {}
impl<T: Read + Write + Send> Transport for T {}

/// Information about an authenticated peer, available when the connection
/// came in over the secure channel.
#[derive(Debug, Clone)]
pub struct PeerInfo {
    /// Effective identity (end-entity DN below any proxy certs).
    pub identity: DistinguishedName,
    /// The leaf certificate presented.
    pub certificate: Certificate,
    /// The full presented chain (leaf first).
    pub chain: Vec<Certificate>,
}

/// The application-side request handler.
pub trait Handler: Send + Sync + 'static {
    /// Handle one request. `peer` is `Some` only on TLS connections.
    fn handle(&self, request: Request, peer: Option<&PeerInfo>) -> Response;

    /// Handle one request with a trace riding along. Handlers that time
    /// their internal phases (auth, ACL walk, dispatch, serialization)
    /// override this; the default ignores the trace.
    fn handle_traced(
        &self,
        request: Request,
        peer: Option<&PeerInfo>,
        _trace: &mut RequestTrace,
    ) -> Response {
        self.handle(request, peer)
    }

    /// Handle one request with the worker's scratch arena riding along.
    /// Handlers on the allocation-lean path override this to encode the
    /// response body into a recycled buffer (and recycle the request body
    /// once decoded); the default ignores the arena.
    fn handle_pooled(
        &self,
        request: Request,
        peer: Option<&PeerInfo>,
        trace: &mut RequestTrace,
        _scratch: &mut Scratch,
    ) -> Response {
        self.handle_traced(request, peer, trace)
    }
}

impl<F> Handler for F
where
    F: Fn(Request, Option<&PeerInfo>) -> Response + Send + Sync + 'static,
{
    fn handle(&self, request: Request, peer: Option<&PeerInfo>) -> Response {
        self(request, peer)
    }
}

/// TLS settings for the server side.
pub struct TlsConfig {
    /// Server credential presented to clients.
    pub credential: Credential,
    /// Trust roots used to validate client certificates.
    pub roots: Vec<Certificate>,
}

/// Server configuration.
pub struct ServerConfig {
    /// Number of worker threads (each serves one connection at a time, like
    /// Apache prefork children).
    pub workers: usize,
    /// Maximum decoded request body.
    pub max_body: usize,
    /// Socket read timeout for keep-alive connections.
    pub read_timeout: Duration,
    /// Enable the secure channel. `None` = plaintext HTTP.
    pub tls: Option<TlsConfig>,
    /// Clock used for certificate validation (overridable in tests).
    pub now_fn: Arc<dyn Fn() -> i64 + Send + Sync>,
    /// Telemetry plane to record into. `None` = untraced (tests, tools).
    pub telemetry: Option<Arc<Telemetry>>,
    /// Recycle per-worker scratch buffers across requests. Disable only to
    /// measure the per-request-allocation baseline (every buffer is then
    /// allocated fresh, like the pre-pooling data path).
    pub buffer_pool: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 16,
            max_body: crate::parse::DEFAULT_MAX_BODY,
            read_timeout: Duration::from_secs(30),
            tls: None,
            now_fn: Arc::new(|| {
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_secs() as i64)
                    .unwrap_or(0)
            }),
            telemetry: None,
            buffer_pool: true,
        }
    }
}

/// Monotonic server counters (exposed so benches can report served
/// request totals like the paper's "316 million requests ... completed").
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Requests served (any status).
    pub requests: AtomicU64,
    /// Requests that produced 5xx responses.
    pub errors: AtomicU64,
}

/// A running HTTP server.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    stats: Arc<ServerStats>,
    /// Raw handles of live connections, force-closed on shutdown so that
    /// workers blocked in keep-alive reads wake immediately.
    live: Arc<LiveConnections>,
}

/// Registry of raw socket handles for live connections. Entries are
/// removed (and the clone dropped) when their connection finishes, so the
/// peer observes EOF normally; on server shutdown all remaining handles
/// are force-closed to wake blocked keep-alive reads.
#[derive(Default)]
struct LiveConnections {
    next_id: AtomicU64,
    sockets: parking_lot::Mutex<std::collections::HashMap<u64, TcpStream>>,
}

impl LiveConnections {
    fn register(self: &Arc<Self>, sock: &TcpStream) -> Option<LiveGuard> {
        let clone = sock.try_clone().ok()?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.sockets.lock().insert(id, clone);
        Some(LiveGuard {
            id,
            live: Arc::clone(self),
        })
    }

    fn close_all(&self) {
        for (_, sock) in self.sockets.lock().drain() {
            let _ = sock.shutdown(std::net::Shutdown::Both);
        }
    }
}

struct LiveGuard {
    id: u64,
    live: Arc<LiveConnections>,
}

impl Drop for LiveGuard {
    fn drop(&mut self) {
        self.live.sockets.lock().remove(&self.id);
    }
}

impl HttpServer {
    /// Bind and start serving on `addr` (e.g. `"127.0.0.1:0"`).
    pub fn bind<H: Handler>(
        addr: &str,
        config: ServerConfig,
        handler: Arc<H>,
    ) -> io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        let live = Arc::new(LiveConnections::default());
        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = unbounded();

        let shared = Arc::new(WorkerShared {
            handler,
            tls: config.tls,
            max_body: config.max_body,
            read_timeout: config.read_timeout,
            now_fn: config.now_fn,
            telemetry: config.telemetry,
            buffer_pool: config.buffer_pool,
            stop: Arc::clone(&stop),
            stats: Arc::clone(&stats),
            live: Arc::clone(&live),
        });

        let mut workers = Vec::with_capacity(config.workers);
        for i in 0..config.workers.max(1) {
            let rx = rx.clone();
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("clarens-worker-{i}"))
                    .spawn(move || worker_loop(rx, shared))
                    .expect("spawn worker"),
            );
        }

        let accept_stop = Arc::clone(&stop);
        let accept_stats = Arc::clone(&stats);
        let accept_telemetry = shared.telemetry.clone();
        let acceptor = std::thread::Builder::new()
            .name("clarens-acceptor".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    match stream {
                        Ok(sock) => {
                            accept_stats.connections.fetch_add(1, Ordering::Relaxed);
                            if let Some(t) = &accept_telemetry {
                                t.http.connections.inc();
                            }
                            if tx.send(sock).is_err() {
                                break;
                            }
                        }
                        Err(_) => continue,
                    }
                }
                // Dropping `tx` lets workers drain and exit.
            })
            .expect("spawn acceptor");

        Ok(HttpServer {
            addr: local_addr,
            stop,
            acceptor: Some(acceptor),
            workers,
            stats,
            live,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Server counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Stop accepting and join all threads. Outstanding keep-alive
    /// connections are closed after their current request.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        // Force-close live connections so keep-alive reads return now.
        self.live.close_all();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        // Force-close live connections so keep-alive reads return now.
        self.live.close_all();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

struct WorkerShared<H: Handler> {
    handler: Arc<H>,
    tls: Option<TlsConfig>,
    max_body: usize,
    read_timeout: Duration,
    now_fn: Arc<dyn Fn() -> i64 + Send + Sync>,
    telemetry: Option<Arc<Telemetry>>,
    buffer_pool: bool,
    stop: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    live: Arc<LiveConnections>,
}

fn worker_loop<H: Handler>(rx: Receiver<TcpStream>, shared: Arc<WorkerShared<H>>) {
    // The worker's scratch arena lives as long as the thread: buffers
    // recycle across requests *and* connections.
    let mut scratch = Scratch::new();
    while let Ok(sock) = rx.recv() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let _ = serve_connection(sock, &shared, &mut scratch);
    }
}

fn serve_connection<H: Handler>(
    sock: TcpStream,
    shared: &WorkerShared<H>,
    scratch: &mut Scratch,
) -> Result<(), ParseError> {
    sock.set_read_timeout(Some(shared.read_timeout)).ok();
    sock.set_nodelay(true).ok();

    // Register for forced shutdown; the guard unregisters (dropping the
    // cloned handle) when this connection finishes.
    let _live_guard = shared.live.register(&sock);

    match &shared.tls {
        None => serve_stream(sock, None, shared, scratch),
        Some(tls) => {
            let now = (shared.now_fn)();
            let mut rng = rand::rng();
            match SecureStream::accept(sock, &tls.credential, &tls.roots, now, &mut rng) {
                Ok((stream, chain)) => {
                    let peer = PeerInfo {
                        identity: stream.peer_identity().clone(),
                        certificate: stream.peer_certificate().clone(),
                        chain,
                    };
                    serve_stream(stream, Some(peer), shared, scratch)
                }
                Err(error) => {
                    if let Some(t) = &shared.telemetry {
                        t.http.handshake_failures.inc();
                    }
                    clarens_telemetry::debug!("TLS handshake failed: {error:?}");
                    Ok(())
                }
            }
        }
    }
}

/// Classify a keep-alive read/write I/O failure: the server's own idle
/// timeout firing is normal churn, while everything else means the peer
/// tore the connection down under us.
fn classify_io_error<H: Handler>(error: &io::Error, shared: &WorkerShared<H>) {
    let idle = matches!(
        error.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    );
    if let Some(t) = &shared.telemetry {
        if idle {
            t.http.idle_timeouts.inc();
        } else {
            t.http.peer_resets.inc();
        }
    }
    if !idle {
        clarens_telemetry::debug!("connection reset by peer: {error}");
    }
}

fn serve_stream<S: Transport, H: Handler>(
    stream: S,
    peer: Option<PeerInfo>,
    shared: &WorkerShared<H>,
    scratch: &mut Scratch,
) -> Result<(), ParseError> {
    let mut reader = BufReader::new(stream);
    let mut served = 0u64;
    loop {
        // The trace opens before the read, so for keep-alive connections
        // the parse phase includes time spent waiting for the next request
        // (negligible under the closed-loop benchmark workloads).
        let mut trace = match &shared.telemetry {
            Some(t) => t.begin_request(),
            None => RequestTrace::disabled(),
        };
        let reuses_before = scratch.reuses();
        let request = match trace.span(Phase::Parse, || {
            read_request_pooled(&mut reader, shared.max_body, scratch)
        }) {
            Ok(req) => req,
            Err(ParseError::Eof) => return Ok(()), // clean close between requests
            Err(ParseError::Io(error)) => {
                classify_io_error(&error, shared);
                return Ok(());
            }
            Err(ParseError::Protocol(status, message)) => {
                shared.stats.requests.fetch_add(1, Ordering::Relaxed);
                let response = Response::error(status, &message);
                if let Some(t) = &shared.telemetry {
                    trace.status = status;
                    t.finish_request(&trace, (shared.now_fn)());
                }
                let _ = write_response_pooled(reader.get_mut(), response, false, false, scratch);
                return Ok(());
            }
        };
        let keep_alive = request.wants_keep_alive() && !shared.stop.load(Ordering::SeqCst);
        let head_only = request.method == Method::Head;
        shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        if served > 0 {
            if let Some(t) = &shared.telemetry {
                t.http.keepalive_reuse.inc();
            }
        }
        served += 1;

        let response = shared
            .handler
            .handle_pooled(request, peer.as_ref(), &mut trace, scratch);
        if response.status >= 500 {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
        }
        trace.status = response.status;
        let written = trace.span(Phase::Write, || {
            write_response_pooled(reader.get_mut(), response, keep_alive, head_only, scratch)
        });
        if let Some(t) = &shared.telemetry {
            if let Ok(total) = written {
                t.http.bytes_out.add(total);
            }
            t.http
                .buffer_pool_reuse
                .add(scratch.reuses().wrapping_sub(reuses_before));
            t.finish_request(&trace, (shared.now_fn)());
        }
        if let Err(error) = written {
            classify_io_error(&error, shared);
            return Err(ParseError::Io(error));
        }
        if !shared.buffer_pool {
            scratch.purge();
        }
        if !keep_alive {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::read_response;

    fn echo_handler() -> Arc<impl Handler> {
        Arc::new(|req: Request, peer: Option<&PeerInfo>| {
            let who = peer
                .map(|p| p.identity.to_string())
                .unwrap_or_else(|| "anonymous".to_string());
            Response::ok(
                "text/plain",
                format!(
                    "{} {} {} {}",
                    req.method.as_str(),
                    req.target,
                    who,
                    req.body.len()
                ),
            )
        })
    }

    /// Short keep-alive timeout so `shutdown()` joins quickly in tests.
    fn test_config() -> ServerConfig {
        ServerConfig {
            read_timeout: Duration::from_millis(200),
            ..Default::default()
        }
    }

    fn start_plain() -> HttpServer {
        HttpServer::bind("127.0.0.1:0", test_config(), echo_handler()).unwrap()
    }

    fn raw_roundtrip(addr: SocketAddr, request: &str) -> (u16, Vec<u8>) {
        let mut sock = TcpStream::connect(addr).unwrap();
        sock.write_all(request.as_bytes()).unwrap();
        let mut reader = BufReader::new(sock);
        let resp = read_response(&mut reader, usize::MAX).unwrap();
        (resp.status, resp.body)
    }

    #[test]
    fn serves_get() {
        let server = start_plain();
        let (status, body) =
            raw_roundtrip(server.local_addr(), "GET /x HTTP/1.1\r\nHost: h\r\n\r\n");
        assert_eq!(status, 200);
        assert_eq!(body, b"GET /x anonymous 0");
        server.shutdown();
    }

    #[test]
    fn keep_alive_multiple_requests() {
        let server = start_plain();
        let mut sock = TcpStream::connect(server.local_addr()).unwrap();
        for i in 0..5 {
            let req = format!("GET /r{i} HTTP/1.1\r\nHost: h\r\n\r\n");
            sock.write_all(req.as_bytes()).unwrap();
        }
        let mut reader = BufReader::new(sock);
        for i in 0..5 {
            let resp = read_response(&mut reader, usize::MAX).unwrap();
            assert_eq!(resp.status, 200);
            assert_eq!(resp.body, format!("GET /r{i} anonymous 0").as_bytes());
            assert!(resp.keep_alive);
        }
        assert_eq!(server.stats().requests.load(Ordering::Relaxed), 5);
        assert_eq!(server.stats().connections.load(Ordering::Relaxed), 1);
        server.shutdown();
    }

    #[test]
    fn post_body_delivered() {
        let server = start_plain();
        let (status, body) = raw_roundtrip(
            server.local_addr(),
            "POST /rpc HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nabcd",
        );
        assert_eq!(status, 200);
        assert_eq!(body, b"POST /rpc anonymous 4");
        server.shutdown();
    }

    #[test]
    fn bad_request_answered_not_dropped() {
        let server = start_plain();
        let (status, _) = raw_roundtrip(server.local_addr(), "NONSENSE\r\n\r\n");
        assert_eq!(status, 400);
        let (status, _) = raw_roundtrip(server.local_addr(), "BREW / HTTP/1.1\r\nHost: h\r\n\r\n");
        assert_eq!(status, 501);
        server.shutdown();
    }

    #[test]
    fn connection_close_honored() {
        let server = start_plain();
        let mut sock = TcpStream::connect(server.local_addr()).unwrap();
        sock.write_all(b"GET / HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut reader = BufReader::new(sock);
        let resp = read_response(&mut reader, usize::MAX).unwrap();
        assert!(!resp.keep_alive);
        // Server must actually close: next read returns EOF.
        let mut probe = [0u8; 1];
        assert_eq!(reader.read(&mut probe).unwrap(), 0);
        server.shutdown();
    }

    #[test]
    fn concurrent_clients() {
        let server = start_plain();
        let addr = server.local_addr();
        let mut handles = Vec::new();
        for t in 0..8 {
            handles.push(std::thread::spawn(move || {
                for i in 0..20 {
                    let (status, body) = raw_roundtrip(
                        addr,
                        &format!("GET /t{t}-{i} HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n"),
                    );
                    assert_eq!(status, 200);
                    assert_eq!(body, format!("GET /t{t}-{i} anonymous 0").as_bytes());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.stats().requests.load(Ordering::Relaxed), 160);
        server.shutdown();
    }

    #[test]
    fn oversized_body_rejected() {
        let config = ServerConfig {
            max_body: 10,
            ..test_config()
        };
        let server = HttpServer::bind("127.0.0.1:0", config, echo_handler()).unwrap();
        let (status, _) = raw_roundtrip(
            server.local_addr(),
            "POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 1000\r\n\r\n",
        );
        assert_eq!(status, 413);
        server.shutdown();
    }

    #[test]
    fn io_errors_classified_idle_vs_reset() {
        let telemetry = Telemetry::enabled();
        let config = ServerConfig {
            telemetry: Some(Arc::clone(&telemetry)),
            ..test_config()
        };
        let server = HttpServer::bind("127.0.0.1:0", config, echo_handler()).unwrap();

        // Idle past the read timeout: counted as an idle timeout.
        let idle_sock = TcpStream::connect(server.local_addr()).unwrap();
        std::thread::sleep(Duration::from_millis(400));
        drop(idle_sock);

        // Close mid-request (truncated body → UnexpectedEof): counted as
        // a peer reset, not a clean close.
        let mut reset_sock = TcpStream::connect(server.local_addr()).unwrap();
        reset_sock
            .write_all(b"POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 100\r\n\r\npartial")
            .unwrap();
        drop(reset_sock);
        std::thread::sleep(Duration::from_millis(100));

        assert_eq!(telemetry.http.idle_timeouts.get(), 1);
        assert_eq!(telemetry.http.peer_resets.get(), 1);
        // Neither path counts as a completed request.
        assert_eq!(telemetry.http.requests.get(), 0);
        assert_eq!(telemetry.http.connections.get(), 2);
        server.shutdown();
    }

    #[test]
    fn telemetry_counts_requests_and_keepalive_reuse() {
        let telemetry = Telemetry::enabled();
        let config = ServerConfig {
            telemetry: Some(Arc::clone(&telemetry)),
            ..test_config()
        };
        let server = HttpServer::bind("127.0.0.1:0", config, echo_handler()).unwrap();
        let mut sock = TcpStream::connect(server.local_addr()).unwrap();
        for i in 0..3 {
            let req = format!("GET /r{i} HTTP/1.1\r\nHost: h\r\n\r\n");
            sock.write_all(req.as_bytes()).unwrap();
        }
        let mut reader = BufReader::new(sock);
        for _ in 0..3 {
            assert_eq!(read_response(&mut reader, usize::MAX).unwrap().status, 200);
        }
        drop(reader);
        server.shutdown();
        assert_eq!(telemetry.http.requests.get(), 3);
        assert_eq!(telemetry.http.keepalive_reuse.get(), 2);
        // Spans were timed: parse and write histograms saw every request.
        let phases = telemetry.phase_snapshots();
        assert_eq!(phases[Phase::Parse as usize].1.count, 3);
        assert_eq!(phases[Phase::Write as usize].1.count, 3);
        assert_eq!(phases.last().unwrap().1.count, 3);
    }

    #[test]
    fn head_omits_body() {
        let server = start_plain();
        let mut sock = TcpStream::connect(server.local_addr()).unwrap();
        sock.write_all(b"HEAD /h HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut text = String::new();
        BufReader::new(sock).read_to_string(&mut text).unwrap();
        assert!(text.contains("content-length: 19")); // "HEAD /h anonymous 0"
        assert!(!text.contains("anonymous"));
        server.shutdown();
    }
}
