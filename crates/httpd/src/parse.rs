//! HTTP/1.1 wire parsing and serialization.
//!
//! Implements the subset of RFC 7230 the Clarens stack needs: request and
//! status lines, header fields, `Content-Length` and `chunked` bodies, with
//! hard limits so a hostile peer cannot exhaust memory.

use std::io::{self, BufRead, IoSlice, Read, Write};

use crate::scratch::Scratch;
use crate::types::{reason, Body, Headers, Method, Request, Response};

/// Maximum total header block size (Apache's default is 8 KiB per line;
/// we bound the whole block).
pub const MAX_HEADER_BYTES: usize = 32 * 1024;
/// Maximum request-line length.
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Default maximum body size (file uploads go through the file service
/// which chunks them, so this is generous but bounded).
pub const DEFAULT_MAX_BODY: usize = 64 * 1024 * 1024;
/// Streaming copy buffer (the `sendfile()`-like path).
pub const COPY_BUFFER: usize = 64 * 1024;

/// Parse failure: either a protocol error (with the HTTP status the server
/// should answer) or an I/O error.
#[derive(Debug)]
pub enum ParseError {
    /// Protocol violation; respond with this status code.
    Protocol(u16, String),
    /// Transport error (including clean EOF before a request line).
    Io(io::Error),
    /// Clean connection close (EOF exactly at a message boundary).
    Eof,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Protocol(status, m) => write!(f, "HTTP {status}: {m}"),
            ParseError::Io(e) => write!(f, "I/O: {e}"),
            ParseError::Eof => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Read one CRLF- (or LF-) terminated line without the terminator.
///
/// Scans the reader's internal buffer via `read_until` rather than pulling
/// one byte at a time — line reading is on the per-request hot path, and a
/// byte-at-a-time loop pays a dispatched `read` call per header byte. The
/// `take` bound keeps an unterminated line from buffering more than
/// `limit` bytes (+2 allows the CRLF terminator on a maximal line).
fn read_line_into<'a, R: BufRead>(
    reader: &mut R,
    limit: usize,
    line: &'a mut Vec<u8>,
) -> Result<&'a str, ParseError> {
    line.clear();
    let n = reader
        .by_ref()
        .take(limit as u64 + 2)
        .read_until(b'\n', line)?;
    if n == 0 {
        return Err(ParseError::Eof);
    }
    if line.last() != Some(&b'\n') {
        // No terminator: either the bound was hit (oversized line) or the
        // stream ended mid-line.
        if line.len() > limit {
            return Err(ParseError::Protocol(431, "line too long".into()));
        }
        return Err(ParseError::Io(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "EOF mid-line",
        )));
    }
    line.pop();
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    if line.len() > limit {
        return Err(ParseError::Protocol(431, "line too long".into()));
    }
    std::str::from_utf8(line).map_err(|_| ParseError::Protocol(400, "non-UTF-8 header line".into()))
}

/// Parse a request from a buffered reader. `max_body` bounds decoded body
/// size. Allocates working buffers fresh; the server's hot path goes
/// through [`read_request_pooled`] instead.
pub fn read_request<R: BufRead>(reader: &mut R, max_body: usize) -> Result<Request, ParseError> {
    read_request_pooled(reader, max_body, &mut Scratch::new())
}

/// Parse a request drawing the line and body buffers from a per-worker
/// [`Scratch`] arena, so steady-state keep-alive parsing allocates nothing
/// beyond the owned header/target strings.
pub fn read_request_pooled<R: BufRead>(
    reader: &mut R,
    max_body: usize,
    scratch: &mut Scratch,
) -> Result<Request, ParseError> {
    let mut line_buf = scratch.take();
    let result = read_request_with(reader, max_body, &mut line_buf, scratch);
    scratch.recycle(line_buf);
    result
}

fn read_request_with<R: BufRead>(
    reader: &mut R,
    max_body: usize,
    line_buf: &mut Vec<u8>,
    scratch: &mut Scratch,
) -> Result<Request, ParseError> {
    let (method, target, minor_version) = {
        let request_line = read_line_into(reader, MAX_REQUEST_LINE, line_buf)?;
        let mut parts = request_line.split(' ');
        let method_token = parts.next().unwrap_or("");
        let target = parts
            .next()
            .ok_or_else(|| ParseError::Protocol(400, "missing request target".into()))?;
        let version = parts
            .next()
            .ok_or_else(|| ParseError::Protocol(400, "missing HTTP version".into()))?;
        if parts.next().is_some() {
            return Err(ParseError::Protocol(400, "malformed request line".into()));
        }
        let method = Method::parse(method_token)
            .ok_or_else(|| ParseError::Protocol(501, format!("method {method_token:?}")))?;
        let minor_version = match version {
            "HTTP/1.1" => 1,
            "HTTP/1.0" => 0,
            other => return Err(ParseError::Protocol(505, format!("version {other:?}"))),
        };
        if target.len() > MAX_REQUEST_LINE {
            return Err(ParseError::Protocol(414, "target too long".into()));
        }
        (method, target.to_owned(), minor_version)
    };

    let headers = read_headers_with(reader, line_buf)?;
    let body = read_body_with(reader, &headers, max_body, line_buf, scratch.take())?;

    Ok(Request {
        method,
        target,
        minor_version,
        headers,
        body,
    })
}

fn read_headers<R: BufRead>(reader: &mut R) -> Result<Headers, ParseError> {
    read_headers_with(reader, &mut Vec::with_capacity(64))
}

fn read_headers_with<R: BufRead>(
    reader: &mut R,
    line_buf: &mut Vec<u8>,
) -> Result<Headers, ParseError> {
    let mut headers = Headers::new();
    let mut total = 0usize;
    loop {
        let line = match read_line_into(reader, MAX_HEADER_BYTES, line_buf) {
            Ok(l) => l,
            Err(ParseError::Eof) => {
                return Err(ParseError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF in headers",
                )))
            }
            Err(e) => return Err(e),
        };
        if line.is_empty() {
            return Ok(headers);
        }
        total += line.len();
        if total > MAX_HEADER_BYTES {
            return Err(ParseError::Protocol(431, "header block too large".into()));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError::Protocol(400, format!("bad header line {line:?}")))?;
        if name.is_empty() || name.contains(' ') {
            return Err(ParseError::Protocol(
                400,
                format!("bad header name {name:?}"),
            ));
        }
        let value = value.trim();
        // Repeated headers: comma-join per RFC 7230 §3.2.2.
        match headers.get(name) {
            Some(existing) => {
                let joined = format!("{existing}, {value}");
                headers.set(name, joined);
            }
            None => headers.set(name, value),
        }
    }
}

fn read_body<R: BufRead>(
    reader: &mut R,
    headers: &Headers,
    max_body: usize,
) -> Result<Vec<u8>, ParseError> {
    read_body_with(
        reader,
        headers,
        max_body,
        &mut Vec::with_capacity(64),
        Vec::new(),
    )
}

/// Read the message body into `body` (an empty, possibly pre-capacitized
/// recycled buffer) and return it.
fn read_body_with<R: BufRead>(
    reader: &mut R,
    headers: &Headers,
    max_body: usize,
    line_buf: &mut Vec<u8>,
    mut body: Vec<u8>,
) -> Result<Vec<u8>, ParseError> {
    debug_assert!(body.is_empty());
    if let Some(te) = headers.get("transfer-encoding") {
        if te.to_ascii_lowercase().contains("chunked") {
            return read_chunked_with(reader, max_body, line_buf, body);
        }
        return Err(ParseError::Protocol(
            501,
            format!("transfer-encoding {te:?}"),
        ));
    }
    match headers.get("content-length") {
        None => Ok(body),
        Some(text) => {
            let len: usize = text
                .trim()
                .parse()
                .map_err(|_| ParseError::Protocol(400, format!("bad content-length {text:?}")))?;
            if len > max_body {
                return Err(ParseError::Protocol(413, format!("body of {len} bytes")));
            }
            body.resize(len, 0);
            reader.read_exact(&mut body).map_err(ParseError::Io)?;
            Ok(body)
        }
    }
}

fn read_chunked_with<R: BufRead>(
    reader: &mut R,
    max_body: usize,
    line_buf: &mut Vec<u8>,
    mut body: Vec<u8>,
) -> Result<Vec<u8>, ParseError> {
    loop {
        let size = {
            let size_line = read_line_into(reader, 64, line_buf).map_err(|e| match e {
                ParseError::Eof => ParseError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF in chunk size",
                )),
                other => other,
            })?;
            // Chunk extensions after ';' are ignored.
            let size_text = size_line.split(';').next().unwrap_or("").trim();
            usize::from_str_radix(size_text, 16)
                .map_err(|_| ParseError::Protocol(400, format!("bad chunk size {size_line:?}")))?
        };
        if body.len() + size > max_body {
            return Err(ParseError::Protocol(413, "chunked body too large".into()));
        }
        if size == 0 {
            // Trailer section: read until the blank line.
            loop {
                let trailer = read_line_into(reader, MAX_HEADER_BYTES, line_buf)?;
                if trailer.is_empty() {
                    return Ok(body);
                }
            }
        }
        let start = body.len();
        body.resize(start + size, 0);
        reader
            .read_exact(&mut body[start..])
            .map_err(ParseError::Io)?;
        // Chunk data is followed by CRLF.
        let blank = read_line_into(reader, 8, line_buf)?;
        if !blank.is_empty() {
            return Err(ParseError::Protocol(400, "missing chunk terminator".into()));
        }
    }
}

/// Serialize and send a response. `head_only` suppresses the body (HEAD).
/// Returns the number of body bytes written.
pub fn write_response<W: Write>(
    writer: &mut W,
    response: Response,
    keep_alive: bool,
    head_only: bool,
) -> io::Result<u64> {
    let body_len = if head_only { 0 } else { response.body.len() };
    write_response_pooled(writer, response, keep_alive, head_only, &mut Scratch::new())?;
    Ok(body_len)
}

/// Marker payload inside an `io::Error` for a body that ended before its
/// advertised `Content-Length`. The framing on the connection is
/// unrecoverable at that point — the next response would land mid-body —
/// so detectors force `Connection: close` and telemetry counts the event
/// separately from peer resets.
#[derive(Debug)]
pub struct BodyTruncated {
    /// Bytes promised by `content-length` but never produced.
    pub missing: u64,
}

impl std::fmt::Display for BodyTruncated {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "body truncated {} bytes short of content-length",
            self.missing
        )
    }
}

impl std::error::Error for BodyTruncated {}

/// Build the truncation error for a body that came up `missing` bytes short.
pub(crate) fn truncated(missing: u64) -> io::Error {
    io::Error::new(io::ErrorKind::UnexpectedEof, BodyTruncated { missing })
}

/// Was this write failure a [`BodyTruncated`] short body (as opposed to a
/// transport error)?
pub fn is_truncation(error: &io::Error) -> bool {
    error
        .get_ref()
        .is_some_and(|inner| inner.is::<BodyTruncated>())
}

/// Encode the status line + headers (including `content-length`,
/// `connection` and `server`) into `head`. Shared by the blocking writer
/// and the event-mode parking writer so both paths emit byte-identical
/// responses.
pub(crate) fn encode_head(
    response: &Response,
    keep_alive: bool,
    head: &mut Vec<u8>,
) -> io::Result<()> {
    write!(
        head,
        "HTTP/1.1 {} {}\r\n",
        response.status,
        reason(response.status)
    )?;
    for (name, value) in response.headers.iter() {
        head.extend_from_slice(name.as_bytes());
        head.extend_from_slice(b": ");
        head.extend_from_slice(value.as_bytes());
        head.extend_from_slice(b"\r\n");
    }
    write!(head, "content-length: {}\r\n", response.body.len())?;
    head.extend_from_slice(if keep_alive {
        b"connection: keep-alive\r\n".as_slice()
    } else {
        b"connection: close\r\n".as_slice()
    });
    head.extend_from_slice(b"server: clarens-rs/0.1\r\n\r\n");
    Ok(())
}

/// Positioned read that leaves the file cursor untouched (the parked-writer
/// machinery resumes from a saved offset, never from the cursor).
pub(crate) fn read_file_at(file: &std::fs::File, buf: &mut [u8], offset: u64) -> io::Result<usize> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        file.read_at(buf, offset)
    }
    #[cfg(not(unix))]
    {
        use std::io::{Seek, SeekFrom};
        let mut f = file;
        f.seek(SeekFrom::Start(offset))?;
        f.read(buf)
    }
}

/// Options for [`write_response_opts`]: the raw socket fd when the writer
/// is a plaintext socket (enables `sendfile(2)` for [`Body::File`]) and
/// the `zero_copy` config knob.
#[derive(Clone, Copy, Debug, Default)]
pub struct WriteOpts {
    /// Raw fd of the destination socket, if the writer IS that socket with
    /// no encryption or buffering layered in between.
    pub out_fd: Option<i32>,
    /// Whether zero-copy transfer is enabled (config `zero_copy`).
    pub zero_copy: bool,
}

/// Byte accounting from one response write.
#[derive(Clone, Copy, Debug, Default)]
pub struct WriteOutcome {
    /// Total bytes written (head + body) for the `bytes_out` counter.
    pub total: u64,
    /// Subset of the body that went through `sendfile(2)`.
    pub sendfile: u64,
}

/// Serialize and send a response using scratch buffers for the head and the
/// copy loop, and a single vectored write for head + body.
///
/// On success the status line, headers, and an in-memory body leave in one
/// `writev` syscall instead of two `write`s; the body buffer is recycled
/// into `scratch` afterwards so the next response on this worker encodes
/// into it. Returns the **total** bytes written (head + body) for the
/// `bytes_out` telemetry counter.
pub fn write_response_pooled<W: Write>(
    writer: &mut W,
    response: Response,
    keep_alive: bool,
    head_only: bool,
    scratch: &mut Scratch,
) -> io::Result<u64> {
    write_response_opts(
        writer,
        response,
        keep_alive,
        head_only,
        scratch,
        WriteOpts::default(),
    )
    .map(|outcome| outcome.total)
}

/// [`write_response_pooled`] with a zero-copy escape hatch: when `opts`
/// names the destination socket fd and zero-copy is on, a [`Body::File`]
/// goes through `sendfile(2)` on Linux instead of a userspace copy loop.
/// Blocking sockets only — the event path drives its own resumable state
/// machine in `conn.rs`.
pub fn write_response_opts<W: Write>(
    writer: &mut W,
    response: Response,
    keep_alive: bool,
    head_only: bool,
    scratch: &mut Scratch,
    opts: WriteOpts,
) -> io::Result<WriteOutcome> {
    let mut head = scratch.take();
    encode_head(&response, keep_alive, &mut head)?;

    let head_len = head.len() as u64;
    let mut sendfile_bytes = 0u64;
    let body_written: io::Result<u64> = match response.body {
        Body::Bytes(bytes) => {
            let body_slice: &[u8] = if head_only { &[] } else { &bytes };
            let result =
                write_all_vectored(writer, &head, body_slice).map(|()| body_slice.len() as u64);
            scratch.recycle(bytes);
            result
        }
        Body::Sized(len) => {
            // Metadata-only body: legal for HEAD (and trivially for a zero
            // length); anything else would under-deliver the framing.
            if head_only || len == 0 {
                writer.write_all(&head).map(|()| 0)
            } else {
                Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "Body::Sized has no bytes to send",
                ))
            }
        }
        Body::File { file, offset, len } => {
            let mut result = writer.write_all(&head);
            let mut written = 0u64;
            if result.is_ok() && !head_only {
                result = write_file_segment(
                    writer,
                    &file,
                    offset,
                    len,
                    scratch,
                    opts,
                    &mut written,
                    &mut sendfile_bytes,
                );
            }
            result.map(|()| written)
        }
        Body::Stream { mut reader, len } => {
            // Fixed buffer (recycled across responses), no intermediate
            // allocation proportional to the file size.
            let mut result = writer.write_all(&head);
            let mut written = 0u64;
            let mut buf = scratch.take();
            if result.is_ok() && !head_only {
                buf.resize(COPY_BUFFER, 0);
                let mut remaining = len;
                while remaining > 0 {
                    let want = (remaining as usize).min(buf.len());
                    match reader.read(&mut buf[..want]) {
                        Ok(0) => {
                            result = Err(truncated(remaining));
                            break;
                        }
                        Ok(n) => {
                            if let Err(e) = writer.write_all(&buf[..n]) {
                                result = Err(e);
                                break;
                            }
                            remaining -= n as u64;
                            written += n as u64;
                        }
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(e) => {
                            result = Err(e);
                            break;
                        }
                    }
                }
            }
            scratch.recycle(buf);
            result.map(|()| written)
        }
    };
    scratch.recycle(head);
    let body_written = body_written?;
    writer.flush()?;
    Ok(WriteOutcome {
        total: head_len + body_written,
        sendfile: sendfile_bytes,
    })
}

/// Send `[offset, offset + len)` of `file`: `sendfile(2)` when the caller
/// handed us the socket fd and zero-copy is on, positioned-read copies
/// otherwise (and as the fallback when the kernel refuses sendfile for
/// this fd pair).
#[allow(clippy::too_many_arguments)]
fn write_file_segment<W: Write>(
    writer: &mut W,
    file: &std::fs::File,
    offset: u64,
    len: u64,
    scratch: &mut Scratch,
    opts: WriteOpts,
    written: &mut u64,
    sendfile_bytes: &mut u64,
) -> io::Result<()> {
    let mut pos = offset;
    let end = offset + len;
    #[cfg(unix)]
    if opts.zero_copy && crate::zerocopy::available() {
        if let Some(sock_fd) = opts.out_fd {
            use std::os::unix::io::AsRawFd;
            // The head is still in the writer's path; everything queued so
            // far must hit the socket before bytes bypass the writer.
            writer.flush()?;
            let file_fd = file.as_raw_fd();
            while pos < end {
                let want = ((end - pos) as usize).min(usize::MAX / 2);
                match crate::zerocopy::send_file(sock_fd, file_fd, &mut pos, want) {
                    Ok(0) => return Err(truncated(end - pos)),
                    Ok(n) => {
                        *written += n as u64;
                        *sendfile_bytes += n as u64;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) if e.kind() == io::ErrorKind::Unsupported && pos == offset => {
                        // Kernel refused this fd pair before any byte moved:
                        // fall through to the buffered loop below.
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }
            if pos == end {
                return Ok(());
            }
        }
    }
    let mut buf = scratch.take();
    buf.resize(COPY_BUFFER, 0);
    let mut result = Ok(());
    while pos < end {
        let want = ((end - pos) as usize).min(buf.len());
        match read_file_at(file, &mut buf[..want], pos) {
            Ok(0) => {
                result = Err(truncated(end - pos));
                break;
            }
            Ok(n) => {
                if let Err(e) = writer.write_all(&buf[..n]) {
                    result = Err(e);
                    break;
                }
                pos += n as u64;
                *written += n as u64;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => {
                result = Err(e);
                break;
            }
        }
    }
    scratch.recycle(buf);
    result
}

/// Outcome of resolving a `Range` request header against an entity of
/// `len` bytes (RFC 7233; single `bytes=` range only — multi-range and
/// malformed headers are ignored, which RFC 7233 §3.1 permits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeOutcome {
    /// No usable range — serve the whole entity with 200.
    Whole,
    /// Serve bytes `start..=end` with 206 and a `Content-Range`.
    Partial {
        /// First byte (inclusive).
        start: u64,
        /// Last byte (inclusive); always `< len`.
        end: u64,
    },
    /// The range addresses no byte of the entity — answer 416 with
    /// `Content-Range: bytes */len`.
    Unsatisfiable,
}

/// Resolve an optional `Range` header value against an entity length.
pub fn resolve_range(header: Option<&str>, len: u64) -> RangeOutcome {
    let Some(value) = header else {
        return RangeOutcome::Whole;
    };
    // Only the bytes unit is defined for us; other units are ignored.
    let Some(spec) = value.trim().strip_prefix("bytes=") else {
        return RangeOutcome::Whole;
    };
    let spec = spec.trim();
    if spec.contains(',') {
        // Multi-range: a server MAY ignore Range; serving the whole entity
        // with 200 is always correct and avoids multipart framing.
        return RangeOutcome::Whole;
    }
    let Some((first, last)) = spec.split_once('-') else {
        return RangeOutcome::Whole;
    };
    let (first, last) = (first.trim(), last.trim());
    match (first.is_empty(), last.is_empty()) {
        (true, true) => RangeOutcome::Whole,
        // Suffix form `-N`: the final N bytes.
        (true, false) => {
            let Ok(n) = last.parse::<u64>() else {
                return RangeOutcome::Whole;
            };
            if n == 0 || len == 0 {
                return RangeOutcome::Unsatisfiable;
            }
            RangeOutcome::Partial {
                start: len.saturating_sub(n),
                end: len - 1,
            }
        }
        // Open-ended `N-`: from N to the end.
        (false, true) => {
            let Ok(start) = first.parse::<u64>() else {
                return RangeOutcome::Whole;
            };
            if start >= len {
                return RangeOutcome::Unsatisfiable;
            }
            RangeOutcome::Partial {
                start,
                end: len - 1,
            }
        }
        // Closed `A-B`.
        (false, false) => {
            let (Ok(start), Ok(end)) = (first.parse::<u64>(), last.parse::<u64>()) else {
                return RangeOutcome::Whole;
            };
            if start > end {
                // Syntactically invalid byte-range-spec: ignore the header.
                return RangeOutcome::Whole;
            }
            if start >= len {
                return RangeOutcome::Unsatisfiable;
            }
            RangeOutcome::Partial {
                start,
                end: end.min(len - 1),
            }
        }
    }
}

/// Write `head` then `body` completely, preferring a vectored write that
/// sends both in one syscall. Writers without real `writev` support (the
/// default `Write::write_vectored` writes only the first buffer, as does
/// the TLS stream) degrade gracefully: the loop treats every return as a
/// partial write and advances through both slices.
fn write_all_vectored<W: Write>(
    writer: &mut W,
    mut head: &[u8],
    mut body: &[u8],
) -> io::Result<()> {
    while !head.is_empty() || !body.is_empty() {
        let wrote = if head.is_empty() {
            writer.write(body)
        } else if body.is_empty() {
            writer.write(head)
        } else {
            writer.write_vectored(&[IoSlice::new(head), IoSlice::new(body)])
        };
        match wrote {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "failed to write whole response",
                ))
            }
            Ok(n) => {
                let from_head = n.min(head.len());
                head = &head[from_head..];
                body = &body[(n - from_head).min(body.len())..];
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Serialize and send a request (client side). The body always uses
/// Content-Length framing.
pub fn write_request<W: Write>(writer: &mut W, request: &Request) -> io::Result<()> {
    let mut head = format!(
        "{} {} HTTP/1.{}\r\n",
        request.method.as_str(),
        request.target,
        request.minor_version
    );
    for (name, value) in request.headers.iter() {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    if !request.body.is_empty() || request.method == Method::Post {
        head.push_str(&format!("content-length: {}\r\n", request.body.len()));
    }
    head.push_str("\r\n");
    writer.write_all(head.as_bytes())?;
    writer.write_all(&request.body)?;
    writer.flush()
}

/// A response as the client sees it (always fully buffered).
#[derive(Debug)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Headers.
    pub headers: Headers,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Whether the server will keep the connection open.
    pub keep_alive: bool,
}

/// Parse a response from a buffered reader (client side).
pub fn read_response<R: BufRead>(
    reader: &mut R,
    max_body: usize,
) -> Result<ClientResponse, ParseError> {
    let mut line_buf = Vec::with_capacity(64);
    let status_line = read_line_into(reader, MAX_REQUEST_LINE, &mut line_buf)?;
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ParseError::Protocol(
            502,
            format!("bad status line {status_line:?}"),
        ));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ParseError::Protocol(502, format!("bad status in {status_line:?}")))?;
    let headers = read_headers(reader)?;
    let body = read_body(reader, &headers, max_body)?;
    let keep_alive = headers
        .get("connection")
        .map(|c| !c.to_ascii_lowercase().contains("close"))
        .unwrap_or(version == "HTTP/1.1");
    Ok(ClientResponse {
        status,
        headers,
        body,
        keep_alive,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(text: &[u8]) -> Result<Request, ParseError> {
        read_request(&mut BufReader::new(text), DEFAULT_MAX_BODY)
    }

    #[test]
    fn simple_get() {
        let req = parse(b"GET /clarens?x=1 HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path(), "/clarens");
        assert_eq!(req.query(), "x=1");
        assert_eq!(req.headers.get("host"), Some("localhost"));
        assert!(req.body.is_empty());
        assert!(req.wants_keep_alive());
    }

    #[test]
    fn post_with_content_length() {
        let req = parse(
            b"POST /rpc HTTP/1.1\r\nContent-Type: text/xml\r\nContent-Length: 11\r\n\r\nhello world",
        )
        .unwrap();
        assert_eq!(req.body, b"hello world");
        assert_eq!(req.headers.get("content-type"), Some("text/xml"));
    }

    #[test]
    fn chunked_body() {
        let req = parse(
            b"POST /rpc HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n6;ext=1\r\n world\r\n0\r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.body, b"hello world");
    }

    #[test]
    fn chunked_with_trailers() {
        let req = parse(
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabc\r\n0\r\nX-Sum: 1\r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.body, b"abc");
    }

    #[test]
    fn lf_only_lines_accepted() {
        let req = parse(b"GET / HTTP/1.1\nHost: x\n\n").unwrap();
        assert_eq!(req.headers.get("host"), Some("x"));
    }

    #[test]
    fn repeated_headers_joined() {
        let req = parse(b"GET / HTTP/1.1\r\nAccept: a\r\nAccept: b\r\n\r\n").unwrap();
        assert_eq!(req.headers.get("accept"), Some("a, b"));
    }

    #[test]
    fn protocol_errors() {
        match parse(b"BREW / HTTP/1.1\r\n\r\n") {
            Err(ParseError::Protocol(501, _)) => {}
            other => panic!("{other:?}"),
        }
        match parse(b"GET / HTTP/2.0\r\n\r\n") {
            Err(ParseError::Protocol(505, _)) => {}
            other => panic!("{other:?}"),
        }
        match parse(b"GET /\r\n\r\n") {
            Err(ParseError::Protocol(400, _)) => {}
            other => panic!("{other:?}"),
        }
        match parse(b"GET / HTTP/1.1\r\nBad Header Name: x\r\n\r\n") {
            Err(ParseError::Protocol(400, _)) => {}
            other => panic!("{other:?}"),
        }
        match parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n") {
            Err(ParseError::Protocol(400, _)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn eof_before_request_is_clean() {
        match parse(b"") {
            Err(ParseError::Eof) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn eof_mid_request_is_io_error() {
        match parse(b"GET / HTT") {
            Err(ParseError::Io(_)) => {}
            other => panic!("{other:?}"),
        }
        match parse(b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort") {
            Err(ParseError::Io(_)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn body_size_limit_enforced() {
        let req = b"POST / HTTP/1.1\r\nContent-Length: 1000\r\n\r\n";
        match read_request(&mut BufReader::new(&req[..]), 100) {
            Err(ParseError::Protocol(413, _)) => {}
            other => panic!("{other:?}"),
        }
        let chunked = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nfff\r\n";
        match read_request(&mut BufReader::new(&chunked[..]), 100) {
            Err(ParseError::Protocol(413, _)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn response_roundtrip() {
        let mut wire = Vec::new();
        let resp = Response::ok("text/xml", "<methodResponse/>");
        let written = write_response(&mut wire, resp, true, false).unwrap();
        assert_eq!(written, 17);
        let parsed = read_response(&mut BufReader::new(&wire[..]), DEFAULT_MAX_BODY).unwrap();
        assert_eq!(parsed.status, 200);
        assert_eq!(parsed.body, b"<methodResponse/>");
        assert!(parsed.keep_alive);
        assert_eq!(parsed.headers.get("content-type"), Some("text/xml"));
    }

    #[test]
    fn head_suppresses_body_but_keeps_length() {
        let mut wire = Vec::new();
        write_response(&mut wire, Response::ok("text/plain", "body"), false, true).unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.contains("content-length: 4"));
        assert!(!text.ends_with("body"));
        assert!(text.contains("connection: close"));
    }

    #[test]
    fn streaming_body_written_fully() {
        let data = vec![7u8; 200_000];
        let mut wire = Vec::new();
        let resp = Response::stream(
            "application/octet-stream",
            Box::new(std::io::Cursor::new(data.clone())),
            data.len() as u64,
        );
        let written = write_response(&mut wire, resp, true, false).unwrap();
        assert_eq!(written, data.len() as u64);
        let parsed = read_response(&mut BufReader::new(&wire[..]), usize::MAX).unwrap();
        assert_eq!(parsed.body, data);
    }

    #[test]
    fn short_stream_is_error() {
        let resp = Response::stream(
            "application/octet-stream",
            Box::new(std::io::Cursor::new(vec![1u8; 10])),
            100,
        );
        let mut wire = Vec::new();
        let err = write_response(&mut wire, resp, true, false).unwrap_err();
        assert!(is_truncation(&err), "{err:?}");
        assert!(err.to_string().contains("90 bytes short"), "{err}");
    }

    fn temp_file(bytes: &[u8]) -> std::fs::File {
        let dir = std::env::temp_dir().join(format!(
            "clarens-parse-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("body.bin");
        std::fs::write(&path, bytes).unwrap();
        std::fs::File::open(&path).unwrap()
    }

    #[test]
    fn file_body_buffered_roundtrip() {
        let data: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
        let file = temp_file(&data);
        let resp = Response::file(200, "application/octet-stream", file, 0, data.len() as u64);
        let mut wire = Vec::new();
        let outcome = write_response_opts(
            &mut wire,
            resp,
            true,
            false,
            &mut Scratch::new(),
            WriteOpts::default(),
        )
        .unwrap();
        assert_eq!(outcome.sendfile, 0); // no socket fd: buffered path
        let parsed = read_response(&mut BufReader::new(&wire[..]), usize::MAX).unwrap();
        assert_eq!(parsed.status, 200);
        assert_eq!(parsed.body, data);
    }

    #[test]
    fn file_body_segment_respects_offset_and_len() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let file = temp_file(&data);
        let resp = Response::file(206, "application/octet-stream", file, 100, 50);
        let mut wire = Vec::new();
        write_response(&mut wire, resp, true, false).unwrap();
        let parsed = read_response(&mut BufReader::new(&wire[..]), usize::MAX).unwrap();
        assert_eq!(parsed.status, 206);
        assert_eq!(parsed.body, &data[100..150]);
    }

    #[test]
    fn truncated_file_body_is_truncation_error() {
        // Advertise more bytes than the file holds: the writer must fail
        // with the truncation marker, not silently under-deliver.
        let file = temp_file(&[9u8; 100]);
        let resp = Response::file(200, "application/octet-stream", file, 0, 500);
        let mut wire = Vec::new();
        let err = write_response(&mut wire, resp, true, false).unwrap_err();
        assert!(is_truncation(&err), "{err:?}");
    }

    #[test]
    fn sized_body_is_head_only() {
        let mut resp = Response {
            status: 200,
            headers: Headers::new(),
            body: Body::Sized(12345),
        };
        resp.headers.set("content-type", "application/octet-stream");
        let mut wire = Vec::new();
        write_response(&mut wire, resp, true, true).unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.contains("content-length: 12345"));
        assert!(text.ends_with("\r\n\r\n"));
        // A GET with a Sized body is a framing bug and must fail loudly.
        let resp = Response {
            status: 200,
            headers: Headers::new(),
            body: Body::Sized(10),
        };
        assert!(write_response(&mut Vec::new(), resp, true, false).is_err());
    }

    #[test]
    fn range_resolution() {
        use RangeOutcome::*;
        let r = |h: &str, len| resolve_range(Some(h), len);
        // No header / foreign unit / malformed: serve whole.
        assert_eq!(resolve_range(None, 100), Whole);
        assert_eq!(r("items=0-5", 100), Whole);
        assert_eq!(r("bytes=abc", 100), Whole);
        assert_eq!(r("bytes=-", 100), Whole);
        assert_eq!(r("bytes=5-2", 100), Whole); // inverted: ignore header
        assert_eq!(r("bytes=0-10,20-30", 100), Whole); // multi-range: ignored
        assert_eq!(r("bytes=1e2-", 100), Whole);
        // Closed and clamped forms.
        assert_eq!(r("bytes=0-99", 100), Partial { start: 0, end: 99 });
        assert_eq!(r("bytes=10-19", 100), Partial { start: 10, end: 19 });
        assert_eq!(r("bytes=90-1000", 100), Partial { start: 90, end: 99 });
        assert_eq!(r("bytes= 10 - 19 ", 100), Partial { start: 10, end: 19 });
        // Open-ended and suffix forms.
        assert_eq!(r("bytes=95-", 100), Partial { start: 95, end: 99 });
        assert_eq!(r("bytes=-5", 100), Partial { start: 95, end: 99 });
        assert_eq!(r("bytes=-500", 100), Partial { start: 0, end: 99 });
        // Unsatisfiable.
        assert_eq!(r("bytes=100-", 100), Unsatisfiable);
        assert_eq!(r("bytes=100-200", 100), Unsatisfiable);
        assert_eq!(r("bytes=-0", 100), Unsatisfiable);
        assert_eq!(r("bytes=0-", 0), Unsatisfiable);
        assert_eq!(r("bytes=-5", 0), Unsatisfiable);
    }

    #[test]
    fn request_write_read_roundtrip() {
        let mut req = Request::new(Method::Post, "/clarens/rpc");
        req.headers.set("content-type", "application/json");
        req.body = b"{\"method\":\"m\"}".to_vec();
        let mut wire = Vec::new();
        write_request(&mut wire, &req).unwrap();
        let parsed = parse(&wire).unwrap();
        assert_eq!(parsed.method, Method::Post);
        assert_eq!(parsed.target, "/clarens/rpc");
        assert_eq!(parsed.body, req.body);
    }
}
