//! Per-worker scratch buffers recycled across keep-alive requests.
//!
//! Each worker thread owns one [`Scratch`] arena and threads it `&mut`
//! through the request loop: request-line/header lines, request bodies,
//! response heads, response bodies, and stream-copy buffers all draw from
//! the same small pool instead of allocating fresh per request. In steady
//! state (the paper's Figure-4 closed loop) the data path performs zero
//! buffer allocations per request.
//!
//! Two caps keep the arena honest:
//!
//! * a **shrink cap** ([`MAX_RECYCLED_CAPACITY`]) drops any returned buffer
//!   whose capacity grew past 1 MiB, so a single 16 MiB `file.read` does
//!   not pin that much memory on the worker forever;
//! * a **pool cap** ([`MAX_POOL_BUFFERS`]) bounds how many idle buffers a
//!   worker retains.
//!
//! Buffers handed out by [`Scratch::take`] are always empty (`len == 0`)
//! but may carry capacity from earlier requests — callers must never read
//! stale bytes, only append. The keep-alive isolation tests in
//! `tests/buffer_reuse.rs` assert no request ever observes a previous
//! request's bytes.

/// Returned buffers with more capacity than this are dropped rather than
/// pooled (shrink cap).
pub const MAX_RECYCLED_CAPACITY: usize = 1024 * 1024;

/// Maximum number of idle buffers retained per worker.
pub const MAX_POOL_BUFFERS: usize = 8;

/// A per-worker buffer pool. Not thread-safe by design: ownership follows
/// the worker thread, so take/recycle are plain `&mut` calls with no
/// atomics or locks on the hot path.
#[derive(Debug, Default)]
pub struct Scratch {
    pool: Vec<Vec<u8>>,
    takes: u64,
    reuses: u64,
}

impl Scratch {
    /// New, empty arena.
    pub fn new() -> Self {
        Scratch::default()
    }

    /// Get an empty buffer, reusing pooled capacity when available.
    pub fn take(&mut self) -> Vec<u8> {
        self.takes = self.takes.wrapping_add(1);
        match self.pool.pop() {
            Some(buf) => {
                debug_assert!(buf.is_empty());
                self.reuses = self.reuses.wrapping_add(1);
                buf
            }
            None => Vec::new(),
        }
    }

    /// Return a buffer to the pool. Cleared immediately; dropped instead of
    /// pooled when it outgrew the shrink cap or the pool is full.
    pub fn recycle(&mut self, mut buf: Vec<u8>) {
        buf.clear();
        if buf.capacity() == 0
            || buf.capacity() > MAX_RECYCLED_CAPACITY
            || self.pool.len() >= MAX_POOL_BUFFERS
        {
            return;
        }
        self.pool.push(buf);
    }

    /// Total `take` calls (allocation or reuse).
    pub fn takes(&self) -> u64 {
        self.takes
    }

    /// `take` calls served from the pool without allocating.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// Idle buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Drop all pooled buffers (used when recycling is disabled so every
    /// `take` allocates fresh, reproducing the unpooled data path).
    pub fn purge(&mut self) {
        self.pool.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_recycle_reuses_capacity() {
        let mut s = Scratch::new();
        let mut a = s.take();
        assert_eq!(s.reuses(), 0);
        a.extend_from_slice(b"hello world");
        let cap = a.capacity();
        s.recycle(a);
        let b = s.take();
        assert!(b.is_empty(), "recycled buffer must be cleared");
        assert_eq!(b.capacity(), cap, "capacity is retained");
        assert_eq!(s.reuses(), 1);
        assert_eq!(s.takes(), 2);
    }

    #[test]
    fn oversized_buffers_dropped() {
        let mut s = Scratch::new();
        let big = Vec::with_capacity(MAX_RECYCLED_CAPACITY + 1);
        s.recycle(big);
        assert_eq!(s.pooled(), 0, "shrink cap must drop oversized buffers");
        let at_cap = Vec::with_capacity(MAX_RECYCLED_CAPACITY);
        s.recycle(at_cap);
        assert_eq!(s.pooled(), 1);
    }

    #[test]
    fn zero_capacity_buffers_not_pooled() {
        let mut s = Scratch::new();
        s.recycle(Vec::new());
        assert_eq!(s.pooled(), 0);
    }

    #[test]
    fn pool_size_bounded() {
        let mut s = Scratch::new();
        for _ in 0..MAX_POOL_BUFFERS + 4 {
            s.recycle(Vec::with_capacity(16));
        }
        assert_eq!(s.pooled(), MAX_POOL_BUFFERS);
    }
}
