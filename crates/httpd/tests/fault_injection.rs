//! Fault injection on the server's network edges: accept, read, write.
//!
//! These failpoints fire on server threads, so they must be armed
//! globally. This file is its own test binary — its own process — so
//! the global arming cannot leak into other tests. Within the file the
//! tests serialize on a mutex, since each arming window is global to
//! the process.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use clarens_httpd::parse::read_response;
use clarens_httpd::{Handler, HttpServer, PeerInfo, Request, Response, ServerConfig};

fn serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn echo_handler() -> Arc<impl Handler> {
    Arc::new(|req: Request, _peer: Option<&PeerInfo>| {
        Response::ok("text/plain", format!("ok {}", req.target))
    })
}

fn config(park: bool) -> ServerConfig {
    ServerConfig {
        read_timeout: Duration::from_millis(200),
        park_idle: park,
        ..Default::default()
    }
}

fn roundtrip(addr: std::net::SocketAddr, target: &str) -> Option<(u16, Vec<u8>)> {
    let mut sock = TcpStream::connect(addr).ok()?;
    sock.set_read_timeout(Some(Duration::from_secs(2))).ok();
    sock.write_all(format!("GET {target} HTTP/1.1\r\nHost: h\r\n\r\n").as_bytes())
        .ok()?;
    let mut reader = BufReader::new(sock);
    read_response(&mut reader, usize::MAX)
        .map(|r| (r.status, r.body))
        .ok()
}

#[test]
fn injected_accept_failure_drops_connection_then_recovers() {
    let _serial = serial();
    for park in [false, true] {
        let server = HttpServer::bind("127.0.0.1:0", config(park), echo_handler()).unwrap();
        let addr = server.local_addr();
        {
            let _guard = clarens_faults::with(clarens_faults::sites::HTTPD_ACCEPT, "err|times=1");
            // The aborted connection is never served: the client sees EOF
            // (or a reset) instead of a response.
            assert_eq!(roundtrip(addr, "/dropped"), None, "park={park}");
        }
        // Budget exhausted: the next connection is served normally.
        assert_eq!(
            roundtrip(addr, "/served"),
            Some((200, b"ok /served".to_vec())),
            "park={park}"
        );
        server.shutdown();
    }
}

#[test]
fn injected_read_failure_closes_connection_then_recovers() {
    let _serial = serial();
    for park in [false, true] {
        let server = HttpServer::bind("127.0.0.1:0", config(park), echo_handler()).unwrap();
        let addr = server.local_addr();
        {
            let _guard = clarens_faults::with(clarens_faults::sites::HTTPD_READ, "err|times=1");
            // The read failpoint fires on the server's first read of the
            // connection, which is torn down without a response.
            let mut sock = TcpStream::connect(addr).unwrap();
            sock.set_read_timeout(Some(Duration::from_secs(2))).ok();
            let _ = sock.write_all(b"GET /x HTTP/1.1\r\nHost: h\r\n\r\n");
            let mut probe = Vec::new();
            let n = sock.read_to_end(&mut probe).unwrap_or(0);
            assert_eq!(n, 0, "park={park}: expected EOF, got {probe:?}");
        }
        assert_eq!(
            roundtrip(addr, "/after"),
            Some((200, b"ok /after".to_vec())),
            "park={park}"
        );
        server.shutdown();
    }
}

#[test]
fn injected_write_failure_severs_response_then_recovers() {
    let _serial = serial();
    for park in [false, true] {
        let server = HttpServer::bind("127.0.0.1:0", config(park), echo_handler()).unwrap();
        let addr = server.local_addr();
        {
            let _guard = clarens_faults::with(clarens_faults::sites::HTTPD_WRITE, "err|times=1");
            // The request is handled but its response write fails; the
            // client observes a closed connection with no (complete)
            // response.
            assert_eq!(roundtrip(addr, "/lost"), None, "park={park}");
        }
        assert_eq!(
            roundtrip(addr, "/after"),
            Some((200, b"ok /after".to_vec())),
            "park={park}"
        );
        // Both requests were parsed and counted.
        assert_eq!(
            server
                .stats()
                .requests
                .load(std::sync::atomic::Ordering::Relaxed),
            2,
            "park={park}"
        );
        server.shutdown();
    }
}
