//! Behavioral tests for the zero-copy bulk-data path: sendfile-backed
//! file bodies, Range slicing, truncation detection, and event-mode
//! partial-write parking.
//!
//! The byte-identity matrix is the contract that lets the copy engine be
//! swapped freely: {blocking, event} × {zero_copy on, off} must produce
//! identical wire bytes for every request shape, including 206 partial
//! content. The parking tests pin the tentpole property — a slow reader
//! parks its half-written response in the poller instead of pinning a
//! worker.

use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use clarens_httpd::parse::read_response;
use clarens_httpd::{
    resolve_range, Handler, HttpServer, PeerInfo, RangeOutcome, Request, Response, ServerConfig,
};
use clarens_telemetry::Telemetry;

use proptest::prelude::*;

/// A deterministic payload file shared by the tests (per-test file name,
/// so parallel tests never collide).
fn payload_file(tag: &str, len: usize) -> (PathBuf, Vec<u8>) {
    let dir = std::env::temp_dir().join(format!("clarens-bulk-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}.bin"));
    let data: Vec<u8> = (0..len as u32).map(|i| (i % 239) as u8).collect();
    std::fs::write(&path, &data).unwrap();
    (path, data)
}

/// A miniature file server: `GET /data` serves the payload file with
/// Range support, exactly the shape `clarens-core`'s `serve_file` builds.
fn file_handler(path: PathBuf) -> Arc<impl Handler> {
    Arc::new(move |req: Request, _peer: Option<&PeerInfo>| {
        let file = std::fs::File::open(&path).unwrap();
        let len = file.metadata().unwrap().len();
        match resolve_range(req.headers.get("range"), len) {
            RangeOutcome::Whole => Response::file(200, "application/octet-stream", file, 0, len),
            RangeOutcome::Partial { start, end } => {
                let mut r = Response::file(
                    206,
                    "application/octet-stream",
                    file,
                    start,
                    end - start + 1,
                );
                r.headers
                    .set("content-range", format!("bytes {start}-{end}/{len}"));
                r
            }
            RangeOutcome::Unsatisfiable => {
                let mut r = Response::error(416, "range addresses no byte");
                r.headers.set("content-range", format!("bytes */{len}"));
                r
            }
        }
    })
}

fn config(park: bool, zero_copy: bool) -> ServerConfig {
    ServerConfig {
        read_timeout: Duration::from_millis(500),
        park_idle: park,
        zero_copy,
        ..Default::default()
    }
}

fn collect_wire_bytes(addr: SocketAddr, exchanges: &[String]) -> Vec<Vec<u8>> {
    exchanges
        .iter()
        .map(|request| {
            let mut sock = TcpStream::connect(addr).unwrap();
            sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            sock.write_all(request.as_bytes()).unwrap();
            let mut bytes = Vec::new();
            sock.read_to_end(&mut bytes).unwrap();
            bytes
        })
        .collect()
}

/// {blocking, event} × {zero_copy on, off}: the raw response bytes must be
/// identical for whole-file GETs, 206 slices (closed, suffix, open-ended),
/// 416s, HEAD, and pipelined keep-alive — the copy engine must be
/// invisible on the wire.
#[test]
fn copy_engines_are_byte_identical_on_the_wire() {
    let (path, data) = payload_file("identity", 300_000);
    let exchanges: Vec<String> = [
        "GET /data HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n".to_string(),
        "GET /data HTTP/1.1\r\nHost: h\r\nRange: bytes=1000-4999\r\nConnection: close\r\n\r\n"
            .to_string(),
        "GET /data HTTP/1.1\r\nHost: h\r\nRange: bytes=-777\r\nConnection: close\r\n\r\n"
            .to_string(),
        "GET /data HTTP/1.1\r\nHost: h\r\nRange: bytes=299999-\r\nConnection: close\r\n\r\n"
            .to_string(),
        "GET /data HTTP/1.1\r\nHost: h\r\nRange: bytes=999999-\r\nConnection: close\r\n\r\n"
            .to_string(),
        "HEAD /data HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n".to_string(),
        // Pipelined: a range then a whole file on one keep-alive connection.
        "GET /data HTTP/1.1\r\nHost: h\r\nRange: bytes=0-9\r\n\r\n\
         GET /data HTTP/1.1\r\nHost: h\r\nRange: bytes=10-19\r\nConnection: close\r\n\r\n"
            .to_string(),
    ]
    .to_vec();

    let mut runs = Vec::new();
    for park in [false, true] {
        for zero_copy in [false, true] {
            let server = HttpServer::bind(
                "127.0.0.1:0",
                config(park, zero_copy),
                file_handler(path.clone()),
            )
            .unwrap();
            runs.push((
                park,
                zero_copy,
                collect_wire_bytes(server.local_addr(), &exchanges),
            ));
            server.shutdown();
        }
    }
    let (_, _, baseline) = &runs[0];
    // Sanity: the whole-file exchange really carries the payload.
    assert!(baseline[0].windows(data.len()).any(|w| w == data));
    for (park, zero_copy, wires) in &runs[1..] {
        for (i, (a, b)) in baseline.iter().zip(wires.iter()).enumerate() {
            assert_eq!(
                a, b,
                "exchange {i} differs from baseline under park={park} zero_copy={zero_copy}"
            );
        }
    }
}

/// With zero-copy enabled on Linux, file bytes are attributed to the
/// `bytes_sendfile` counter; with it disabled, none are.
#[cfg(target_os = "linux")]
#[test]
fn sendfile_bytes_are_counted() {
    let (path, data) = payload_file("counted", 200_000);
    for (zero_copy, park) in [(true, false), (true, true), (false, true)] {
        let telemetry = Telemetry::enabled();
        let server = HttpServer::bind(
            "127.0.0.1:0",
            ServerConfig {
                telemetry: Some(Arc::clone(&telemetry)),
                ..config(park, zero_copy)
            },
            file_handler(path.clone()),
        )
        .unwrap();
        let wire = collect_wire_bytes(
            server.local_addr(),
            &["GET /data HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n".to_string()],
        );
        assert!(wire[0].windows(data.len()).any(|w| w == data));
        if zero_copy {
            assert_eq!(
                telemetry.http.bytes_sendfile.get(),
                data.len() as u64,
                "park={park}: whole body should ride sendfile"
            );
        } else {
            assert_eq!(telemetry.http.bytes_sendfile.get(), 0, "park={park}");
        }
        server.shutdown();
    }
}

/// A stream body that under-delivers against its declared Content-Length
/// must close the connection (never desync keep-alive framing) and count
/// as a stream truncation, in both concurrency modes.
#[test]
fn truncated_stream_closes_connection_and_is_counted() {
    for park in [false, true] {
        let telemetry = Telemetry::enabled();
        let server = HttpServer::bind(
            "127.0.0.1:0",
            ServerConfig {
                telemetry: Some(Arc::clone(&telemetry)),
                ..config(park, true)
            },
            // Claims 100 KiB, delivers 10 KiB: a lying Content-Length.
            Arc::new(|_req: Request, _peer: Option<&PeerInfo>| {
                let reader = Box::new(std::io::Cursor::new(vec![0x41u8; 10_240]));
                Response::stream("application/octet-stream", reader, 102_400)
            }),
        )
        .unwrap();

        let mut sock = TcpStream::connect(server.local_addr()).unwrap();
        sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // Ask for keep-alive: the truncation must force a close anyway.
        sock.write_all(b"GET /data HTTP/1.1\r\nHost: h\r\n\r\n")
            .unwrap();
        let mut wire = Vec::new();
        sock.read_to_end(&mut wire).unwrap();
        let head_end = wire
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .expect("park={park}: header terminator");
        let head = std::str::from_utf8(&wire[..head_end]).unwrap();
        assert!(
            head.contains("content-length: 102400"),
            "park={park}: {head}"
        );
        assert!(
            wire.len() - head_end - 4 < 102_400,
            "park={park}: under-delivery expected"
        );
        assert_eq!(
            telemetry.http.stream_truncations.get(),
            1,
            "park={park}: truncation must be counted"
        );
        assert_eq!(
            telemetry.http.peer_resets.get(),
            0,
            "park={park}: a server-side truncation is not peer churn"
        );
        server.shutdown();
    }
}

/// The tentpole property: a reader too slow to drain a multi-megabyte
/// response parks the half-written response in the poller instead of
/// pinning the only worker; a second client is served meanwhile, and the
/// slow reader still receives every byte.
#[test]
fn slow_reader_parks_write_and_frees_the_worker() {
    let (path, data) = payload_file("parked", 8 << 20);
    let telemetry = Telemetry::enabled();
    let server = HttpServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            telemetry: Some(Arc::clone(&telemetry)),
            read_timeout: Duration::from_secs(30),
            ..config(true, true)
        },
        file_handler(path),
    )
    .unwrap();
    let addr = server.local_addr();

    // The slow reader requests 8 MiB and then... reads nothing. The kernel
    // buffers fill, the write hits EWOULDBLOCK, and the connection must
    // park with its cursor instead of holding the worker.
    let mut slow = TcpStream::connect(addr).unwrap();
    slow.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    slow.write_all(b"GET /data HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n")
        .unwrap();

    // Wait until the writer is actually parked (bounded).
    let started = Instant::now();
    while telemetry.http.parked_writers.get() == 0 {
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "writer never parked; parked_writers stayed 0"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // The single worker is free: a fast client gets its answer promptly.
    let mut fast = TcpStream::connect(addr).unwrap();
    fast.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    fast.write_all(
        b"GET /data HTTP/1.1\r\nHost: h\r\nRange: bytes=0-9\r\nConnection: close\r\n\r\n",
    )
    .unwrap();
    let mut reader = BufReader::new(fast);
    let resp = read_response(&mut reader, usize::MAX).unwrap();
    assert_eq!(resp.status, 206, "fast client starved behind a slow reader");
    assert_eq!(resp.body, &data[..10]);

    // The slow reader finally drains: every byte arrives, in order.
    let mut wire = Vec::new();
    slow.read_to_end(&mut wire).unwrap();
    let head_end = wire.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
    assert_eq!(wire.len() - head_end, data.len());
    assert_eq!(&wire[head_end..], data, "slow reader got corrupted bytes");
    assert_eq!(telemetry.http.write_stalls.get(), 0);
    server.shutdown();
}

/// A parked writer whose peer never drains expires from the deadline wheel
/// as a `write_stall` — a distinct failure class from keep-alive idle
/// churn.
#[test]
fn stalled_writer_expires_as_write_stall() {
    let (path, _) = payload_file("stalled", 8 << 20);
    let telemetry = Telemetry::enabled();
    let server = HttpServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            telemetry: Some(Arc::clone(&telemetry)),
            read_timeout: Duration::from_millis(300),
            ..config(true, true)
        },
        file_handler(path),
    )
    .unwrap();

    let mut slow = TcpStream::connect(server.local_addr()).unwrap();
    slow.write_all(b"GET /data HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n")
        .unwrap();
    // Never read. The write parks, overstays the deadline, and is evicted.
    let started = Instant::now();
    while telemetry.http.write_stalls.get() == 0 {
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "stalled writer was never expired (parked_writers={}, idle_timeouts={})",
            telemetry.http.parked_writers.get(),
            telemetry.http.idle_timeouts.get(),
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    assert_eq!(telemetry.http.write_stalls.get(), 1);
    assert_eq!(
        telemetry.http.idle_timeouts.get(),
        0,
        "a write stall must not masquerade as idle churn"
    );
    server.shutdown();
}

proptest! {
    /// The Range parser never panics, and every Partial it produces is a
    /// well-formed, in-bounds, non-empty slice.
    #[test]
    fn range_parser_is_total_and_in_bounds(header in ".{0,40}", len in 0u64..1 << 40) {
        match resolve_range(Some(&header), len) {
            RangeOutcome::Partial { start, end } => {
                prop_assert!(start <= end);
                prop_assert!(end < len);
            }
            RangeOutcome::Whole | RangeOutcome::Unsatisfiable => {}
        }
    }

    /// Well-formed closed ranges resolve exactly; inverted ones are
    /// ignored (200), and starts beyond the entity are unsatisfiable.
    #[test]
    fn closed_ranges_resolve_exactly(a in 0u64..10_000, b in 0u64..10_000, len in 1u64..20_000) {
        let header = format!("bytes={a}-{b}");
        let got = resolve_range(Some(&header), len);
        if a > b {
            prop_assert_eq!(got, RangeOutcome::Whole);
        } else if a >= len {
            prop_assert_eq!(got, RangeOutcome::Unsatisfiable);
        } else {
            prop_assert_eq!(got, RangeOutcome::Partial { start: a, end: b.min(len - 1) });
        }
    }

    /// Suffix ranges take the final N bytes (clamped), and `-0` addresses
    /// nothing.
    #[test]
    fn suffix_ranges_take_the_tail(n in 0u64..20_000, len in 1u64..10_000) {
        let got = resolve_range(Some(&format!("bytes=-{n}")), len);
        if n == 0 {
            prop_assert_eq!(got, RangeOutcome::Unsatisfiable);
        } else {
            prop_assert_eq!(
                got,
                RangeOutcome::Partial { start: len.saturating_sub(n), end: len - 1 }
            );
        }
    }

}

/// Multi-range and other unparseable specs fall back to serving the whole
/// entity — never an error, never a panic.
#[test]
fn junk_and_multi_ranges_serve_whole() {
    for spec in [
        "bytes=0-1,5-9",
        "bytes=",
        "bytes=a-b",
        "octets=0-5",
        "0-5",
        "bytes=--3",
        "bytes=5--",
        "bytes=9 9-",
        "bytes",
    ] {
        for len in [1u64, 100, 10_000] {
            assert_eq!(
                resolve_range(Some(spec), len),
                RangeOutcome::Whole,
                "{spec:?} against {len}"
            );
        }
    }
}
