//! Keep-alive isolation tests for the recycled-buffer data path.
//!
//! Worker threads recycle request/response buffers across keep-alive
//! requests (see `scratch`); these tests drive real sockets through the
//! pooled path and assert that no request ever observes bytes left over
//! from a previous request on the same connection — including when the
//! handler itself draws response buffers from the arena, and when bodies
//! arrive chunked.

use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use clarens_httpd::parse::read_response;
use clarens_httpd::{Handler, HttpServer, PeerInfo, Request, Response, Scratch, ServerConfig};
use clarens_telemetry::{RequestTrace, Telemetry};

/// Echoes the request body back from a buffer taken out of the worker's
/// scratch arena, and recycles the request body — the most aggressive
/// reuse a handler can perform.
struct PooledEcho;

impl Handler for PooledEcho {
    fn handle(&self, request: Request, _peer: Option<&PeerInfo>) -> Response {
        Response::ok("application/octet-stream", request.body)
    }

    fn handle_pooled(
        &self,
        mut request: Request,
        _peer: Option<&PeerInfo>,
        _trace: &mut RequestTrace,
        scratch: &mut Scratch,
    ) -> Response {
        let mut out = scratch.take();
        out.extend_from_slice(&request.body);
        scratch.recycle(std::mem::take(&mut request.body));
        Response::ok("application/octet-stream", out)
    }
}

fn start_server(telemetry: Option<Arc<Telemetry>>) -> HttpServer {
    let config = ServerConfig {
        read_timeout: Duration::from_millis(200),
        telemetry,
        ..Default::default()
    };
    HttpServer::bind("127.0.0.1:0", config, Arc::new(PooledEcho)).unwrap()
}

fn post(body: &[u8]) -> Vec<u8> {
    let mut req = format!(
        "POST /echo HTTP/1.1\r\nHost: h\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    req.extend_from_slice(body);
    req
}

#[test]
fn second_request_never_sees_first_requests_bytes() {
    let telemetry = Telemetry::enabled();
    let server = start_server(Some(Arc::clone(&telemetry)));
    let mut sock = TcpStream::connect(server.local_addr()).unwrap();

    // A large, distinctive first body primes every recycled buffer with
    // poison bytes; the tiny second body must come back exactly, with no
    // tail of the first.
    let big: Vec<u8> = (0..256 * 1024).map(|i| b'A' + (i % 23) as u8).collect();
    let small = b"tiny-second-body".to_vec();

    sock.write_all(&post(&big)).unwrap();
    sock.write_all(&post(&small)).unwrap();

    let mut reader = BufReader::new(sock);
    let first = read_response(&mut reader, usize::MAX).unwrap();
    assert_eq!(first.status, 200);
    assert_eq!(first.body, big);
    let second = read_response(&mut reader, usize::MAX).unwrap();
    assert_eq!(second.status, 200);
    assert_eq!(second.body, small, "stale bytes leaked across keep-alive");

    // The second request really did run through the recycled pool.
    assert!(
        telemetry.http.buffer_pool_reuse.get() > 0,
        "expected at least one pooled-buffer reuse across keep-alive"
    );
    // The worker bumps the request counter after flushing the response,
    // so the client can get here first — wait for it to catch up.
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while telemetry.http.requests.get() < 2 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(telemetry.http.requests.get(), 2);
    server.shutdown();
}

#[test]
fn pipelined_burst_each_response_isolated() {
    let server = start_server(None);
    let mut sock = TcpStream::connect(server.local_addr()).unwrap();

    // Alternate shrinking/odd-sized bodies so any stale-length bug shows.
    let bodies: Vec<Vec<u8>> = (0..8)
        .map(|i| {
            let len = [100_001usize, 17, 4096, 1, 65_536, 3, 900, 33][i];
            (0..len).map(|j| (b'a' + (i as u8)) ^ (j as u8)).collect()
        })
        .collect();
    for body in &bodies {
        sock.write_all(&post(body)).unwrap();
    }
    let mut reader = BufReader::new(sock);
    for (i, body) in bodies.iter().enumerate() {
        let resp = read_response(&mut reader, usize::MAX).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(&resp.body, body, "response {i} corrupted by buffer reuse");
    }
    server.shutdown();
}

#[test]
fn chunked_bodies_reassembled_through_pooled_path() {
    let server = start_server(None);
    let mut sock = TcpStream::connect(server.local_addr()).unwrap();

    // First chunked request: three uneven chunks.
    sock.write_all(
        b"POST /echo HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: chunked\r\n\r\n\
          5\r\nhello\r\n1\r\n \r\n6\r\nworld!\r\n0\r\n\r\n",
    )
    .unwrap();
    // Second chunked request on the same connection: shorter, different
    // content — must not inherit anything from the first.
    sock.write_all(
        b"POST /echo HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: chunked\r\n\r\n\
          3\r\nabc\r\n0\r\n\r\n",
    )
    .unwrap();

    let mut reader = BufReader::new(sock);
    let first = read_response(&mut reader, usize::MAX).unwrap();
    assert_eq!(first.status, 200);
    assert_eq!(first.body, b"hello world!");
    let second = read_response(&mut reader, usize::MAX).unwrap();
    assert_eq!(second.status, 200);
    assert_eq!(second.body, b"abc", "chunked body bled across keep-alive");
    server.shutdown();
}

#[test]
fn mixed_chunked_and_content_length_keep_alive() {
    let server = start_server(None);
    let mut sock = TcpStream::connect(server.local_addr()).unwrap();

    sock.write_all(&post(b"plain-one")).unwrap();
    sock.write_all(
        b"POST /echo HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: chunked\r\n\r\n\
          7\r\nchunked\r\n0\r\n\r\n",
    )
    .unwrap();
    sock.write_all(&post(b"plain-two")).unwrap();

    let mut reader = BufReader::new(sock);
    for expect in [&b"plain-one"[..], b"chunked", b"plain-two"] {
        let resp = read_response(&mut reader, usize::MAX).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, expect);
    }
    server.shutdown();
}
