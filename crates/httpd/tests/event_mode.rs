//! Behavioral tests for the event-driven (parked) connection path.
//!
//! These pin the properties that motivated the scheduler: a slow client
//! cannot pin a worker, hundreds of idle keep-alive connections cost no
//! threads and corrupt no buffers, the connection budget sheds gracefully,
//! shutdown is deterministic with zero traffic, and — crucially — the
//! event path is byte-identical on the wire to the classic
//! thread-per-connection path it replaces.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use clarens_httpd::parse::read_response;
use clarens_httpd::{Handler, HttpServer, PeerInfo, Request, Response, ServerConfig};
use clarens_telemetry::Telemetry;

fn echo_handler() -> Arc<impl Handler> {
    Arc::new(|req: Request, _peer: Option<&PeerInfo>| {
        Response::ok(
            "text/plain",
            format!("{} {} {}", req.method.as_str(), req.target, req.body.len()),
        )
    })
}

/// Echoes the request body back, so corruption across connections is
/// observable.
fn body_echo_handler() -> Arc<impl Handler> {
    Arc::new(|req: Request, _peer: Option<&PeerInfo>| {
        Response::ok("application/octet-stream", req.body)
    })
}

fn config(park: bool) -> ServerConfig {
    ServerConfig {
        read_timeout: Duration::from_millis(500),
        park_idle: park,
        ..Default::default()
    }
}

fn roundtrip_on(sock: &mut TcpStream, request: &str) -> (u16, Vec<u8>, bool) {
    sock.write_all(request.as_bytes()).unwrap();
    let mut reader = BufReader::new(sock.try_clone().unwrap());
    let resp = read_response(&mut reader, usize::MAX).unwrap();
    (resp.status, resp.body, resp.keep_alive)
}

/// A client stuck mid-header must not occupy the only worker: with
/// `workers = 1` and parking on, other clients keep getting served while
/// the slow client dribbles its request in, and the slow client still gets
/// its answer in the end.
#[test]
fn slowloris_does_not_pin_the_single_worker() {
    let server = HttpServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            read_timeout: Duration::from_secs(10),
            ..config(true)
        },
        echo_handler(),
    )
    .unwrap();
    let addr = server.local_addr();

    // Half a request line, then silence: the connection must end up parked,
    // not holding the worker in read().
    let mut slow = TcpStream::connect(addr).unwrap();
    slow.write_all(b"GET /slow HTTP/1.1\r\nHo").unwrap();
    std::thread::sleep(Duration::from_millis(100));

    // The single worker must still serve everyone else promptly.
    for i in 0..5 {
        let mut sock = TcpStream::connect(addr).unwrap();
        sock.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let (status, body, _) = roundtrip_on(
            &mut sock,
            &format!("GET /fast{i} HTTP/1.1\r\nHost: h\r\n\r\n"),
        );
        assert_eq!(status, 200, "fast client {i} starved behind a slowloris");
        assert_eq!(body, format!("GET /fast{i} 0").as_bytes());
    }

    // The slow client finishes its header and gets served too.
    slow.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    let (status, body, _) = roundtrip_on(&mut slow, "st: h\r\n\r\n");
    assert_eq!(status, 200);
    assert_eq!(body, b"GET /slow 0");
    server.shutdown();
}

/// 512 keep-alive connections churning through park/resume cycles on 4
/// workers: every response must carry exactly its own connection's body —
/// scratch-buffer recycling and connection state must stay isolated while
/// connections migrate between workers.
#[test]
fn keepalive_churn_512_connections_buffer_isolation() {
    const CONNS: usize = 512;
    const ROUNDS: usize = 3;
    let telemetry = Telemetry::enabled();
    let server = HttpServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 4,
            telemetry: Some(Arc::clone(&telemetry)),
            read_timeout: Duration::from_secs(30),
            ..config(true)
        },
        body_echo_handler(),
    )
    .unwrap();
    let addr = server.local_addr();

    let mut socks: Vec<TcpStream> = (0..CONNS)
        .map(|_| {
            let s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            s
        })
        .collect();

    for round in 0..ROUNDS {
        for (i, sock) in socks.iter_mut().enumerate() {
            // Distinct body per (connection, round); padding makes buffer
            // reuse across connections visible if isolation ever breaks.
            let body = format!("conn-{i:04}-round-{round}-{}", "x".repeat(64 + (i % 64)));
            let request = format!(
                "POST /echo HTTP/1.1\r\nHost: h\r\nContent-Length: {}\r\n\r\n{}",
                body.len(),
                body
            );
            let (status, got, keep_alive) = roundtrip_on(sock, &request);
            assert_eq!(status, 200);
            assert_eq!(
                got,
                body.as_bytes(),
                "cross-connection buffer bleed on conn {i} round {round}"
            );
            assert!(keep_alive);
        }
    }

    assert_eq!(
        server.stats().connections.load(Ordering::Relaxed),
        CONNS as u64
    );
    assert_eq!(
        server.stats().requests.load(Ordering::Relaxed),
        (CONNS * ROUNDS) as u64
    );
    // Rounds 2 and 3 arrive on parked connections, so the poller must have
    // re-dispatched (at minimum) most of them at least once per round.
    assert!(
        telemetry.http.poll_wakeups.get() >= (CONNS * (ROUNDS - 1) / 2) as u64,
        "expected parked re-dispatches, saw {}",
        telemetry.http.poll_wakeups.get()
    );
    assert_eq!(
        telemetry.http.keepalive_reuse.get(),
        (CONNS * (ROUNDS - 1)) as u64
    );
    server.shutdown();
}

/// A parked connection shows up in the `parked` gauge, and expires as an
/// `idle_timeout` (not a peer reset) when it overstays `read_timeout`.
#[test]
fn parked_connection_gauge_and_idle_expiry() {
    let telemetry = Telemetry::enabled();
    let server = HttpServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            telemetry: Some(Arc::clone(&telemetry)),
            read_timeout: Duration::from_millis(300),
            ..config(true)
        },
        echo_handler(),
    )
    .unwrap();

    let mut sock = TcpStream::connect(server.local_addr()).unwrap();
    let (status, _, _) = roundtrip_on(&mut sock, "GET / HTTP/1.1\r\nHost: h\r\n\r\n");
    assert_eq!(status, 200);

    // After the response the connection parks (idle, off the workers).
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(telemetry.http.parked.get(), 1);

    // Overstay the keep-alive timeout: the wheel expires it as idle churn.
    std::thread::sleep(Duration::from_millis(500));
    assert_eq!(telemetry.http.idle_timeouts.get(), 1);
    assert_eq!(telemetry.http.peer_resets.get(), 0);
    // The server closed it: our next read sees EOF.
    let mut probe = [0u8; 1];
    sock.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    assert_eq!(sock.read(&mut probe).unwrap(), 0);
    server.shutdown();
}

/// Once `max_connections` live connections exist, the next one is shed with
/// `503` + `Connection: close` instead of growing the queue, and the shed
/// is counted.
#[test]
fn connection_budget_sheds_with_503() {
    let telemetry = Telemetry::enabled();
    let server = HttpServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            max_connections: 2,
            telemetry: Some(Arc::clone(&telemetry)),
            read_timeout: Duration::from_secs(10),
            ..config(true)
        },
        echo_handler(),
    )
    .unwrap();
    let addr = server.local_addr();

    // Fill the budget with two live keep-alive connections.
    let mut held = Vec::new();
    for _ in 0..2 {
        let mut sock = TcpStream::connect(addr).unwrap();
        let (status, _, _) = roundtrip_on(&mut sock, "GET / HTTP/1.1\r\nHost: h\r\n\r\n");
        assert_eq!(status, 200);
        held.push(sock);
    }

    // The third is answered 503 without the server reading a request.
    let over = TcpStream::connect(addr).unwrap();
    over.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    let mut reader = BufReader::new(over);
    let resp = read_response(&mut reader, usize::MAX).unwrap();
    assert_eq!(resp.status, 503);
    assert!(!resp.keep_alive);
    let mut probe = [0u8; 1];
    assert_eq!(reader.read(&mut probe).unwrap(), 0, "shed conn must close");
    assert_eq!(telemetry.http.sheds.get(), 1);

    // Releasing budget re-admits new connections.
    drop(held);
    std::thread::sleep(Duration::from_millis(100));
    let mut sock = TcpStream::connect(addr).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    let (status, _, _) = roundtrip_on(&mut sock, "GET / HTTP/1.1\r\nHost: h\r\n\r\n");
    assert_eq!(status, 200);
    server.shutdown();
}

/// Shutdown with zero traffic must be immediate in both modes: the
/// acceptor and poller are woken explicitly (no dummy connection, no
/// timeout race).
#[test]
fn shutdown_is_deterministic_under_zero_traffic() {
    for park in [false, true] {
        let server = HttpServer::bind(
            "127.0.0.1:0",
            ServerConfig {
                read_timeout: Duration::from_secs(600),
                ..config(park)
            },
            echo_handler(),
        )
        .unwrap();
        let started = Instant::now();
        server.shutdown();
        assert!(
            started.elapsed() < Duration::from_secs(1),
            "park={park}: shutdown took {:?}",
            started.elapsed()
        );
    }
}

/// Shutdown is also prompt with connections parked.
#[test]
fn shutdown_closes_parked_connections() {
    let server = HttpServer::bind("127.0.0.1:0", config(true), echo_handler()).unwrap();
    let mut socks = Vec::new();
    for _ in 0..8 {
        let mut sock = TcpStream::connect(server.local_addr()).unwrap();
        let (status, _, _) = roundtrip_on(&mut sock, "GET / HTTP/1.1\r\nHost: h\r\n\r\n");
        assert_eq!(status, 200);
        socks.push(sock);
    }
    std::thread::sleep(Duration::from_millis(100)); // let them park
    let started = Instant::now();
    server.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(1),
        "shutdown with parked conns took {:?}",
        started.elapsed()
    );
    for mut sock in socks {
        sock.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let mut probe = [0u8; 1];
        // EOF or reset — either way, closed.
        match sock.read(&mut probe) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("parked conn still live after shutdown ({n} bytes)"),
        }
    }
}

/// A deep pipeline on the event path: every response comes back, in
/// order, with the right body. This is the workload the response
/// coalescer serves — responses to buffered pipelined requests are staged
/// and leave the socket in batches, which must change packet boundaries
/// only, never bytes or ordering.
#[test]
fn deep_pipeline_responses_arrive_in_order() {
    let server = HttpServer::bind("127.0.0.1:0", config(true), body_echo_handler()).unwrap();
    let mut sock = TcpStream::connect(server.local_addr()).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    const DEPTH: usize = 64;
    let mut batch = Vec::new();
    for i in 0..DEPTH {
        let body = format!("payload-{i}");
        batch.extend_from_slice(
            format!(
                "POST /rpc HTTP/1.1\r\nHost: h\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        );
    }
    sock.write_all(&batch).unwrap();
    let mut reader = BufReader::new(sock.try_clone().unwrap());
    for i in 0..DEPTH {
        let resp = read_response(&mut reader, usize::MAX).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.body,
            format!("payload-{i}").into_bytes(),
            "response {i} out of order or corrupted"
        );
        assert!(resp.keep_alive);
    }
    server.shutdown();
}

/// A non-coalescible request (HEAD) in the middle of a pipeline forces the
/// staged responses out first — ordering across the coalesce/direct-write
/// boundary must hold, and a trailing `Connection: close` still closes.
#[test]
fn mixed_pipeline_flushes_in_order() {
    let server = HttpServer::bind("127.0.0.1:0", config(true), echo_handler()).unwrap();
    let mut sock = TcpStream::connect(server.local_addr()).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let batch = "GET /a HTTP/1.1\r\nHost: h\r\n\r\n\
                 GET /b HTTP/1.1\r\nHost: h\r\n\r\n\
                 HEAD /c HTTP/1.1\r\nHost: h\r\n\r\n\
                 GET /d HTTP/1.1\r\nHost: h\r\n\r\n\
                 GET /e HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n";
    sock.write_all(batch.as_bytes()).unwrap();
    let mut reader = BufReader::new(sock.try_clone().unwrap());
    for (target, body_expected) in [
        ("/a", true),
        ("/b", true),
        ("/c", false),
        ("/d", true),
        ("/e", true),
    ] {
        if body_expected {
            let resp = read_response(&mut reader, usize::MAX).unwrap();
            assert_eq!(resp.status, 200, "{target}");
            let body = String::from_utf8(resp.body).unwrap();
            assert!(body.contains(target), "{target}: got {body:?}");
        } else {
            // A HEAD response advertises Content-Length but carries no
            // body bytes, so consume just its head.
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.contains("200"), "{target}: got {line:?}");
            while line != "\r\n" {
                line.clear();
                reader.read_line(&mut line).unwrap();
            }
        }
    }
    let mut probe = [0u8; 1];
    match reader.read(&mut probe) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!("connection still open after Connection: close ({n} bytes)"),
    }
    server.shutdown();
}

fn collect_wire_bytes(addr: SocketAddr, exchanges: &[&str]) -> Vec<Vec<u8>> {
    exchanges
        .iter()
        .map(|request| {
            let mut sock = TcpStream::connect(addr).unwrap();
            sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            sock.write_all(request.as_bytes()).unwrap();
            let mut bytes = Vec::new();
            sock.read_to_end(&mut bytes).unwrap();
            bytes
        })
        .collect()
}

/// The two concurrency models must be indistinguishable on the wire: for a
/// spread of request shapes (GET, POST, HEAD, pipelined keep-alive, bad
/// request), the raw response bytes are identical.
#[test]
fn event_and_blocking_paths_are_byte_identical() {
    let exchanges: [&str; 5] = [
        "GET /plain HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n",
        "POST /rpc HTTP/1.1\r\nHost: h\r\nContent-Length: 11\r\nConnection: close\r\n\r\nhello world",
        "HEAD /h HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n",
        // Two pipelined requests; second closes.
        "GET /a HTTP/1.1\r\nHost: h\r\n\r\nGET /b HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n",
        "NONSENSE\r\n\r\n",
    ];
    let mut per_mode = Vec::new();
    for park in [false, true] {
        let server = HttpServer::bind("127.0.0.1:0", config(park), echo_handler()).unwrap();
        per_mode.push(collect_wire_bytes(server.local_addr(), &exchanges));
        server.shutdown();
    }
    for (i, (blocking, event)) in per_mode[0].iter().zip(per_mode[1].iter()).enumerate() {
        assert_eq!(
            blocking, event,
            "exchange {i} differs between blocking and event paths"
        );
    }
}
