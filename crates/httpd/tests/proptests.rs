//! Property tests for the HTTP layer: the parser is total on arbitrary
//! bytes, and well-formed messages round-trip through write/read.

use std::io::BufReader;

use proptest::prelude::*;

use clarens_httpd::parse::{
    read_request, read_response, write_request, write_response, ParseError, DEFAULT_MAX_BODY,
};
use clarens_httpd::{Method, Request, Response};

fn header_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,14}".prop_filter("reserved framing headers", |name| {
        !matches!(
            name.as_str(),
            "content-length" | "transfer-encoding" | "connection" | "server"
        )
    })
}

fn header_value() -> impl Strategy<Value = String> {
    "[ -~]{0,30}".prop_map(|s| s.trim().to_string())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary bytes never panic the request parser.
    #[test]
    fn request_parser_total(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = read_request(&mut BufReader::new(&bytes[..]), DEFAULT_MAX_BODY);
    }

    /// Arbitrary bytes never panic the response parser.
    #[test]
    fn response_parser_total(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = read_response(&mut BufReader::new(&bytes[..]), DEFAULT_MAX_BODY);
    }

    /// Well-formed requests round-trip: write -> parse yields the same
    /// method, target, headers, and body.
    #[test]
    fn request_roundtrip(
        target in "/[a-zA-Z0-9/._-]{0,30}",
        headers in proptest::collection::btree_map(header_name(), header_value(), 0..5),
        body in proptest::collection::vec(any::<u8>(), 0..256),
        is_post in any::<bool>(),
    ) {
        let method = if is_post { Method::Post } else { Method::Get };
        let mut request = Request::new(method, target.clone());
        for (name, value) in &headers {
            request.headers.set(name, value.clone());
        }
        if is_post {
            request.body = body.clone();
        }
        let mut wire = Vec::new();
        write_request(&mut wire, &request).unwrap();
        let parsed = read_request(&mut BufReader::new(&wire[..]), DEFAULT_MAX_BODY).unwrap();
        prop_assert_eq!(parsed.method, method);
        prop_assert_eq!(parsed.target, target);
        for (name, value) in &headers {
            prop_assert_eq!(parsed.headers.get(name), Some(value.as_str()), "header {}", name);
        }
        if is_post {
            prop_assert_eq!(parsed.body, body);
        }
    }

    /// Well-formed responses round-trip, preserving status and body bytes.
    #[test]
    fn response_roundtrip(
        status in prop_oneof![Just(200u16), Just(204), Just(404), Just(500)],
        body in proptest::collection::vec(any::<u8>(), 0..512),
        keep_alive in any::<bool>(),
    ) {
        let response = Response::new(status, "application/octet-stream", body.clone());
        let mut wire = Vec::new();
        write_response(&mut wire, response, keep_alive, false).unwrap();
        let parsed = read_response(&mut BufReader::new(&wire[..]), DEFAULT_MAX_BODY).unwrap();
        prop_assert_eq!(parsed.status, status);
        prop_assert_eq!(parsed.body, body);
        prop_assert_eq!(parsed.keep_alive, keep_alive);
    }

    /// Chunked bodies decode to the concatenation of the chunks, however
    /// the payload is split.
    #[test]
    fn chunked_decoding_matches_concatenation(
        chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..64), 0..6),
    ) {
        let mut wire = b"POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n".to_vec();
        let mut expected = Vec::new();
        for chunk in &chunks {
            wire.extend_from_slice(format!("{:x}\r\n", chunk.len()).as_bytes());
            wire.extend_from_slice(chunk);
            wire.extend_from_slice(b"\r\n");
            expected.extend_from_slice(chunk);
        }
        wire.extend_from_slice(b"0\r\n\r\n");
        let parsed = read_request(&mut BufReader::new(&wire[..]), DEFAULT_MAX_BODY).unwrap();
        prop_assert_eq!(parsed.body, expected);
    }

    /// Truncating a valid request mid-stream yields an error (or EOF),
    /// never a bogus successful parse of the complete message.
    #[test]
    fn truncation_never_fabricates_body(
        body in proptest::collection::vec(any::<u8>(), 1..128),
        cut_fraction in 0.0f64..1.0,
    ) {
        let mut request = Request::new(Method::Post, "/t");
        request.body = body;
        let mut wire = Vec::new();
        write_request(&mut wire, &request).unwrap();
        let cut = ((wire.len() as f64) * cut_fraction) as usize;
        match read_request(&mut BufReader::new(&wire[..cut]), DEFAULT_MAX_BODY) {
            Ok(parsed) => prop_assert_eq!(parsed.body, request.body, "cut={}", cut),
            Err(ParseError::Eof) | Err(ParseError::Io(_)) | Err(ParseError::Protocol(..)) => {}
        }
    }
}
