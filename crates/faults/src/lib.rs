//! Named failpoints for deterministic fault injection.
//!
//! Production binaries compile every injection site in, but a disabled
//! site costs exactly one relaxed atomic load (the global arming word) —
//! no map lookup, no branch on a lock. Sites are armed either
//! programmatically (tests use the RAII [`Guard`] from [`with`]) or from
//! the environment:
//!
//! ```text
//! CLARENS_FAULTS='db.wal.fsync=err;httpd.read=delay:5ms|p=0.1;db.wal.append=short:3|times=2'
//! ```
//!
//! Grammar: `;`-separated `site=spec` pairs. A spec is `|`-separated
//! clauses:
//!
//! * `err` — fail the operation with an injected [`io::Error`]
//!   (recognizable via [`is_injected`]).
//! * `delay:5ms` — sleep before continuing (suffixes `us`/`ms`/`s`;
//!   a bare number means milliseconds).
//! * `short:N` — for write sites: pretend only `N` bytes were written.
//! * `p=0.5` — trigger probabilistically. The per-site RNG is seeded from
//!   `CLARENS_FAULTS_SEED` (default 0) plus the site name, so a given
//!   schedule replays identically.
//! * `times=N` — trigger at most `N` times, then go quiet (models
//!   transient faults that a retry should absorb).
//!
//! Clauses compose: `delay:2ms|err|p=0.1|times=5` sleeps then errors on
//! at most five of ~10% of evaluations. Every trigger increments a global
//! and a per-site counter so telemetry (and the chaos harness) can report
//! exactly how many faults were injected.

use std::io;
use std::sync::atomic::{AtomicI64, AtomicU32, AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::RwLock;

/// Outcome of evaluating an armed site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Injected {
    /// Fail the operation with an injected error.
    Err,
    /// Pretend a write consumed only this many bytes.
    ShortWrite(usize),
    /// The site only delayed (the sleep already happened in [`eval`]).
    Delayed,
}

/// Parsed spec for one site.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Spec {
    delay: Option<Duration>,
    kind: Kind,
    /// Probability in parts-per-million (1_000_000 = always).
    p_ppm: u32,
    /// Trigger budget; `None` = unlimited.
    times: Option<u64>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// Delay only (no terminal action).
    None,
    Err,
    Short(usize),
}

struct Site {
    spec: Spec,
    /// Remaining trigger budget (negative once exhausted); i64::MAX when
    /// unlimited.
    remaining: AtomicI64,
    /// xorshift state for `p=` decisions.
    rng: AtomicU64,
    /// Number of times this site actually triggered.
    hits: AtomicU64,
    /// When set, the site only triggers on this thread. Unit tests arm
    /// sites thread-scoped so parallel tests in the same binary cannot
    /// trip each other's faults; sites evaluated on server worker threads
    /// need process-wide arming instead.
    scope: Option<std::thread::ThreadId>,
}

/// Global arming word. Bit 0: environment scanned. Bits 1..: number of
/// armed sites. The disabled fast path is therefore `load == 1`
/// (env scanned, nothing armed) — a single relaxed load.
static STATE: AtomicU32 = AtomicU32::new(0);
const ENV_SCANNED: u32 = 1;
const SITE_UNIT: u32 = 2;

static INJECTED_TOTAL: AtomicU64 = AtomicU64::new(0);

static REGISTRY: RwLock<Vec<(String, Site)>> = RwLock::new(Vec::new());

fn seed_for(site: &str) -> u64 {
    let base: u64 = std::env::var("CLARENS_FAULTS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    // FNV-1a over the site name, mixed with the schedule seed, so two
    // sites never share an RNG stream.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in site.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ base.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1
}

fn parse_duration(s: &str) -> Result<Duration, String> {
    let (digits, mult_us) = if let Some(d) = s.strip_suffix("us") {
        (d, 1u64)
    } else if let Some(d) = s.strip_suffix("ms") {
        (d, 1_000)
    } else if let Some(d) = s.strip_suffix('s') {
        (d, 1_000_000)
    } else {
        (s, 1_000)
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("bad duration {s:?} (want e.g. 5ms, 100us, 2s)"))?;
    Ok(Duration::from_micros(n * mult_us))
}

fn parse_spec(spec: &str) -> Result<Spec, String> {
    let mut out = Spec {
        delay: None,
        kind: Kind::None,
        p_ppm: 1_000_000,
        times: None,
    };
    for clause in spec.split('|') {
        let clause = clause.trim();
        if clause.is_empty() {
            continue;
        }
        if clause == "err" {
            out.kind = Kind::Err;
        } else if let Some(d) = clause.strip_prefix("delay:") {
            out.delay = Some(parse_duration(d)?);
        } else if let Some(n) = clause.strip_prefix("short:") {
            let n = n
                .parse()
                .map_err(|_| format!("bad short-write length {n:?}"))?;
            out.kind = Kind::Short(n);
        } else if let Some(p) = clause.strip_prefix("p=") {
            let p: f64 = p.parse().map_err(|_| format!("bad probability {p:?}"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("probability {p} out of [0,1]"));
            }
            out.p_ppm = (p * 1_000_000.0) as u32;
        } else if let Some(n) = clause
            .strip_prefix("times=")
            .or(clause.strip_prefix("times:"))
        {
            out.times = Some(n.parse().map_err(|_| format!("bad times count {n:?}"))?);
        } else {
            return Err(format!("unknown failpoint clause {clause:?}"));
        }
    }
    Ok(out)
}

fn ensure_env_scanned() {
    if STATE.load(Ordering::Relaxed) & ENV_SCANNED != 0 {
        return;
    }
    let mut registry = REGISTRY.write();
    // Re-check under the lock so the scan happens exactly once.
    if STATE.load(Ordering::Relaxed) & ENV_SCANNED != 0 {
        return;
    }
    if let Ok(schedule) = std::env::var("CLARENS_FAULTS") {
        for pair in schedule.split(';') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let Some((site, spec)) = pair.split_once('=') else {
                eprintln!("CLARENS_FAULTS: ignoring malformed entry {pair:?}");
                continue;
            };
            match parse_spec(spec) {
                Ok(spec) => install(&mut registry, site.trim(), spec, None),
                Err(e) => eprintln!("CLARENS_FAULTS: {site}: {e}"),
            }
        }
    }
    STATE.fetch_or(ENV_SCANNED, Ordering::SeqCst);
}

fn install(
    registry: &mut Vec<(String, Site)>,
    name: &str,
    spec: Spec,
    scope: Option<std::thread::ThreadId>,
) {
    let site = Site {
        remaining: AtomicI64::new(spec.times.map_or(i64::MAX, |t| t as i64)),
        rng: AtomicU64::new(seed_for(name)),
        hits: AtomicU64::new(0),
        spec,
        scope,
    };
    if let Some(slot) = registry.iter_mut().find(|(n, _)| n == name) {
        slot.1 = site;
    } else {
        registry.push((name.to_owned(), site));
        STATE.fetch_add(SITE_UNIT, Ordering::SeqCst);
    }
}

/// Arm `site` with `spec` (same grammar as `CLARENS_FAULTS` values).
pub fn configure(site: &str, spec: &str) -> Result<(), String> {
    let spec = parse_spec(spec)?;
    ensure_env_scanned();
    install(&mut REGISTRY.write(), site, spec, None);
    Ok(())
}

/// Arm `site` so it only triggers on the calling thread.
pub fn configure_thread(site: &str, spec: &str) -> Result<(), String> {
    let spec = parse_spec(spec)?;
    ensure_env_scanned();
    install(
        &mut REGISTRY.write(),
        site,
        spec,
        Some(std::thread::current().id()),
    );
    Ok(())
}

/// Disarm one site.
pub fn clear(site: &str) {
    let mut registry = REGISTRY.write();
    if let Some(pos) = registry.iter().position(|(n, _)| n == site) {
        registry.remove(pos);
        STATE.fetch_sub(SITE_UNIT, Ordering::SeqCst);
    }
}

/// Disarm every site.
pub fn clear_all() {
    let mut registry = REGISTRY.write();
    let n = registry.len() as u32;
    registry.clear();
    STATE.fetch_sub(n * SITE_UNIT, Ordering::SeqCst);
}

/// RAII activation: the site is disarmed when the guard drops. Tests use
/// this so a panic cannot leak an armed failpoint into the next test.
pub struct Guard {
    site: String,
}

impl Drop for Guard {
    fn drop(&mut self) {
        clear(&self.site);
    }
}

/// Arm `site` for the lifetime of the returned guard.
pub fn with(site: &str, spec: &str) -> Guard {
    configure(site, spec).unwrap_or_else(|e| panic!("failpoint {site}: {e}"));
    Guard {
        site: site.to_owned(),
    }
}

/// Arm `site` for the lifetime of the returned guard, triggering only on
/// the calling thread (safe under parallel test execution).
pub fn with_thread(site: &str, spec: &str) -> Guard {
    configure_thread(site, spec).unwrap_or_else(|e| panic!("failpoint {site}: {e}"));
    Guard {
        site: site.to_owned(),
    }
}

/// Evaluate a failpoint. Returns `None` (at the cost of one relaxed
/// atomic load) unless the site is armed and triggers.
#[inline]
pub fn eval(site: &str) -> Option<Injected> {
    let state = STATE.load(Ordering::Relaxed);
    if state == ENV_SCANNED {
        return None; // env scanned, nothing armed: the hot path.
    }
    eval_slow(site, state)
}

#[cold]
fn eval_slow(site: &str, state: u32) -> Option<Injected> {
    if state & ENV_SCANNED == 0 {
        ensure_env_scanned();
        if STATE.load(Ordering::Relaxed) == ENV_SCANNED {
            return None;
        }
    }
    let (delay, outcome) = {
        let registry = REGISTRY.read();
        let (_, armed) = registry.iter().find(|(n, _)| n == site)?;
        if armed
            .scope
            .is_some_and(|id| id != std::thread::current().id())
        {
            return None;
        }
        // Probability gate (deterministic xorshift64*).
        if armed.spec.p_ppm < 1_000_000 {
            let mut x = armed.rng.load(Ordering::Relaxed);
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            armed.rng.store(x, Ordering::Relaxed);
            if (x.wrapping_mul(0x2545_f491_4f6c_dd1d) % 1_000_000) as u32 >= armed.spec.p_ppm {
                return None;
            }
        }
        // Trigger budget.
        if armed.remaining.fetch_sub(1, Ordering::SeqCst) <= 0 {
            return None;
        }
        armed.hits.fetch_add(1, Ordering::Relaxed);
        INJECTED_TOTAL.fetch_add(1, Ordering::Relaxed);
        let outcome = match armed.spec.kind {
            Kind::None => Injected::Delayed,
            Kind::Err => Injected::Err,
            Kind::Short(n) => Injected::ShortWrite(n),
        };
        (armed.spec.delay, outcome)
    };
    if let Some(d) = delay {
        std::thread::sleep(d);
    }
    Some(outcome)
}

/// Marker embedded in injected error messages, so resilience code and the
/// chaos harness can tell injected faults from real ones.
pub const INJECTED_MARKER: &str = "injected fault";

/// The error an `err` clause produces.
pub fn injected_error(site: &str) -> io::Error {
    io::Error::other(format!("{INJECTED_MARKER} at {site}"))
}

/// Was this error produced by a failpoint?
pub fn is_injected(err: &io::Error) -> bool {
    err.to_string().contains(INJECTED_MARKER)
}

/// Evaluate a site in an I/O path: `Ok(())` to proceed, `Err` on an
/// injected failure. `short:` clauses also map to an error here; write
/// loops that can honor them should call [`eval`] directly.
#[inline]
pub fn check_io(site: &str) -> io::Result<()> {
    match eval(site) {
        None | Some(Injected::Delayed) => Ok(()),
        Some(_) => Err(injected_error(site)),
    }
}

/// Total faults injected process-wide (for the `/metrics` gauge).
pub fn injected_total() -> u64 {
    INJECTED_TOTAL.load(Ordering::Relaxed)
}

/// Trigger count for one site (0 when never armed or never hit).
pub fn hits(site: &str) -> u64 {
    REGISTRY
        .read()
        .iter()
        .find(|(n, _)| n == site)
        .map_or(0, |(_, s)| s.hits.load(Ordering::Relaxed))
}

/// Catalog of compiled-in injection sites (kept here so DESIGN.md and the
/// chaos harness have one authoritative list to reference).
pub mod sites {
    /// `Wal::append` payload write.
    pub const DB_WAL_APPEND: &str = "db.wal.append";
    /// `Wal` fsync (append-time and explicit).
    pub const DB_WAL_FSYNC: &str = "db.wal.fsync";
    /// Compaction's stop-the-world file swap (rename + epoch bump).
    pub const DB_COMPACT_SWAP: &str = "db.compact.swap";
    /// HTTP accept loop, per accepted connection.
    pub const HTTPD_ACCEPT: &str = "httpd.accept";
    /// HTTP request read path.
    pub const HTTPD_READ: &str = "httpd.read";
    /// HTTP response write path.
    pub const HTTPD_WRITE: &str = "httpd.write";
    /// Discovery UDP publish send.
    pub const DISCOVERY_UDP_SEND: &str = "discovery.udp.send";
    /// Discovery UDP station receive.
    pub const DISCOVERY_UDP_RECV: &str = "discovery.udp.recv";
    /// File-service open.
    pub const FILE_OPEN: &str = "file.open";
    /// File-service read.
    pub const FILE_READ: &str = "file.read";
    /// Session persistence write.
    pub const SESSION_PERSIST: &str = "session.persist";
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global, so tests that arm sites use unique
    // names and RAII guards to stay independent.

    #[test]
    fn disabled_site_is_none() {
        assert_eq!(eval("test.never-armed"), None);
        assert!(check_io("test.never-armed").is_ok());
    }

    #[test]
    fn err_spec_triggers_and_counts() {
        let before = injected_total();
        let _g = with("test.err", "err");
        assert_eq!(eval("test.err"), Some(Injected::Err));
        let e = check_io("test.err").unwrap_err();
        assert!(is_injected(&e), "{e}");
        assert_eq!(hits("test.err"), 2);
        assert!(injected_total() >= before + 2);
        drop(_g);
        assert_eq!(eval("test.err"), None);
    }

    #[test]
    fn times_budget_expires() {
        let _g = with("test.times", "err|times=2");
        assert_eq!(eval("test.times"), Some(Injected::Err));
        assert_eq!(eval("test.times"), Some(Injected::Err));
        assert_eq!(eval("test.times"), None);
        assert_eq!(eval("test.times"), None);
        assert_eq!(hits("test.times"), 2);
    }

    #[test]
    fn short_write_spec() {
        let _g = with("test.short", "short:3");
        assert_eq!(eval("test.short"), Some(Injected::ShortWrite(3)));
        // check_io maps it to an error for callers that can't do partials.
        assert!(check_io("test.short").is_err());
    }

    #[test]
    fn delay_spec_sleeps() {
        let _g = with("test.delay", "delay:20ms");
        let start = std::time::Instant::now();
        assert_eq!(eval("test.delay"), Some(Injected::Delayed));
        assert!(start.elapsed() >= Duration::from_millis(20));
        // Delay-only sites never fail check_io.
        assert!(check_io("test.delay").is_ok());
    }

    #[test]
    fn probability_is_deterministic_and_roughly_calibrated() {
        let _g = with("test.prob", "err|p=0.25");
        let run = || -> Vec<bool> { (0..400).map(|_| eval("test.prob").is_some()).collect() };
        let first = run();
        let triggered = first.iter().filter(|&&b| b).count();
        // 400 draws at p=0.25: expect ~100; allow a wide deterministic band.
        assert!(
            (50..=150).contains(&triggered),
            "p=0.25 triggered {triggered}/400"
        );
        // Re-arming resets the RNG to the same seed: identical schedule.
        clear("test.prob");
        let _g2 = with("test.prob", "err|p=0.25");
        assert_eq!(run(), first);
    }

    #[test]
    fn spec_parse_errors() {
        assert!(parse_spec("bogus").is_err());
        assert!(parse_spec("p=1.5").is_err());
        assert!(parse_spec("delay:xyz").is_err());
        assert!(parse_spec("short:q").is_err());
        assert!(parse_spec("times=x").is_err());
        assert!(configure("test.parse", "nope").is_err());
    }

    #[test]
    fn spec_composition_parses() {
        let s = parse_spec("delay:2ms|err|p=0.5|times=3").unwrap();
        assert_eq!(s.delay, Some(Duration::from_millis(2)));
        assert_eq!(s.kind, Kind::Err);
        assert_eq!(s.p_ppm, 500_000);
        assert_eq!(s.times, Some(3));
        // Bare number = ms; us and s suffixes.
        assert_eq!(
            parse_spec("delay:7").unwrap().delay,
            Some(Duration::from_millis(7))
        );
        assert_eq!(
            parse_spec("delay:100us").unwrap().delay,
            Some(Duration::from_micros(100))
        );
        assert_eq!(
            parse_spec("delay:1s").unwrap().delay,
            Some(Duration::from_secs(1))
        );
    }

    #[test]
    fn thread_scoped_site_is_invisible_to_other_threads() {
        let _g = with_thread("test.scoped", "err");
        assert_eq!(eval("test.scoped"), Some(Injected::Err));
        let other = std::thread::spawn(|| eval("test.scoped"));
        assert_eq!(other.join().unwrap(), None);
        // The budget was not consumed by the other thread's miss.
        assert_eq!(eval("test.scoped"), Some(Injected::Err));
    }

    #[test]
    fn reconfigure_replaces_spec() {
        let _g = with("test.reconf", "err");
        assert_eq!(eval("test.reconf"), Some(Injected::Err));
        configure("test.reconf", "short:1").unwrap();
        assert_eq!(eval("test.reconf"), Some(Injected::ShortWrite(1)));
    }
}
