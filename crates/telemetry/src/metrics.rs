//! The lock-free metrics plane: counters, gauges, and log2-bucketed
//! latency histograms.
//!
//! Design constraints (DESIGN.md "Observability"): every update on the
//! request hot path must be a handful of relaxed atomic operations — no
//! locks, no allocation — because PR 1 just spent a whole change making
//! that path fast. Aggregation (snapshots, quantiles, rendering) is the
//! cold path and may take locks.
//!
//! * [`Counter`] / [`Gauge`] — single wait-free atomics.
//! * [`Histogram`] — log2-bucketed, striped across cache-line-aligned
//!   shards indexed by a per-thread id, so concurrent recorders on
//!   different cores do not bounce the same cache line. Quantiles are
//!   answered from bucket counts at export time (p50/p95/p99 resolve to
//!   the upper bound of the covering power-of-two bucket).
//! * [`MethodTable`] — a 16-way sharded name → stats map. Updates through
//!   an existing entry are lock-free; resolving a name takes one sharded
//!   read lock held for a hash lookup (first registration of a new method
//!   takes the matching write lock once).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

/// A monotonic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Set the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Increment by one (e.g. an item entered a queue).
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrement by one. Callers must pair this with [`Gauge::inc`]; an
    /// unbalanced decrement wraps rather than saturating (wait-free beats
    /// defensive here — the hot path cannot afford a CAS loop).
    #[inline]
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets. Bucket `i` covers `[2^i, 2^(i+1))` (bucket 0
/// covers 0 and 1). With microsecond samples the last bucket's lower bound
/// is ~2^39 µs ≈ 6.4 days, far beyond any request.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// Stripes per histogram. Each stripe is cache-line aligned; a thread
/// always hits the same stripe, so two recording threads contend only when
/// they hash to the same stripe.
const STRIPES: usize = 4;

static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's stripe index, assigned round-robin on first use.
    static STRIPE: usize = NEXT_THREAD.fetch_add(1, Ordering::Relaxed) % STRIPES;
}

/// Bucket index for a sample (⌊log2⌋, clamped).
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < 2 {
        0
    } else {
        ((63 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i`.
fn bucket_upper(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// One cache-line-aligned histogram stripe.
#[repr(align(64))]
struct Stripe {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Stripe {
    fn default() -> Self {
        Stripe {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A striped, lock-free log2 histogram (values in microseconds by
/// convention, but unit-agnostic).
pub struct Histogram {
    stripes: [Stripe; STRIPES],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            stripes: std::array::from_fn(|_| Stripe::default()),
        }
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one sample: four relaxed atomic RMWs on this thread's stripe.
    #[inline]
    pub fn record(&self, v: u64) {
        let stripe = &self.stripes[STRIPE.with(|s| *s)];
        stripe.count.fetch_add(1, Ordering::Relaxed);
        stripe.sum.fetch_add(v, Ordering::Relaxed);
        stripe.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        stripe.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Merge all stripes into an owned snapshot (cold path).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot::default();
        for stripe in &self.stripes {
            snap.count += stripe.count.load(Ordering::Relaxed);
            snap.sum += stripe.sum.load(Ordering::Relaxed);
            snap.max = snap.max.max(stripe.max.load(Ordering::Relaxed));
            for (i, b) in stripe.buckets.iter().enumerate() {
                snap.buckets[i] += b.load(Ordering::Relaxed);
            }
        }
        snap
    }
}

/// An owned, mergeable view of a [`Histogram`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
    /// Per-bucket counts.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// The value at quantile `q` (0.0..=1.0): the upper bound of the first
    /// bucket whose cumulative count reaches `q * count`, clamped to the
    /// observed max. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cumulative += b;
            if cumulative >= target {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Arithmetic mean (exact — sum and count are exact).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Per-method statistics.
#[derive(Default)]
pub struct MethodStats {
    /// Calls dispatched to the method.
    pub calls: Counter,
    /// Calls that produced an RPC fault.
    pub faults: Counter,
    /// End-to-end request latency, microseconds.
    pub latency: Histogram,
}

const TABLE_SHARDS: usize = 16;

/// FNV-1a — tiny, deterministic, no SipHash state allocation per lookup.
fn shard_of(name: &str) -> usize {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h as usize) % TABLE_SHARDS
}

/// A sharded `method name → stats` table. The common case (method already
/// registered) takes one sharded read lock for the lookup; all stat
/// updates are lock-free atomics on the returned entry.
pub struct MethodTable {
    shards: [RwLock<HashMap<String, Arc<MethodStats>>>; TABLE_SHARDS],
}

impl Default for MethodTable {
    fn default() -> Self {
        MethodTable {
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
        }
    }
}

impl MethodTable {
    /// New empty table.
    pub fn new() -> Self {
        MethodTable::default()
    }

    /// Stats entry for `name`, creating it on first use.
    pub fn entry(&self, name: &str) -> Arc<MethodStats> {
        let shard = &self.shards[shard_of(name)];
        if let Some(stats) = shard.read().get(name) {
            return Arc::clone(stats);
        }
        Arc::clone(shard.write().entry(name.to_owned()).or_default())
    }

    /// All `(name, stats)` pairs, name-sorted (cold path).
    pub fn snapshot(&self) -> Vec<(String, Arc<MethodStats>)> {
        let mut out: Vec<(String, Arc<MethodStats>)> = Vec::new();
        for shard in &self.shards {
            for (name, stats) in shard.read().iter() {
                out.push((name.clone(), Arc::clone(stats)));
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge() {
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::default();
        g.set(42);
        assert_eq!(g.get(), 42);
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper(0), 1);
        assert_eq!(bucket_upper(9), 1023);
    }

    #[test]
    fn histogram_exact_sums() {
        let h = Histogram::new();
        for v in [0u64, 1, 5, 100, 1000, 65_536] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 66_642);
        assert_eq!(s.max, 65_536);
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
    }

    /// Satellite requirement: N threads hammer one histogram; totals and
    /// bucket sums must be conserved exactly.
    #[test]
    fn histogram_concurrent_conservation() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 10_000;
        let h = Arc::new(Histogram::new());
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let h = Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    // Deterministic spread across many buckets.
                    h.record((t * PER_THREAD + i) % 4096);
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, THREADS * PER_THREAD);
        // Each thread records the full residue range 0..4096 spread evenly.
        let expected_sum: u64 = (0..THREADS * PER_THREAD).map(|n| n % 4096).sum();
        assert_eq!(s.sum, expected_sum);
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
        assert_eq!(s.max, 4095);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(10); // bucket [8,16)
        }
        for _ in 0..10 {
            h.record(1000); // bucket [512,1024)
        }
        let s = h.snapshot();
        assert_eq!(s.p50(), 15);
        assert_eq!(s.p95(), 1000); // clamped to observed max
        assert_eq!(s.p99(), 1000);
        assert_eq!(s.quantile(1.0), 1000);
        assert!(s.mean() > 10.0 && s.mean() < 1000.0);
        assert_eq!(HistogramSnapshot::default().p50(), 0);
    }

    #[test]
    fn method_table_entries_are_shared() {
        let table = MethodTable::new();
        table.entry("echo.echo").calls.inc();
        table.entry("echo.echo").calls.inc();
        table.entry("system.ping").calls.inc();
        let snap = table.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].0, "echo.echo");
        assert_eq!(snap[0].1.calls.get(), 2);
        assert_eq!(snap[1].1.calls.get(), 1);
    }
}
