//! # clarens-telemetry — the observability plane
//!
//! The paper's discovery network exists so "MonALISA-like station servers"
//! can watch a fleet of Clarens servers; the companion architecture papers
//! (cs/0306002, cs/0504044) operate deployments on exactly that
//! monitoring. This crate is the server side of that story:
//!
//! * [`metrics`] — a sharded, lock-free registry of counters, gauges, and
//!   log2-bucketed latency histograms, cheap enough for the request hot
//!   path (a handful of relaxed atomics per update);
//! * [`trace`] — request-scoped spans over the paper's pipeline (accept →
//!   parse → session check → ACL walk → dispatch → serialize → write) and
//!   a fixed ring of slow-request traces;
//! * [`log`] — a tiny leveled logger (env-controlled, off by default so
//!   benches stay clean);
//! * [`Telemetry`] — the per-server facade the HTTP layer, the core, and
//!   the export surfaces (`GET /metrics`, `system.metrics`,
//!   `system.trace_tail`) share.

pub mod log;
pub mod metrics;
pub mod trace;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MethodStats, MethodTable};
pub use trace::{Phase, RequestTrace, SlowTrace, TraceRing, PHASE_COUNT, PHASE_NAMES};

/// HTTP/transport-layer counters. Always live (they are single atomic
/// adds), independent of whether span timing is enabled.
#[derive(Debug, Default)]
pub struct HttpCounters {
    /// TCP connections accepted.
    pub connections: Counter,
    /// Requests completed (any status).
    pub requests: Counter,
    /// Requests served on an already-used keep-alive connection.
    pub keepalive_reuse: Counter,
    /// Keep-alive connections closed by the server's idle read timeout.
    pub idle_timeouts: Counter,
    /// Connections torn down by the peer (reset/abort/mid-request EOF).
    pub peer_resets: Counter,
    /// TLS handshakes that failed.
    pub handshake_failures: Counter,
    /// Responses with a 5xx status.
    pub responses_5xx: Counter,
    /// Total response bytes written (head + body, all statuses).
    pub bytes_out: Counter,
    /// Subset of `bytes_out` moved by `sendfile(2)` (zero-copy file→socket;
    /// never touches a userspace buffer).
    pub bytes_sendfile: Counter,
    /// Connections parked mid-response because the socket send buffer
    /// filled: the write cursor is saved and the poller re-arms for
    /// writability instead of a worker spinning on the socket.
    pub parked_writers: Gauge,
    /// Parked writers expired by the deadline wheel because the peer never
    /// drained its receive window in time (slow-consumer eviction).
    pub write_stalls: Counter,
    /// Streamed response bodies that under-delivered against their declared
    /// Content-Length; the connection is force-closed to avoid desyncing
    /// keep-alive framing.
    pub stream_truncations: Counter,
    /// Scratch-arena buffer takes served from the per-worker pool instead
    /// of allocating (see `clarens-httpd`'s `Scratch`).
    pub buffer_pool_reuse: Counter,
    /// Keep-alive connections currently parked in the readiness poller
    /// (idle between requests, holding no worker thread).
    pub parked: Gauge,
    /// Work items (fresh or re-dispatched connections) currently queued
    /// for a worker.
    pub queue_depth: Gauge,
    /// Parked connections re-dispatched to the worker queue because the
    /// poller saw them become readable.
    pub poll_wakeups: Counter,
    /// Connections shed with `503` + `Connection: close` because the
    /// `max_connections` budget was exhausted.
    pub sheds: Counter,
}

/// Resilience counters: the unhappy paths the fault-injection harness
/// exercises. Always live, like [`HttpCounters`].
#[derive(Debug, Default)]
pub struct ResilienceCounters {
    /// Requests answered with the 504-style DEADLINE fault because the
    /// per-request budget expired.
    pub deadline_exceeded: Counter,
    /// Server-side retry attempts (e.g. discovery re-publish after a lost
    /// UDP send).
    pub retries: Counter,
    /// Mutating calls refused because a subsystem is running degraded
    /// (e.g. the store went read-only after a WAL failure).
    pub degraded_rejects: Counter,
}

/// Federation counters: cross-node request routing (`proxy.call`) and
/// WAL-shipping replication. Always live, like [`HttpCounters`].
#[derive(Default)]
pub struct FederationCounters {
    /// `proxy.call` requests this node forwarded to the owning peer.
    pub forwarded: Counter,
    /// Forwards that failed at the transport (peer unreachable/reset).
    pub forward_failures: Counter,
    /// `proxy.call` requests refused because the hop budget was spent
    /// (loop protection between misconfigured nodes).
    pub hop_limit_rejects: Counter,
    /// WAL replication chunks this node served to followers.
    pub replication_chunks: Counter,
    /// Replication fetches whose cursor was stale (epoch rolled by a
    /// compaction, or offset past the committed length) and restarted
    /// from the current snapshot. A steady trickle is normal after
    /// compactions; a flood means followers can't keep up between
    /// rewrites.
    pub replication_resyncs: Counter,
    /// Time a forwarding node spent waiting on the remote peer
    /// (microseconds) — the cross-node share of a proxied request, as
    /// distinct from the local dispatch span that contains it.
    pub forward_us: Histogram,
    /// Leader elections this node won (promotions to leader).
    pub elections: Counter,
    /// Times this node stepped down from leadership after observing a
    /// higher epoch (a deposed leader rejoining the cluster).
    pub demotions: Counter,
    /// Replicated writes rejected with NOT_LEADER because this node is a
    /// follower, a deposed leader, or a leader whose lease lapsed
    /// (split-brain self-fencing).
    pub fenced_writes: Counter,
    /// Replication fetch attempts that failed at the transport (leader
    /// dead or unreachable) and entered the follower's backoff loop.
    pub replication_fetch_errors: Counter,
}

/// Per-protocol counters.
#[derive(Debug, Default)]
pub struct ProtocolCounters {
    /// Requests decoded as this protocol.
    pub requests: Counter,
    /// Requests of this protocol answered with a fault.
    pub faults: Counter,
}

/// Wire protocols tracked per-request.
pub const PROTOCOL_NAMES: [&str; 4] = ["xmlrpc", "soap", "jsonrpc", "binary"];

type GaugeFn = Box<dyn Fn() -> u64 + Send + Sync>;

/// Default slow-request threshold (10 ms).
pub const DEFAULT_SLOW_US: u64 = 10_000;

/// Default trace-ring capacity.
pub const DEFAULT_RING_CAPACITY: usize = 64;

/// One server's telemetry: the shared instance every layer records into
/// and every export surface reads from.
pub struct Telemetry {
    /// Span timing enabled? Counters stay live either way; this gates the
    /// clock reads and histogram updates on the hot path.
    timing: bool,
    /// Transport counters.
    pub http: HttpCounters,
    /// Resilience counters (deadlines, retries, degraded-mode rejects).
    pub resilience: ResilienceCounters,
    /// Federation counters (forwarded calls, replication chunks).
    pub federation: FederationCounters,
    /// Per-phase latency histograms (microseconds), indexed by
    /// [`Phase`]` as usize`.
    phases: [Histogram; PHASE_COUNT],
    /// End-to-end request latency (microseconds).
    total: Histogram,
    /// Per-`module.method` stats.
    methods: MethodTable,
    /// Per-protocol counters, index-aligned with [`PROTOCOL_NAMES`].
    protocols: [ProtocolCounters; 4],
    /// Slow-request ring.
    ring: TraceRing,
    /// Requests at or above this many microseconds enter the ring.
    slow_us: AtomicU64,
    /// External gauges (DB counters, cache stats, ...), registered by the
    /// subsystems that own the underlying numbers and evaluated at export.
    gauges: RwLock<Vec<(String, GaugeFn)>>,
}

impl Telemetry {
    /// Build a telemetry plane. `timing` gates per-request span clocks;
    /// `slow_us` is the slow-trace threshold (microseconds).
    pub fn new(timing: bool, slow_us: u64, ring_capacity: usize) -> Arc<Telemetry> {
        Arc::new(Telemetry {
            timing,
            http: HttpCounters::default(),
            resilience: ResilienceCounters::default(),
            federation: FederationCounters::default(),
            phases: std::array::from_fn(|_| Histogram::new()),
            total: Histogram::new(),
            methods: MethodTable::new(),
            protocols: Default::default(),
            ring: TraceRing::new(ring_capacity),
            slow_us: AtomicU64::new(slow_us),
            gauges: RwLock::new(Vec::new()),
        })
    }

    /// A default-configured plane with timing on.
    pub fn enabled() -> Arc<Telemetry> {
        Telemetry::new(true, DEFAULT_SLOW_US, DEFAULT_RING_CAPACITY)
    }

    /// Is span timing active?
    pub fn timing_enabled(&self) -> bool {
        self.timing
    }

    /// Begin a request trace (timing per this plane's configuration).
    pub fn begin_request(&self) -> RequestTrace {
        RequestTrace::start(self.timing)
    }

    /// Adjust the slow-trace threshold at runtime (µs).
    pub fn set_slow_threshold_us(&self, us: u64) {
        self.slow_us.store(us, Ordering::Relaxed);
    }

    /// Current slow-trace threshold (µs).
    pub fn slow_threshold_us(&self) -> u64 {
        self.slow_us.load(Ordering::Relaxed)
    }

    /// Finish one request: feed every aggregate the trace touches.
    /// `unix_time` stamps any slow-ring entry.
    pub fn finish_request(&self, trace: &RequestTrace, unix_time: i64) {
        self.http.requests.inc();
        if trace.status >= 500 {
            self.http.responses_5xx.inc();
        }
        if let Some(protocol) = trace.protocol {
            if let Some(i) = PROTOCOL_NAMES.iter().position(|n| *n == protocol) {
                self.protocols[i].requests.inc();
                if trace.fault {
                    self.protocols[i].faults.inc();
                }
            }
        }
        let method_stats = trace.method.as_deref().map(|m| self.methods.entry(m));
        if let Some(stats) = &method_stats {
            stats.calls.inc();
            if trace.fault {
                stats.faults.inc();
            }
        }
        if !trace.timing() {
            return;
        }
        let total_us = trace.total_us();
        self.total.record(total_us);
        for (i, &us) in trace.phase_us.iter().enumerate() {
            if us > 0 {
                self.phases[i].record(us);
            }
        }
        if let Some(stats) = &method_stats {
            stats.latency.record(total_us);
        }
        if total_us >= self.slow_us.load(Ordering::Relaxed) {
            self.ring.push(SlowTrace {
                seq: 0,
                unix_time,
                method: trace.method.clone(),
                protocol: trace.protocol,
                status: trace.status,
                fault: trace.fault,
                total_us,
                phase_us: trace.phase_us,
            });
        }
    }

    /// Register an externally-owned gauge, evaluated at export time.
    /// Callbacks must be cheap and must not call back into telemetry.
    pub fn register_gauge(
        &self,
        name: impl Into<String>,
        read: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.gauges.write().push((name.into(), Box::new(read)));
    }

    /// Evaluate one registered gauge by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        let gauges = self.gauges.read();
        gauges.iter().find(|(n, _)| n == name).map(|(_, f)| f())
    }

    /// Evaluate all registered gauges.
    pub fn gauges_snapshot(&self) -> Vec<(String, u64)> {
        self.gauges
            .read()
            .iter()
            .map(|(n, f)| (n.clone(), f()))
            .collect()
    }

    /// Snapshot of every phase histogram plus the end-to-end total,
    /// name-tagged (`total` last).
    pub fn phase_snapshots(&self) -> Vec<(&'static str, HistogramSnapshot)> {
        let mut out: Vec<(&'static str, HistogramSnapshot)> = PHASE_NAMES
            .iter()
            .zip(self.phases.iter())
            .map(|(name, h)| (*name, h.snapshot()))
            .collect();
        out.push(("total", self.total.snapshot()));
        out
    }

    /// End-to-end latency snapshot.
    pub fn total_snapshot(&self) -> HistogramSnapshot {
        self.total.snapshot()
    }

    /// Per-method stats, name-sorted.
    pub fn methods_snapshot(&self) -> Vec<(String, Arc<MethodStats>)> {
        self.methods.snapshot()
    }

    /// Per-protocol `(name, requests, faults)`.
    pub fn protocols_snapshot(&self) -> Vec<(&'static str, u64, u64)> {
        PROTOCOL_NAMES
            .iter()
            .zip(self.protocols.iter())
            .map(|(name, c)| (*name, c.requests.get(), c.faults.get()))
            .collect()
    }

    /// Newest `limit` slow traces.
    pub fn trace_tail(&self, limit: usize) -> Vec<SlowTrace> {
        self.ring.tail(limit)
    }

    /// Total slow traces recorded (for wraparound checks).
    pub fn slow_trace_count(&self) -> u64 {
        self.ring.pushed()
    }

    /// Render the whole plane in Prometheus-style plaintext exposition
    /// format for `GET /metrics`.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(4096);
        let h = &self.http;
        for (name, value) in [
            ("clarens_http_connections_total", h.connections.get()),
            ("clarens_requests_total", h.requests.get()),
            (
                "clarens_http_keepalive_reuse_total",
                h.keepalive_reuse.get(),
            ),
            ("clarens_http_idle_timeouts_total", h.idle_timeouts.get()),
            ("clarens_http_peer_resets_total", h.peer_resets.get()),
            (
                "clarens_http_handshake_failures_total",
                h.handshake_failures.get(),
            ),
            ("clarens_http_responses_5xx_total", h.responses_5xx.get()),
            ("clarens_http_bytes_out_total", h.bytes_out.get()),
            ("clarens_http_bytes_sendfile_total", h.bytes_sendfile.get()),
            ("clarens_buffer_pool_reuse_total", h.buffer_pool_reuse.get()),
            ("clarens_http_parked_connections", h.parked.get()),
            ("clarens_http_parked_writers", h.parked_writers.get()),
            ("clarens_http_write_stalls_total", h.write_stalls.get()),
            (
                "clarens_http_stream_truncations_total",
                h.stream_truncations.get(),
            ),
            ("clarens_http_queue_depth", h.queue_depth.get()),
            ("clarens_http_poll_wakeups_total", h.poll_wakeups.get()),
            ("clarens_http_sheds_total", h.sheds.get()),
            (
                "clarens_deadline_exceeded_total",
                self.resilience.deadline_exceeded.get(),
            ),
            ("clarens_retries_total", self.resilience.retries.get()),
            (
                "clarens_degraded_rejects_total",
                self.resilience.degraded_rejects.get(),
            ),
            (
                "clarens_forwarded_calls_total",
                self.federation.forwarded.get(),
            ),
            (
                "clarens_forward_failures_total",
                self.federation.forward_failures.get(),
            ),
            (
                "clarens_hop_limit_rejects_total",
                self.federation.hop_limit_rejects.get(),
            ),
            (
                "clarens_replication_chunks_total",
                self.federation.replication_chunks.get(),
            ),
            (
                "clarens_replication_resyncs_total",
                self.federation.replication_resyncs.get(),
            ),
            ("clarens_elections_total", self.federation.elections.get()),
            ("clarens_demotions_total", self.federation.demotions.get()),
            (
                "clarens_fenced_writes_total",
                self.federation.fenced_writes.get(),
            ),
            (
                "clarens_replication_fetch_errors_total",
                self.federation.replication_fetch_errors.get(),
            ),
        ] {
            let _ = writeln!(out, "{name} {value}");
        }
        let forward = self.federation.forward_us.snapshot();
        if forward.count > 0 {
            render_histogram(
                &mut out,
                "clarens_forward_latency_us",
                "span",
                "forward",
                &forward,
            );
        }
        for (name, requests, faults) in self.protocols_snapshot() {
            let _ = writeln!(
                out,
                "clarens_protocol_requests_total{{protocol=\"{name}\"}} {requests}"
            );
            let _ = writeln!(
                out,
                "clarens_protocol_faults_total{{protocol=\"{name}\"}} {faults}"
            );
        }
        for (phase, snap) in self.phase_snapshots() {
            render_histogram(&mut out, "clarens_phase_latency_us", "phase", phase, &snap);
        }
        for (method, stats) in self.methods_snapshot() {
            let _ = writeln!(
                out,
                "clarens_method_calls_total{{method=\"{method}\"}} {}",
                stats.calls.get()
            );
            let _ = writeln!(
                out,
                "clarens_method_faults_total{{method=\"{method}\"}} {}",
                stats.faults.get()
            );
            let snap = stats.latency.snapshot();
            if snap.count > 0 {
                render_histogram(
                    &mut out,
                    "clarens_method_latency_us",
                    "method",
                    &method,
                    &snap,
                );
            }
        }
        for (name, value) in self.gauges_snapshot() {
            let _ = writeln!(out, "clarens_{} {value}", name.replace('.', "_"));
        }
        let _ = writeln!(out, "clarens_slow_traces_total {}", self.ring.pushed());
        out
    }
}

fn render_histogram(
    out: &mut String,
    metric: &str,
    label: &str,
    label_value: &str,
    snap: &HistogramSnapshot,
) {
    use std::fmt::Write as _;
    let _ = writeln!(
        out,
        "{metric}_count{{{label}=\"{label_value}\"}} {}",
        snap.count
    );
    let _ = writeln!(
        out,
        "{metric}_sum{{{label}=\"{label_value}\"}} {}",
        snap.sum
    );
    for (q, v) in [
        ("0.5", snap.p50()),
        ("0.95", snap.p95()),
        ("0.99", snap.p99()),
    ] {
        let _ = writeln!(
            out,
            "{metric}{{{label}=\"{label_value}\",quantile=\"{q}\"}} {v}"
        );
    }
    let _ = writeln!(
        out,
        "{metric}_max{{{label}=\"{label_value}\"}} {}",
        snap.max
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traced_request(t: &Telemetry, method: &str, us: [u64; PHASE_COUNT]) {
        let mut trace = t.begin_request();
        trace.method = Some(method.to_owned());
        trace.protocol = Some("xmlrpc");
        trace.status = 200;
        for (i, &v) in us.iter().enumerate() {
            trace.phase_us[i] = v;
        }
        t.finish_request(&trace, 1_700_000_000);
    }

    #[test]
    fn finish_request_feeds_all_aggregates() {
        let t = Telemetry::new(true, 0, 8); // threshold 0: everything is "slow"
        traced_request(&t, "echo.echo", [1, 2, 3, 4, 5, 6]);
        traced_request(&t, "echo.echo", [1, 2, 3, 4, 5, 6]);
        traced_request(&t, "system.ping", [1, 0, 0, 1, 1, 1]);

        assert_eq!(t.http.requests.get(), 3);
        let methods = t.methods_snapshot();
        assert_eq!(methods.len(), 2);
        assert_eq!(methods[0].0, "echo.echo");
        assert_eq!(methods[0].1.calls.get(), 2);
        let protocols = t.protocols_snapshot();
        assert_eq!(protocols[0], ("xmlrpc", 3, 0));
        assert_eq!(t.trace_tail(10).len(), 3);
        let phases = t.phase_snapshots();
        assert_eq!(phases.len(), PHASE_COUNT + 1);
        assert_eq!(phases[0].0, "parse");
        assert_eq!(phases[0].1.count, 3);
        // The auth phase was 0 for ping, so only two samples.
        assert_eq!(phases[1].1.count, 2);
        assert_eq!(phases.last().unwrap().0, "total");
        assert_eq!(phases.last().unwrap().1.count, 3);
    }

    #[test]
    fn timing_disabled_still_counts() {
        let t = Telemetry::new(false, 0, 8);
        let mut trace = t.begin_request();
        assert!(!trace.timing());
        trace.method = Some("echo.echo".into());
        trace.protocol = Some("jsonrpc");
        trace.status = 200;
        t.finish_request(&trace, 0);
        assert_eq!(t.http.requests.get(), 1);
        assert_eq!(t.methods_snapshot()[0].1.calls.get(), 1);
        // But no latency samples and no slow traces.
        assert_eq!(t.total_snapshot().count, 0);
        assert_eq!(t.trace_tail(10).len(), 0);
    }

    #[test]
    fn fault_and_5xx_accounting() {
        let t = Telemetry::enabled();
        let mut trace = t.begin_request();
        trace.method = Some("file.read".into());
        trace.protocol = Some("soap");
        trace.status = 500;
        trace.fault = true;
        t.finish_request(&trace, 0);
        assert_eq!(t.http.responses_5xx.get(), 1);
        assert_eq!(t.methods_snapshot()[0].1.faults.get(), 1);
        let soap = t
            .protocols_snapshot()
            .into_iter()
            .find(|(n, _, _)| *n == "soap")
            .unwrap();
        assert_eq!((soap.1, soap.2), (1, 1));
    }

    #[test]
    fn gauges_and_rendering() {
        let t = Telemetry::enabled();
        t.register_gauge("db.lookups", || 41);
        t.register_gauge("cache.sessions.hits", || 7);
        assert_eq!(t.gauge("db.lookups"), Some(41));
        assert_eq!(t.gauge("missing"), None);
        traced_request(&t, "echo.echo", [1, 1, 1, 1, 1, 1]);

        t.resilience.deadline_exceeded.inc();
        t.resilience.retries.inc();
        let text = t.render_prometheus();
        assert!(text.contains("clarens_requests_total 1"));
        assert!(text.contains("clarens_deadline_exceeded_total 1"));
        assert!(text.contains("clarens_retries_total 1"));
        assert!(text.contains("clarens_degraded_rejects_total 0"));
        assert!(text.contains("clarens_db_lookups 41"));
        assert!(text.contains("clarens_cache_sessions_hits 7"));
        assert!(text.contains("clarens_method_calls_total{method=\"echo.echo\"} 1"));
        assert!(text.contains("clarens_phase_latency_us{phase=\"parse\",quantile=\"0.5\"}"));
        assert!(text.contains("clarens_protocol_requests_total{protocol=\"xmlrpc\"} 1"));
    }

    #[test]
    fn federation_counters_render() {
        let t = Telemetry::enabled();
        let text = t.render_prometheus();
        assert!(text.contains("clarens_forwarded_calls_total 0"));
        // The forward histogram only renders once something was forwarded.
        assert!(!text.contains("clarens_forward_latency_us"));
        t.federation.forwarded.inc();
        t.federation.forward_us.record(1234);
        t.federation.replication_chunks.inc();
        t.federation.elections.inc();
        t.federation.fenced_writes.inc();
        t.federation.replication_fetch_errors.inc();
        let text = t.render_prometheus();
        assert!(text.contains("clarens_forwarded_calls_total 1"));
        assert!(text.contains("clarens_replication_chunks_total 1"));
        assert!(text.contains("clarens_elections_total 1"));
        assert!(text.contains("clarens_demotions_total 0"));
        assert!(text.contains("clarens_fenced_writes_total 1"));
        assert!(text.contains("clarens_replication_fetch_errors_total 1"));
        assert!(text.contains("clarens_forward_latency_us_count{span=\"forward\"} 1"));
    }

    #[test]
    fn slow_threshold_gates_ring() {
        let t = Telemetry::new(true, u64::MAX, 8);
        traced_request(&t, "echo.echo", [1, 1, 1, 1, 1, 1]);
        assert_eq!(t.trace_tail(10).len(), 0);
        t.set_slow_threshold_us(0);
        assert_eq!(t.slow_threshold_us(), 0);
        traced_request(&t, "echo.echo", [1, 1, 1, 1, 1, 1]);
        assert_eq!(t.trace_tail(10).len(), 1);
    }
}
