//! A tiny leveled logger.
//!
//! Off by default so benchmarks stay clean; enabled via the `CLARENS_LOG`
//! environment variable (`error|warn|info|debug|trace|off`) or
//! programmatically with [`set_level`]. Level checks are a single relaxed
//! atomic load, so disabled log statements cost one branch.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity. Larger = more verbose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Logging disabled.
    Off = 0,
    /// Unrecoverable or operator-visible failures.
    Error = 1,
    /// Suspicious but non-fatal conditions.
    Warn = 2,
    /// Lifecycle events (startup, shutdown, binds).
    Info = 3,
    /// Per-connection diagnostics (resets, handshake failures).
    Debug = 4,
    /// Everything.
    Trace = 5,
}

impl Level {
    fn parse(text: &str) -> Option<Level> {
        match text.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Some(Level::Off),
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }

    fn label(self) -> &'static str {
        match self {
            Level::Off => "OFF",
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }
}

/// Global level. Off by default: libraries and benches emit nothing unless
/// the operator opts in.
static LEVEL: AtomicU8 = AtomicU8::new(Level::Off as u8);

/// Set the global level.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current global level.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        1 => Level::Error,
        2 => Level::Warn,
        3 => Level::Info,
        4 => Level::Debug,
        5 => Level::Trace,
        _ => Level::Off,
    }
}

/// Would a statement at `l` be emitted?
#[inline]
pub fn enabled(l: Level) -> bool {
    l as u8 <= LEVEL.load(Ordering::Relaxed)
}

/// Initialize from `CLARENS_LOG`, falling back to `default` when the
/// variable is unset or unparseable. Long-running daemons pass
/// `Level::Info`; libraries never call this.
pub fn init_from_env_or(default: Level) {
    let level = std::env::var("CLARENS_LOG")
        .ok()
        .and_then(|v| Level::parse(&v))
        .unwrap_or(default);
    set_level(level);
}

/// Initialize from `CLARENS_LOG` (off when unset).
pub fn init_from_env() {
    init_from_env_or(Level::Off);
}

/// Emit one record (used by the macros; call through them).
pub fn log(l: Level, target: &str, args: fmt::Arguments<'_>) {
    if !enabled(l) {
        return;
    }
    eprintln!("[{:5}] {target}: {args}", l.label());
}

/// Log at error level.
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Error, module_path!(), format_args!($($arg)*))
    };
}

/// Log at warn level.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Warn, module_path!(), format_args!($($arg)*))
    };
}

/// Log at info level.
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Info, module_path!(), format_args!($($arg)*))
    };
}

/// Log at debug level.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Debug, module_path!(), format_args!($($arg)*))
    };
}

/// Log at trace level.
#[macro_export]
macro_rules! trace {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Trace, module_path!(), format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parsing_and_gating() {
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("off"), Some(Level::Off));
        assert_eq!(Level::parse("nonsense"), None);

        // The global level is process-wide; restore it afterwards.
        let before = level();
        set_level(Level::Warn);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_level(Level::Off);
        assert!(!enabled(Level::Error));
        set_level(before);
    }
}
