//! Request-scoped trace spans and the slow-request ring.
//!
//! A [`RequestTrace`] rides along with one HTTP request through the whole
//! pipeline the paper describes (accept → parse → session check → ACL walk
//! → dispatch → serialize → write). Each layer times its own phase; the
//! HTTP layer finishes the trace, which feeds the phase histograms, the
//! per-method table, and — when the request was slow — a fixed-size ring
//! buffer that `system.trace_tail` dumps for post-hoc debugging.

use std::time::Instant;

use parking_lot::Mutex;

/// Pipeline phases, in request order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Socket read + HTTP and RPC-envelope parsing.
    Parse = 0,
    /// Session resolution (the paper's first access check).
    Auth = 1,
    /// Method/file ACL walk (the second access check).
    Acl = 2,
    /// Service dispatch (the method body itself).
    Dispatch = 3,
    /// Response encoding to the negotiated protocol.
    Serialize = 4,
    /// Socket write of the response.
    Write = 5,
}

/// Number of phases.
pub const PHASE_COUNT: usize = 6;

/// Phase names, indexable by `Phase as usize`.
pub const PHASE_NAMES: [&str; PHASE_COUNT] =
    ["parse", "auth", "acl", "dispatch", "serialize", "write"];

/// One request's trace, filled in as the request moves through the layers.
#[derive(Debug)]
pub struct RequestTrace {
    /// Start of the request window (`None` when timing is disabled).
    t0: Option<Instant>,
    /// Accumulated microseconds per phase.
    pub phase_us: [u64; PHASE_COUNT],
    /// Dispatched `module.method` (RPC) or a synthetic name like
    /// `http.get`; `None` when the request never reached routing.
    pub method: Option<String>,
    /// Negotiated protocol name (`xmlrpc`/`soap`/`jsonrpc`/`binary`).
    pub protocol: Option<&'static str>,
    /// HTTP status of the response.
    pub status: u16,
    /// Did the RPC produce a fault response?
    pub fault: bool,
}

impl RequestTrace {
    /// Start a trace. With `timing` false every span degenerates to a
    /// plain call — no clock reads — so the disabled path costs nothing.
    pub fn start(timing: bool) -> RequestTrace {
        RequestTrace {
            t0: timing.then(Instant::now),
            phase_us: [0; PHASE_COUNT],
            method: None,
            protocol: None,
            status: 0,
            fault: false,
        }
    }

    /// A trace that records nothing (for untraced entry points).
    pub fn disabled() -> RequestTrace {
        RequestTrace::start(false)
    }

    /// Is span timing active?
    #[inline]
    pub fn timing(&self) -> bool {
        self.t0.is_some()
    }

    /// Run `f`, attributing its wall time to `phase`.
    #[inline]
    pub fn span<T>(&mut self, phase: Phase, f: impl FnOnce() -> T) -> T {
        if self.t0.is_none() {
            return f();
        }
        let start = Instant::now();
        let result = f();
        self.phase_us[phase as usize] += start.elapsed().as_micros() as u64;
        result
    }

    /// Attribute externally-measured microseconds to `phase`.
    #[inline]
    pub fn add_us(&mut self, phase: Phase, us: u64) {
        if self.t0.is_some() {
            self.phase_us[phase as usize] += us;
        }
    }

    /// Total microseconds since the trace started (0 when disabled).
    pub fn total_us(&self) -> u64 {
        self.t0.map(|t| t.elapsed().as_micros() as u64).unwrap_or(0)
    }

    /// Sum of all recorded phase times.
    pub fn phase_sum_us(&self) -> u64 {
        self.phase_us.iter().sum()
    }
}

/// A completed slow request, as stored in the ring.
#[derive(Debug, Clone)]
pub struct SlowTrace {
    /// Monotonic sequence number (total slow requests so far).
    pub seq: u64,
    /// Unix time the request finished.
    pub unix_time: i64,
    /// Dispatched method, if routing got that far.
    pub method: Option<String>,
    /// Protocol name.
    pub protocol: Option<&'static str>,
    /// HTTP status.
    pub status: u16,
    /// RPC fault?
    pub fault: bool,
    /// Total request microseconds.
    pub total_us: u64,
    /// Per-phase microseconds.
    pub phase_us: [u64; PHASE_COUNT],
}

struct RingInner {
    /// Next sequence number == total pushes so far.
    seq: u64,
    slots: Vec<SlowTrace>,
}

/// Fixed-capacity ring of the most recent slow requests. Pushes only
/// happen for requests over the slow threshold, so the mutex is far off
/// the common hot path.
pub struct TraceRing {
    capacity: usize,
    inner: Mutex<RingInner>,
}

impl TraceRing {
    /// Ring holding the `capacity` most recent entries.
    pub fn new(capacity: usize) -> TraceRing {
        TraceRing {
            capacity: capacity.max(1),
            inner: Mutex::new(RingInner {
                seq: 0,
                slots: Vec::new(),
            }),
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total entries ever pushed (≥ current length once wrapped).
    pub fn pushed(&self) -> u64 {
        self.inner.lock().seq
    }

    /// Append, overwriting the oldest entry when full.
    pub fn push(&self, mut trace: SlowTrace) {
        let mut inner = self.inner.lock();
        trace.seq = inner.seq;
        if inner.slots.len() < self.capacity {
            inner.slots.push(trace);
        } else {
            let at = (inner.seq % self.capacity as u64) as usize;
            inner.slots[at] = trace;
        }
        inner.seq += 1;
    }

    /// The most recent `limit` entries, newest first.
    pub fn tail(&self, limit: usize) -> Vec<SlowTrace> {
        let inner = self.inner.lock();
        let mut out = inner.slots.clone();
        out.sort_by_key(|t| std::cmp::Reverse(t.seq));
        out.truncate(limit);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slow(total_us: u64) -> SlowTrace {
        SlowTrace {
            seq: 0,
            unix_time: 0,
            method: Some("echo.echo".into()),
            protocol: Some("xmlrpc"),
            status: 200,
            fault: false,
            total_us,
            phase_us: [0; PHASE_COUNT],
        }
    }

    /// Satellite requirement: phase spans nest inside the request window,
    /// so the phase sum never exceeds the total, and phases only grow.
    #[test]
    fn span_timing_monotonic() {
        let mut trace = RequestTrace::start(true);
        trace.span(Phase::Parse, || {
            std::thread::sleep(std::time::Duration::from_millis(2))
        });
        let after_parse = trace.phase_us[Phase::Parse as usize];
        assert!(after_parse >= 1_000, "parse span recorded {after_parse}µs");
        trace.span(Phase::Dispatch, || {
            std::thread::sleep(std::time::Duration::from_millis(2))
        });
        trace.span(Phase::Parse, || {
            std::thread::sleep(std::time::Duration::from_millis(1))
        });
        assert!(trace.phase_us[Phase::Parse as usize] > after_parse);
        let total = trace.total_us();
        assert!(trace.phase_sum_us() <= total, "phases exceed total");
        assert!(total >= 5_000);
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut trace = RequestTrace::disabled();
        assert!(!trace.timing());
        let out = trace.span(Phase::Dispatch, || {
            std::thread::sleep(std::time::Duration::from_millis(1));
            7
        });
        assert_eq!(out, 7);
        trace.add_us(Phase::Write, 123);
        assert_eq!(trace.phase_sum_us(), 0);
        assert_eq!(trace.total_us(), 0);
    }

    /// Satellite requirement: ring wraparound keeps exactly the newest
    /// `capacity` entries.
    #[test]
    fn ring_wraparound() {
        let ring = TraceRing::new(4);
        for i in 0..11u64 {
            ring.push(slow(i));
        }
        assert_eq!(ring.pushed(), 11);
        let tail = ring.tail(10);
        assert_eq!(tail.len(), 4);
        // Newest first: totals 10, 9, 8, 7.
        let totals: Vec<u64> = tail.iter().map(|t| t.total_us).collect();
        assert_eq!(totals, vec![10, 9, 8, 7]);
        // Limited tail.
        assert_eq!(ring.tail(2).len(), 2);
        assert_eq!(ring.tail(2)[0].total_us, 10);
    }

    #[test]
    fn ring_below_capacity() {
        let ring = TraceRing::new(8);
        ring.push(slow(1));
        ring.push(slow(2));
        let tail = ring.tail(10);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].total_us, 2);
        assert_eq!(ring.capacity(), 8);
    }
}
