//! # gt3-baseline — a Globus-Toolkit-3-like comparator stack
//!
//! The paper compares Clarens against Globus Toolkit 3 (§4 footnote 4:
//! "A trivial method 100 times ... across a 100Mbps LAN using GTK 3.0 and
//! GTK 3.9.1 resulted in 5 to 1 calls per second", §5: "the server
//! performance (calls/second) for Globus 3 are not as high as the Clarens
//! server"). GT3 itself is unbuildable here, so this crate models the
//! overheads that made it slow — per-message GSI security, per-call
//! transient service instantiation (deployment-descriptor processing),
//! multi-pass Axis-style message handling, and connection-per-call — each
//! individually switchable so the comparison bench can attribute the gap.
//!
//! See DESIGN.md ("GT3-gap") for the substitution rationale.

pub mod stack;
pub mod wsdd;

pub use stack::{test_credentials, Gt3Client, Gt3Config, Gt3Server};
