//! The GT3-like RPC stack: server and client.
//!
//! The paper (§4 footnote 4, §5) reports that Globus Toolkit 3 served "a
//! trivial method" at roughly 1–5 calls/second over a 100 Mb/s LAN while
//! Clarens served ~1450/s. This module models the *reasons* GT3 was slow,
//! so the comparison benchmark reproduces the gap for the right reasons
//! rather than with a sleep:
//!
//! 1. **No session cache** — GSI authenticated every call: the client
//!    signs each message, the server validates the full certificate chain
//!    and signature per request (vs Clarens' one DB session lookup).
//! 2. **Per-call service instantiation** — the OGSI container activated
//!    transient service instances, re-reading deployment metadata: each
//!    call parses + validates the WSDD document ([`crate::wsdd`]).
//! 3. **Multi-pass message processing** — Axis deserialized the envelope
//!    through handler chains; each call DOM-parses the SOAP message once
//!    per configured handler.
//! 4. **Connection per call** — no HTTP keep-alive between invocations.
//!
//! All four knobs live in [`Gt3Config`] so the ablation benchmark can turn
//! them off one at a time and attribute the slowdown.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use clarens_httpd::{
    Handler, HttpClient, HttpServer, Method, PeerInfo, Request, Response, ServerConfig,
};
use clarens_pki::cert::{verify_chain, Certificate, Credential};
use clarens_wire::{soap, Fault, RpcCall, RpcResponse, Value};

use crate::wsdd;

/// Tunable overheads (all enabled = faithful GT3 model).
#[derive(Clone)]
pub struct Gt3Config {
    /// Validate the client's per-message signature and chain on every call.
    pub per_call_auth: bool,
    /// Re-parse + validate the deployment descriptor on every call.
    pub per_call_container_boot: bool,
    /// Number of services in the deployment descriptor (GT3 shipped
    /// hundreds).
    pub deployed_services: usize,
    /// Axis-style handler chain length; the envelope is re-parsed once per
    /// handler.
    pub handler_passes: usize,
    /// Close the connection after every response.
    pub connection_per_call: bool,
}

impl Default for Gt3Config {
    fn default() -> Self {
        Gt3Config {
            per_call_auth: true,
            per_call_container_boot: true,
            deployed_services: 800,
            handler_passes: 4,
            connection_per_call: true,
        }
    }
}

/// A running GT3-like server.
pub struct Gt3Server {
    http: HttpServer,
    calls: Arc<AtomicU64>,
}

struct Gt3Handler {
    config: Gt3Config,
    roots: Vec<Certificate>,
    wsdd_document: String,
    calls: Arc<AtomicU64>,
    now_fn: Arc<dyn Fn() -> i64 + Send + Sync>,
}

impl Gt3Server {
    /// Start on `addr`, trusting client chains rooted in `roots`.
    pub fn start(
        addr: &str,
        config: Gt3Config,
        roots: Vec<Certificate>,
    ) -> std::io::Result<Gt3Server> {
        let calls = Arc::new(AtomicU64::new(0));
        let handler = Arc::new(Gt3Handler {
            wsdd_document: wsdd::generate(config.deployed_services),
            config,
            roots,
            calls: Arc::clone(&calls),
            now_fn: Arc::new(|| {
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_secs() as i64)
                    .unwrap_or(0)
            }),
        });
        let http = HttpServer::bind(
            addr,
            ServerConfig {
                workers: 16,
                read_timeout: std::time::Duration::from_secs(5),
                ..Default::default()
            },
            handler,
        )?;
        Ok(Gt3Server { http, calls })
    }

    /// Bound address.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.http.local_addr()
    }

    /// Calls served.
    pub fn call_count(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Stop the server.
    pub fn shutdown(self) {
        self.http.shutdown();
    }
}

impl Handler for Gt3Handler {
    fn handle(&self, request: Request, _peer: Option<&PeerInfo>) -> Response {
        if request.method != Method::Post {
            return Response::error(405, "POST SOAP messages");
        }
        let body = match std::str::from_utf8(&request.body) {
            Ok(b) => b,
            Err(_) => return Response::error(400, "body is not UTF-8"),
        };

        // (2) Container boot: parse + validate the deployment descriptor,
        // as the OGSI container did when activating a transient instance.
        if self.config.per_call_container_boot {
            if let Err(e) = wsdd::parse_and_validate(&self.wsdd_document) {
                return Response::error(500, &format!("container boot failed: {e}"));
            }
        }

        // (3) Handler-chain passes: Axis re-walked the DOM per handler.
        for _ in 0..self.config.handler_passes.saturating_sub(1) {
            if clarens_wire::xml::parse(body).is_err() {
                return Response::error(400, "unparseable envelope");
            }
        }

        // Final decode of the call itself.
        let call = match soap::decode_call(body) {
            Ok(c) => c,
            Err(e) => {
                let fault = RpcResponse::Fault(Fault::new(1, e.to_string()));
                return Response::ok("text/xml", soap::encode_response(&fault));
            }
        };

        // (1) Per-message GSI-style security: the first parameter carries
        // the certificate chain, the second a signature over the payload.
        let mut params = call.params.clone();
        if self.config.per_call_auth {
            if params.len() < 2 {
                let fault = RpcResponse::Fault(Fault::new(3, "missing security header"));
                return Response::ok("text/xml", soap::encode_response(&fault));
            }
            let sig = params.pop().and_then(|v| v.coerce_bytes());
            let chain_param = params.remove(0);
            let chain: Option<Vec<Certificate>> = chain_param.as_array().map(|items| {
                items
                    .iter()
                    .filter_map(|v| v.as_str().and_then(|t| Certificate::from_text(t).ok()))
                    .collect()
            });
            let (Some(chain), Some(sig)) = (chain, sig) else {
                let fault = RpcResponse::Fault(Fault::new(3, "bad security header"));
                return Response::ok("text/xml", soap::encode_response(&fault));
            };
            let now = (self.now_fn)();
            let payload = clarens_wire::json::to_string(&Value::Array(params.clone()));
            let verified = verify_chain(&chain, &self.roots, now).is_ok()
                && !chain.is_empty()
                && chain[0]
                    .public_key
                    .verify(format!("gt3:{}:{payload}", call.method).as_bytes(), &sig)
                    .is_ok();
            if !verified {
                let fault = RpcResponse::Fault(Fault::new(3, "authentication failed"));
                return Response::ok("text/xml", soap::encode_response(&fault));
            }
        }

        // Dispatch the trivial service.
        let response = match call.method.as_str() {
            "echo.echo" => match params.first() {
                Some(v) => RpcResponse::Success(v.clone()),
                None => RpcResponse::Fault(Fault::bad_params("echo expects a value")),
            },
            other => RpcResponse::Fault(Fault::new(2, format!("no such operation {other}"))),
        };
        self.calls.fetch_add(1, Ordering::Relaxed);

        let mut http_response = Response::ok("text/xml", soap::encode_response(&response));
        if self.config.connection_per_call {
            // (4) The container tears the connection down after each call.
            http_response.headers.set("connection", "close");
        }
        http_response
    }
}

/// The matching client: reconnects and re-authenticates per call when the
/// config says so.
pub struct Gt3Client {
    addr: String,
    config: Gt3Config,
    credential: Credential,
    http: HttpClient,
}

impl Gt3Client {
    /// Create a client for `addr` using `credential` for per-message
    /// signatures.
    pub fn new(addr: impl Into<String>, config: Gt3Config, credential: Credential) -> Self {
        let addr = addr.into();
        Gt3Client {
            http: HttpClient::new(addr.clone()),
            addr,
            config,
            credential,
        }
    }

    /// Invoke `echo.echo(value)` the GT3 way.
    pub fn echo(&mut self, value: Value) -> Result<Value, String> {
        if self.config.connection_per_call {
            self.http.close();
        }
        let mut params = vec![value];
        if self.config.per_call_auth {
            // Security header: chain first, signature last.
            let payload = clarens_wire::json::to_string(&Value::Array(params.clone()));
            let signature = self
                .credential
                .key
                .sign(format!("gt3:echo.echo:{payload}").as_bytes());
            let mut chain_texts = vec![Value::from(self.credential.certificate.to_text())];
            for link in &self.credential.chain {
                chain_texts.push(Value::from(link.to_text()));
            }
            params.insert(0, Value::Array(chain_texts));
            params.push(Value::Bytes(signature));
        }
        let call = RpcCall::new("echo.echo", params);
        let body = soap::encode_call(&call);
        let response = self
            .http
            .post("/ogsa/services/echo", "text/xml", body)
            .map_err(|e| e.to_string())?;
        if response.status != 200 {
            return Err(format!("HTTP {}", response.status));
        }
        let text = std::str::from_utf8(&response.body).map_err(|e| e.to_string())?;
        match soap::decode_response(text).map_err(|e| e.to_string())? {
            RpcResponse::Success(v) => Ok(v),
            RpcResponse::Fault(f) => Err(f.to_string()),
        }
    }

    /// The server address.
    pub fn addr(&self) -> &str {
        &self.addr
    }
}

/// Build a deterministic test credential set (CA + one user) for the
/// baseline benchmarks.
pub fn test_credentials(seed: u64) -> (Certificate, Credential) {
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0);
    let mut rng = StdRng::seed_from_u64(seed);
    let ca = clarens_pki::CertificateAuthority::new(
        &mut rng,
        clarens_pki::DistinguishedName::parse("/O=globus-sim/CN=CA").unwrap(),
        now - 3600,
        3650,
    );
    let kp = clarens_pki::rsa::generate(&mut rng, clarens_pki::rsa::DEFAULT_KEY_BITS);
    let credential = Credential {
        certificate: ca.issue(
            clarens_pki::DistinguishedName::parse("/O=globus-sim/CN=user").unwrap(),
            &kp.public,
            now - 3600,
            365,
        ),
        key: kp.private,
        chain: vec![],
    };
    (ca.certificate.clone(), credential)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_stack_roundtrip() {
        let (root, credential) = test_credentials(1);
        let server = Gt3Server::start("127.0.0.1:0", Gt3Config::default(), vec![root]).unwrap();
        let mut client = Gt3Client::new(
            server.local_addr().to_string(),
            Gt3Config::default(),
            credential,
        );
        for i in 0..3 {
            let out = client.echo(Value::Int(i)).unwrap();
            assert_eq!(out, Value::Int(i));
        }
        assert_eq!(server.call_count(), 3);
        server.shutdown();
    }

    #[test]
    fn missing_security_header_rejected() {
        let (root, credential) = test_credentials(2);
        let server = Gt3Server::start("127.0.0.1:0", Gt3Config::default(), vec![root]).unwrap();
        // Client configured WITHOUT auth against a server that demands it.
        let mut client = Gt3Client::new(
            server.local_addr().to_string(),
            Gt3Config {
                per_call_auth: false,
                ..Default::default()
            },
            credential,
        );
        let err = client.echo(Value::Int(1)).unwrap_err();
        assert!(
            err.contains("security") || err.contains("authentication"),
            "{err}"
        );
        server.shutdown();
    }

    #[test]
    fn untrusted_client_rejected() {
        let (root, _) = test_credentials(3);
        let (_, rogue_credential) = test_credentials(4); // different CA
        let server = Gt3Server::start("127.0.0.1:0", Gt3Config::default(), vec![root]).unwrap();
        let mut client = Gt3Client::new(
            server.local_addr().to_string(),
            Gt3Config::default(),
            rogue_credential,
        );
        let err = client.echo(Value::Int(1)).unwrap_err();
        assert!(err.contains("authentication"), "{err}");
        server.shutdown();
    }

    #[test]
    fn lightweight_config_still_works() {
        // All overheads off: a sanity check for the ablation bench.
        let (root, credential) = test_credentials(5);
        let config = Gt3Config {
            per_call_auth: false,
            per_call_container_boot: false,
            handler_passes: 1,
            connection_per_call: false,
            deployed_services: 1,
        };
        let server = Gt3Server::start("127.0.0.1:0", config.clone(), vec![root]).unwrap();
        let mut client = Gt3Client::new(server.local_addr().to_string(), config, credential);
        assert_eq!(client.echo(Value::from("x")).unwrap(), Value::from("x"));
        server.shutdown();
    }
}
