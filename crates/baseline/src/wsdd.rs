//! Web Service Deployment Descriptor (WSDD) simulation.
//!
//! Globus Toolkit 3 deployed services through Axis-style WSDD documents;
//! the container parsed and validated deployment metadata when
//! instantiating a service — and GT3's OGSI model instantiated *per call*
//! (transient service instances). This module generates a realistic
//! descriptor for a configurable number of services and implements the
//! parse + validate pass the baseline performs on every invocation.

use clarens_wire::xml::{Element, Node};

/// Generate a WSDD-like document describing `service_count` services, each
/// with a handler pipeline and typemapping entries (the shape of real Axis
/// WSDDs).
pub fn generate(service_count: usize) -> String {
    let mut deployment = Element::new("deployment")
        .attr("xmlns", "http://xml.apache.org/axis/wsdd/")
        .attr(
            "xmlns:java",
            "http://xml.apache.org/axis/wsdd/providers/java",
        );
    for i in 0..service_count {
        let mut service = Element::new("service")
            .attr("name", format!("Service{i}"))
            .attr("provider", "java:RPC")
            .attr("style", "rpc")
            .attr("use", "encoded");
        service = service
            .child(
                Element::new("parameter")
                    .attr("name", "className")
                    .attr("value", format!("org.globus.ogsa.impl.Service{i}Impl")),
            )
            .child(
                Element::new("parameter")
                    .attr("name", "allowedMethods")
                    .attr(
                        "value",
                        "createService findServiceData requestTerminationAfter",
                    ),
            )
            .child(
                Element::new("parameter")
                    .attr("name", "instance-deactivation")
                    .attr("value", "session"),
            );
        for t in 0..4 {
            service = service.child(
                Element::new("typeMapping")
                    .attr("qname", format!("ns{i}:Type{t}"))
                    .attr("type", format!("java:org.globus.ogsa.types.Type{i}x{t}"))
                    .attr(
                        "serializer",
                        "org.apache.axis.encoding.ser.BeanSerializerFactory",
                    )
                    .attr(
                        "deserializer",
                        "org.apache.axis.encoding.ser.BeanDeserializerFactory",
                    )
                    .attr("encodingStyle", "http://schemas.xmlsoap.org/soap/encoding/"),
            );
        }
        let handlers = Element::new("requestFlow")
            .child(
                Element::new("handler")
                    .attr("type", "java:org.globus.ogsa.handlers.RPCURIProvider"),
            )
            .child(
                Element::new("handler")
                    .attr("type", "java:org.globus.ogsa.handlers.DescriptorHandler"),
            );
        service = service.child(handlers);
        deployment = deployment.child(service);
    }
    deployment.to_document()
}

/// Validation report from one container-boot pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationReport {
    /// Services found.
    pub services: usize,
    /// Type mappings checked.
    pub type_mappings: usize,
    /// Handlers resolved.
    pub handlers: usize,
}

/// Parse and validate a WSDD document — the work GT3's container performed
/// when activating a service instance. Returns a report or a description
/// of the first violation.
pub fn parse_and_validate(document: &str) -> Result<ValidationReport, String> {
    let root = clarens_wire::xml::parse(document).map_err(|e| e.to_string())?;
    if root.local_name() != "deployment" {
        return Err(format!("root must be <deployment>, found <{}>", root.name));
    }
    let mut report = ValidationReport {
        services: 0,
        type_mappings: 0,
        handlers: 0,
    };
    for service in root.find_all("service") {
        report.services += 1;
        let name = service
            .attribute("name")
            .ok_or_else(|| "service missing name".to_string())?;
        if service.attribute("provider").is_none() {
            return Err(format!("service {name} missing provider"));
        }
        let mut has_class = false;
        for parameter in service.find_all("parameter") {
            match parameter.attribute("name") {
                Some("className") => {
                    let class = parameter
                        .attribute("value")
                        .ok_or_else(|| format!("{name}: className without value"))?;
                    // "Classpath" check: package segments must be valid
                    // identifiers (the container resolved these by
                    // reflection).
                    if !class.split('.').all(|seg| {
                        !seg.is_empty()
                            && seg.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                    }) {
                        return Err(format!("{name}: invalid class {class}"));
                    }
                    has_class = true;
                }
                Some(_) => {}
                None => return Err(format!("{name}: parameter without name")),
            }
        }
        if !has_class {
            return Err(format!("service {name} missing className"));
        }
        for mapping in service.find_all("typeMapping") {
            report.type_mappings += 1;
            for required in [
                "qname",
                "type",
                "serializer",
                "deserializer",
                "encodingStyle",
            ] {
                if mapping.attribute(required).is_none() {
                    return Err(format!("{name}: typeMapping missing {required}"));
                }
            }
        }
        for flow in service.find_all("requestFlow") {
            for node in &flow.children {
                if let Node::Element(handler) = node {
                    if handler.local_name() == "handler" {
                        report.handlers += 1;
                        if handler.attribute("type").is_none() {
                            return Err(format!("{name}: handler missing type"));
                        }
                    }
                }
            }
        }
    }
    if report.services == 0 {
        return Err("deployment contains no services".to_string());
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_descriptor_validates() {
        let doc = generate(10);
        let report = parse_and_validate(&doc).unwrap();
        assert_eq!(report.services, 10);
        assert_eq!(report.type_mappings, 40);
        assert_eq!(report.handlers, 20);
    }

    #[test]
    fn large_descriptor_realistic_size() {
        // GT3 shipped hundreds of services; the document is tens of KB.
        let doc = generate(200);
        assert!(doc.len() > 100_000, "descriptor only {} bytes", doc.len());
        assert!(parse_and_validate(&doc).is_ok());
    }

    #[test]
    fn violations_detected() {
        assert!(parse_and_validate("<notdeployment/>").is_err());
        assert!(parse_and_validate("<deployment/>").is_err());
        let bad = "<deployment><service name=\"s\" provider=\"p\"><parameter name=\"className\" value=\"bad-class!\"/></service></deployment>";
        assert!(parse_and_validate(bad).is_err());
        let missing = "<deployment><service name=\"s\" provider=\"p\"/></deployment>";
        assert!(parse_and_validate(missing).is_err());
    }
}
