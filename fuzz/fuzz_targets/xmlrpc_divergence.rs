//! libFuzzer wrapper over the shared XML-RPC divergence property: the
//! streaming fast-path decoder must agree with the DOM reference on every
//! input, and accepted documents must round-trip. The same entry runs
//! under the in-tree mutation harness (`repro fuzz`) on stable toolchains.

#![no_main]

use libfuzzer_sys::fuzz_target;

fuzz_target!(|data: &[u8]| {
    clarens_wire::fuzz::xmlrpc_divergence(data);
});
