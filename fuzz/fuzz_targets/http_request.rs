//! libFuzzer wrapper over the HTTP/1.1 request-parser property: no
//! panic on any byte stream, and accepted requests report a consistent
//! consumed length.

#![no_main]

use libfuzzer_sys::fuzz_target;

fuzz_target!(|data: &[u8]| {
    clarens_httpd::fuzz::http_request(data);
});
