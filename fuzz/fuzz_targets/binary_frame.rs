//! libFuzzer wrapper over the clarens-binary frame/CBOR property: the
//! streaming decoder never panics, the zero-copy call view agrees with
//! the owned decoder, and accepted frames round-trip byte-identically.

#![no_main]

use libfuzzer_sys::fuzz_target;

fuzz_target!(|data: &[u8]| {
    clarens_wire::fuzz::binary_frame(data);
});
