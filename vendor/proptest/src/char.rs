//! Character strategies.

use crate::{Strategy, TestRng};

#[derive(Clone, Copy, Debug)]
pub struct CharRange {
    lo: u32,
    hi: u32,
}

/// Uniform characters in the inclusive range `[lo, hi]`.
pub fn range(lo: char, hi: char) -> CharRange {
    assert!(lo <= hi, "empty char range");
    CharRange {
        lo: lo as u32,
        hi: hi as u32,
    }
}

impl Strategy for CharRange {
    type Value = char;

    fn generate(&self, rng: &mut TestRng) -> char {
        // Retry codepoints that fall in the surrogate gap; every valid
        // range contains at least one scalar value, so this terminates.
        loop {
            let code = self.lo + rng.below((self.hi - self.lo + 1) as u64) as u32;
            if let Some(c) = std::primitive::char::from_u32(code) {
                return c;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::range;
    use crate::{Strategy, TestRng};

    #[test]
    fn chars_stay_in_range() {
        let mut rng = TestRng::seed(7);
        let strategy = range(' ', '~');
        for _ in 0..200 {
            let c = strategy.generate(&mut rng);
            assert!((' '..='~').contains(&c));
        }
    }

    #[test]
    fn multibyte_range() {
        let mut rng = TestRng::seed(8);
        let strategy = range('А', 'я');
        for _ in 0..100 {
            let c = strategy.generate(&mut rng);
            assert!(('А'..='я').contains(&c));
        }
    }
}
