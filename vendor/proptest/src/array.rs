//! Fixed-size array strategies.

use crate::{Strategy, TestRng};

#[derive(Clone, Debug)]
pub struct UniformArray<S, const N: usize>(S);

/// `[S::Value; 32]` with each element drawn independently from `strategy`.
pub fn uniform32<S: Strategy>(strategy: S) -> UniformArray<S, 32> {
    UniformArray(strategy)
}

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
    type Value = [S::Value; N];

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|_| self.0.generate(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::uniform32;
    use crate::{any, Strategy, TestRng};

    #[test]
    fn fills_all_elements() {
        let mut rng = TestRng::seed(9);
        let arr: [u8; 32] = uniform32(any::<u8>()).generate(&mut rng);
        assert!(arr.iter().any(|&b| b != 0));
    }
}
