//! Offline stand-in for `proptest`.
//!
//! The build container cannot reach crates.io, so this crate implements the
//! subset of the proptest API the workspace's property tests use: the
//! [`Strategy`] trait (generate-only — no shrinking), `prop_map` /
//! `prop_filter` / `prop_recursive` / `boxed` combinators, strategies for
//! integer/float ranges, `&'static str` regex patterns, tuples, collections,
//! char ranges and fixed arrays, plus the `proptest!`, `prop_oneof!`,
//! `prop_assert!` and `prop_assert_eq!` macros.
//!
//! Cases are generated from a deterministic per-test RNG (seeded from the
//! test name), so failures reproduce across runs. Failing cases abort the
//! test via `assert!`, without shrinking. The default case count is 64 and
//! can be overridden with the `PROPTEST_CASES` environment variable.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub mod array;
pub mod char;
pub mod collection;
mod regex;

/// Deterministic generator used to drive strategies (xoshiro256**).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn seed(seed: u64) -> Self {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let mut state = seed;
        TestRng {
            s: [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ],
        }
    }

    /// Deterministic seed from a test name (FNV-1a), so each property test
    /// gets its own reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::seed(hash)
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, n)`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// Run-time configuration for `proptest!` blocks.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of values of type `Self::Value` (proptest's `Strategy`,
/// minus shrinking).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, map }
    }

    fn prop_filter<F>(self, reason: impl Into<String>, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            reason: reason.into(),
            predicate,
        }
    }

    /// Build a recursive strategy: `self` generates leaves, and `recurse`
    /// wraps a strategy for depth-`d` trees into one for depth-`d+1`
    /// branches. At each level a branch or a leaf is chosen with equal
    /// probability, bounding nesting at `depth`.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strategy = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(strategy).boxed();
            let leaf = leaf.clone();
            strategy = BoxedStrategy {
                generate: Rc::new(move |rng: &mut TestRng| {
                    if rng.next_u64() & 1 == 0 {
                        branch.generate(rng)
                    } else {
                        leaf.generate(rng)
                    }
                }),
            };
        }
        strategy
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            generate: Rc::new(move |rng: &mut TestRng| self.generate(rng)),
        }
    }
}

/// Type-erased strategy (cheaply cloneable).
pub struct BoxedStrategy<T> {
    generate: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            generate: Rc::clone(&self.generate),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.generate)(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.map)(self.source.generate(rng))
    }
}

#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    source: S,
    reason: String,
    predicate: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let value = self.source.generate(rng);
            if (self.predicate)(&value) {
                return value;
            }
        }
        panic!(
            "proptest filter {:?} rejected 1000 consecutive generated values",
            self.reason
        );
    }
}

/// Uniform choice between alternatives (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let index = rng.below(self.options.len() as u64) as usize;
        self.options[index].generate(rng)
    }
}

/// Full-range values for primitive types (backs [`any`]).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub struct Any<A>(PhantomData<A>);

impl<A> Clone for Any<A> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<A> Copy for Any<A> {}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                // span == 0 encodes the full 2^64 range; below(0) yields 0,
                // which is fine for the subset of ranges the tests use.
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// String strategies from regex-like patterns (e.g. `"[a-z]{1,8}"`).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        regex::generate(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Any, Arbitrary, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestRng, Union,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_body {
    (
        config = ($config:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut __proptest_rng = $crate::TestRng::from_name(stringify!($name));
                for __proptest_case in 0..config.cases {
                    let ($($arg,)+) = (
                        $( $crate::Strategy::generate(&($strategy), &mut __proptest_rng), )+
                    );
                    $body
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = ($crate::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::seed(1);
        for _ in 0..200 {
            let v = (10u8..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (1u8..=12).generate(&mut rng);
            assert!((1..=12).contains(&w));
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let n = (-4_000_000_000i64..4_000_000_000).generate(&mut rng);
            assert!((-4_000_000_000..4_000_000_000).contains(&n));
        }
    }

    #[test]
    fn map_filter_union() {
        let mut rng = TestRng::seed(2);
        let s = prop_oneof![Just(1u32), Just(2), 5u32..8]
            .prop_map(|v| v * 10)
            .prop_filter("nonzero", |v| *v > 0);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!([10, 20, 50, 60, 70].contains(&v), "got {v}");
        }
    }

    #[test]
    fn recursive_strategy_bounded() {
        enum Tree {
            Leaf(#[allow(dead_code)] u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strategy = any::<u8>()
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 4, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = TestRng::seed(3);
        for _ in 0..100 {
            assert!(depth(&strategy.generate(&mut rng)) <= 3);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_name("some_test");
        let mut b = TestRng::from_name("some_test");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_arguments(x in 0u32..10, label in "[a-z]{1,3}") {
            prop_assert!(x < 10);
            prop_assert!(!label.is_empty() && label.len() <= 3);
            prop_assert!(label.bytes().all(|b| b.is_ascii_lowercase()));
        }
    }

    proptest! {
        #[test]
        fn macro_default_config(v in crate::collection::vec(any::<u8>(), 0..16)) {
            prop_assert!(v.len() < 16);
        }
    }
}
