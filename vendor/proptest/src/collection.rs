//! Collection strategies: `vec`, `btree_map`, `btree_set`.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

use crate::{Strategy, TestRng};

#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let count = sample_size(&self.size, rng);
        (0..count).map(|_| self.element.generate(rng)).collect()
    }
}

#[derive(Clone, Debug)]
pub struct BTreeMapStrategy<K, V> {
    keys: K,
    values: V,
    size: Range<usize>,
}

pub fn btree_map<K, V>(keys: K, values: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy { keys, values, size }
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let count = sample_size(&self.size, rng);
        // Duplicate keys collapse, so the map may be smaller than `count`;
        // real proptest has the same property.
        (0..count)
            .map(|_| (self.keys.generate(rng), self.values.generate(rng)))
            .collect()
    }
}

#[derive(Clone, Debug)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let count = sample_size(&self.size, rng);
        (0..count).map(|_| self.element.generate(rng)).collect()
    }
}

fn sample_size(size: &Range<usize>, rng: &mut TestRng) -> usize {
    assert!(size.start < size.end, "empty collection size range");
    size.start + rng.below((size.end - size.start) as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::any;

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::seed(5);
        let strategy = vec(any::<u8>(), 2..6);
        for _ in 0..100 {
            let v = strategy.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn btree_collections_generate() {
        let mut rng = TestRng::seed(6);
        let m = btree_map("[a-z]{1,3}", any::<u8>(), 0..8).generate(&mut rng);
        assert!(m.len() < 8);
        let s = btree_set("[a-z]{1,3}", 1..8).generate(&mut rng);
        assert!(!s.is_empty() && s.len() < 8);
    }
}
