//! Mini regex *generator*: parses the small pattern language the workspace's
//! property tests use and produces random matching strings.
//!
//! Supported syntax: literals, `\`-escapes (including `\PC` = any
//! non-control character, as in proptest), `.`, character classes
//! `[a-z0-9._@-]` (ranges and literals, no negation), groups with
//! alternation `(a|bc)`, and the quantifiers `?`, `*`, `+`, `{n}`, `{m,n}`.

use crate::TestRng;

#[derive(Debug, Clone)]
enum Node {
    Literal(char),
    /// `.` or `\PC`: any non-control character.
    AnyPrintable,
    /// Inclusive character ranges; single chars are degenerate ranges.
    Class(Vec<(char, char)>),
    /// Alternatives, each a sequence.
    Group(Vec<Vec<Node>>),
    Repeat(Box<Node>, u32, u32),
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    pattern: &'a str,
}

impl<'a> Parser<'a> {
    fn new(pattern: &'a str) -> Self {
        Parser {
            chars: pattern.chars().peekable(),
            pattern,
        }
    }

    fn fail(&self, message: &str) -> ! {
        panic!("unsupported regex pattern {:?}: {message}", self.pattern)
    }

    fn parse_alternatives(&mut self) -> Vec<Vec<Node>> {
        let mut alternatives = vec![self.parse_sequence()];
        while self.chars.peek() == Some(&'|') {
            self.chars.next();
            alternatives.push(self.parse_sequence());
        }
        alternatives
    }

    fn parse_sequence(&mut self) -> Vec<Node> {
        let mut nodes = Vec::new();
        while let Some(&c) = self.chars.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.parse_atom();
            nodes.push(self.parse_quantifier(atom));
        }
        nodes
    }

    fn parse_atom(&mut self) -> Node {
        match self.chars.next() {
            Some('(') => {
                let alternatives = self.parse_alternatives();
                if self.chars.next() != Some(')') {
                    self.fail("unterminated group");
                }
                Node::Group(alternatives)
            }
            Some('[') => self.parse_class(),
            Some('\\') => self.parse_escape(),
            Some('.') => Node::AnyPrintable,
            Some(c) if c == '*' || c == '+' || c == '?' || c == '{' => {
                self.fail("dangling quantifier")
            }
            Some(c) => Node::Literal(c),
            None => self.fail("unexpected end of pattern"),
        }
    }

    fn parse_escape(&mut self) -> Node {
        match self.chars.next() {
            Some('P') => {
                // proptest spells "any non-control char" as \PC.
                match self.chars.next() {
                    Some('C') => Node::AnyPrintable,
                    _ => self.fail("unsupported \\P class"),
                }
            }
            Some('d') => Node::Class(vec![('0', '9')]),
            Some('w') => Node::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
            Some('s') => Node::Class(vec![(' ', ' '), ('\t', '\t'), ('\n', '\n')]),
            Some('n') => Node::Literal('\n'),
            Some('t') => Node::Literal('\t'),
            Some('r') => Node::Literal('\r'),
            Some(c) => Node::Literal(c),
            None => self.fail("trailing backslash"),
        }
    }

    fn parse_class(&mut self) -> Node {
        let mut ranges = Vec::new();
        loop {
            let c = match self.chars.next() {
                Some(']') => break,
                Some('\\') => match self.parse_escape() {
                    Node::Literal(c) => c,
                    Node::Class(mut escaped) => {
                        ranges.append(&mut escaped);
                        continue;
                    }
                    _ => self.fail("unsupported escape in class"),
                },
                Some(c) => c,
                None => self.fail("unterminated character class"),
            };
            // `a-z` range, unless `-` is the final literal before `]`.
            if self.chars.peek() == Some(&'-') {
                let mut lookahead = self.chars.clone();
                lookahead.next();
                match lookahead.peek() {
                    Some(&']') | None => ranges.push((c, c)),
                    Some(_) => {
                        self.chars.next();
                        let end = match self.chars.next() {
                            Some('\\') => match self.parse_escape() {
                                Node::Literal(e) => e,
                                _ => self.fail("unsupported escape in class range"),
                            },
                            Some(e) => e,
                            None => self.fail("unterminated class range"),
                        };
                        if end < c {
                            self.fail("descending class range");
                        }
                        ranges.push((c, end));
                    }
                }
            } else {
                ranges.push((c, c));
            }
        }
        if ranges.is_empty() {
            self.fail("empty character class");
        }
        Node::Class(ranges)
    }

    fn parse_quantifier(&mut self, atom: Node) -> Node {
        match self.chars.peek() {
            Some('?') => {
                self.chars.next();
                Node::Repeat(Box::new(atom), 0, 1)
            }
            Some('*') => {
                self.chars.next();
                Node::Repeat(Box::new(atom), 0, 8)
            }
            Some('+') => {
                self.chars.next();
                Node::Repeat(Box::new(atom), 1, 8)
            }
            Some('{') => {
                self.chars.next();
                let min = self.parse_number();
                let max = match self.chars.next() {
                    Some('}') => min,
                    Some(',') => {
                        let max = self.parse_number();
                        if self.chars.next() != Some('}') {
                            self.fail("unterminated repetition");
                        }
                        max
                    }
                    _ => self.fail("malformed repetition"),
                };
                if max < min {
                    self.fail("descending repetition bounds");
                }
                Node::Repeat(Box::new(atom), min, max)
            }
            _ => atom,
        }
    }

    fn parse_number(&mut self) -> u32 {
        let mut value: u32 = 0;
        let mut digits = 0;
        while let Some(c) = self.chars.peek().copied() {
            if let Some(d) = c.to_digit(10) {
                value = value.saturating_mul(10).saturating_add(d);
                digits += 1;
                self.chars.next();
            } else {
                break;
            }
        }
        if digits == 0 {
            self.fail("expected number in repetition");
        }
        value
    }
}

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Literal(c) => out.push(*c),
        Node::AnyPrintable => out.push(any_printable(rng)),
        Node::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|(lo, hi)| *hi as u64 - *lo as u64 + 1)
                .sum();
            let mut pick = rng.below(total);
            for (lo, hi) in ranges {
                let size = *hi as u64 - *lo as u64 + 1;
                if pick < size {
                    // Ranges in test patterns never straddle surrogates, but
                    // fall back to the range start rather than panic.
                    let code = *lo as u32 + pick as u32;
                    out.push(std::char::from_u32(code).unwrap_or(*lo));
                    return;
                }
                pick -= size;
            }
        }
        Node::Group(alternatives) => {
            let index = rng.below(alternatives.len() as u64) as usize;
            for child in &alternatives[index] {
                emit(child, rng, out);
            }
        }
        Node::Repeat(inner, min, max) => {
            let count = *min as u64 + rng.below(*max as u64 - *min as u64 + 1);
            for _ in 0..count {
                emit(inner, rng, out);
            }
        }
    }
}

/// Any non-control character: mostly printable ASCII, with occasional
/// Latin-1 and multibyte (Cyrillic) characters to exercise UTF-8 paths.
fn any_printable(rng: &mut TestRng) -> char {
    match rng.below(20) {
        0..=15 => std::char::from_u32(' ' as u32 + rng.below(95) as u32).unwrap(),
        16..=17 => std::char::from_u32(0x00A1 + rng.below(0x5F) as u32).unwrap(),
        18 => std::char::from_u32(0x0410 + rng.below(0x40) as u32).unwrap(),
        _ => ['§', '€', '→', '中', '𝒳'][rng.below(5) as usize],
    }
}

/// Generate one random string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut parser = Parser::new(pattern);
    let alternatives = parser.parse_alternatives();
    if parser.chars.next().is_some() {
        parser.fail("unbalanced ')'");
    }
    let mut out = String::new();
    let index = rng.below(alternatives.len() as u64) as usize;
    for node in &alternatives[index] {
        emit(node, rng, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::generate;
    use crate::TestRng;

    fn samples(pattern: &str, n: usize) -> Vec<String> {
        let mut rng = TestRng::seed(42);
        (0..n).map(|_| generate(pattern, &mut rng)).collect()
    }

    #[test]
    fn class_with_repeat() {
        for s in samples("[a-z]{1,4}", 100) {
            assert!((1..=4).contains(&s.len()), "bad length: {s:?}");
            assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        }
    }

    #[test]
    fn alternation_groups() {
        for s in samples("(C|ST|L|O|OU|CN|DC)", 100) {
            assert!(["C", "ST", "L", "O", "OU", "CN", "DC"].contains(&s.as_str()));
        }
    }

    #[test]
    fn nested_group_repeat() {
        for s in samples("[a-z][a-z0-9_]{0,8}(\\.[a-z][a-z0-9_]{0,8}){0,2}", 200) {
            assert!(s.split('.').count() <= 3, "{s:?}");
            for part in s.split('.') {
                assert!(!part.is_empty());
            }
        }
    }

    #[test]
    fn optional_group() {
        for s in samples(
            "[A-Za-z0-9._@-]([A-Za-z0-9 ._@-]{0,10}[A-Za-z0-9._@-])?",
            200,
        ) {
            assert!(!s.is_empty());
            assert!(!s.starts_with(' ') && !s.ends_with(' '), "{s:?}");
        }
    }

    #[test]
    fn space_to_tilde_range() {
        for s in samples("[ -~]{0,30}", 100) {
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn trailing_dash_is_literal() {
        let all: String = samples("[a-b-]{1,1}", 300).concat();
        assert!(all.contains('-'));
        assert!(all.chars().all(|c| c == 'a' || c == 'b' || c == '-'));
    }

    #[test]
    fn non_control_class() {
        for s in samples("\\PC{0,40}", 200) {
            assert!(s.len() <= 4 * 40);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn exact_count() {
        for s in samples("x{3}", 20) {
            assert_eq!(s, "xxx");
        }
    }
}
