//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the bench targets use (`benchmark_group`,
//! `sample_size`, `measurement_time`, `throughput`, `bench_function`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros) as
//! a plain timing harness: each benchmark is warmed up briefly, then timed
//! over `sample_size` samples within the configured measurement window, and
//! the median ns/iter (plus derived throughput) is printed. No statistics,
//! plots, or baselines — enough to observe relative performance offline.

use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group("default");
        group.bench_function(name, f);
        group.finish();
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Warm-up: find an iteration count that takes ~1/sample_size of the
        // measurement window, starting from a single iteration.
        let target_sample = self.measurement_time.div_f64(self.sample_size as f64);
        f(&mut bencher);
        let mut per_iter = bencher.elapsed.div_f64(bencher.iters as f64);
        if per_iter.is_zero() {
            per_iter = Duration::from_nanos(1);
        }
        let iters_per_sample =
            (target_sample.as_secs_f64() / per_iter.as_secs_f64()).clamp(1.0, 1e9) as u64;

        let mut samples = Vec::with_capacity(self.sample_size);
        let started = Instant::now();
        for _ in 0..self.sample_size {
            bencher.iters = iters_per_sample;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            samples.push(bencher.elapsed.as_secs_f64() / iters_per_sample as f64);
            // Never run more than ~2x the requested window even if the
            // workload slowed down after warm-up.
            if started.elapsed() > self.measurement_time * 2 {
                break;
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        let ns = median * 1e9;
        match self.throughput {
            Some(Throughput::Bytes(bytes)) => {
                let mib_s = bytes as f64 / median / (1024.0 * 1024.0);
                println!("  {name}: {ns:.0} ns/iter ({mib_s:.1} MiB/s)");
            }
            Some(Throughput::Elements(n)) => {
                let elem_s = n as f64 / median;
                println!("  {name}: {ns:.0} ns/iter ({elem_s:.0} elem/s)");
            }
            None => {
                let per_s = 1e9 / ns;
                println!("  {name}: {ns:.0} ns/iter ({per_s:.0} iters/s)");
            }
        }
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Prevents the optimizer from eliding a value (re-export of `std::hint`).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn times_a_cheap_closure() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("test");
        group
            .sample_size(5)
            .measurement_time(Duration::from_millis(50));
        let mut count = 0u64;
        group.bench_function("increment", |b| b.iter(|| count += 1));
        group.finish();
        assert!(count > 0);
    }
}
