//! Offline stand-in for `crossbeam`, providing the `channel` module subset
//! the workspace uses: an unbounded MPMC channel where both `Sender` and
//! `Receiver` are cloneable (std's mpsc `Receiver` is not, and the HTTP
//! worker pool shares one receiver across worker threads).

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "channel receive timed out"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty, disconnected channel")
                }
            }
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.senders -= 1;
            let last = state.senders == 0;
            drop(state);
            if last {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .ready
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, result) = self
                    .shared
                    .ready
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                state = guard;
                if result.timed_out() && state.queue.is_empty() {
                    if state.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        pub fn try_recv(&self) -> Option<T> {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .queue
                .pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn disconnect_on_sender_drop() {
        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        assert!(rx.recv().is_err());
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn mpmc_receiver_clones_share_queue() {
        let (tx, rx1) = unbounded();
        let rx2 = rx1.clone();
        let workers: Vec<_> = [rx1, rx2]
            .into_iter()
            .map(|rx| std::thread::spawn(move || rx.recv().is_ok()))
            .collect();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        for w in workers {
            assert!(w.join().unwrap());
        }
    }

    #[test]
    fn send_fails_with_no_receivers() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(5).is_err());
    }
}
