//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors the narrow API subset it actually uses: the [`Rng`] trait,
//! [`RngExt::random`], [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! the process-entropy constructor [`rng()`].
//!
//! `StdRng` is xoshiro256** seeded through SplitMix64 — statistically strong
//! and deterministic for a given seed, which is all the tests and benches
//! rely on. `rng()` mixes OS entropy (via `RandomState`) with time and a
//! per-process counter. This is NOT a vetted CSPRNG; it stands in for one in
//! a reproduction environment.

use std::sync::atomic::{AtomicU64, Ordering};

/// Core random-number-generator trait (subset of `rand::Rng`).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            let len = rem.len();
            rem.copy_from_slice(&bytes[..len]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types constructible from raw generator output (stand-in for
/// `rand::distr::StandardUniform` sampling).
pub trait Random: Sized {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_random_int!(u8, u16, u32, usize, i8, i16, i32, i64, isize);

impl Random for u64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u128 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Random for i128 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        u128::random(rng) as i128
    }
}

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Uniform in [0, 1) with 53 bits of precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<const N: usize> Random for [u8; N] {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Extension trait providing `rng.random::<T>()` (mirrors `rand::Rng::random`).
pub trait RngExt: Rng {
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic generator: xoshiro256** with SplitMix64 seeding.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Process-entropy generator returned by [`super::rng()`].
    #[derive(Clone, Debug)]
    pub struct ThreadRng(pub(crate) StdRng);

    impl Rng for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

static RNG_COUNTER: AtomicU64 = AtomicU64::new(0);

fn entropy_seed() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    // RandomState is seeded from OS entropy once per process; fold in time
    // and a counter so every call yields an independent stream.
    let mut hasher = std::collections::hash_map::RandomState::new().build_hasher();
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    hasher.write_u128(now);
    hasher.write_u64(RNG_COUNTER.fetch_add(1, Ordering::Relaxed));
    hasher.finish()
}

/// Returns a generator seeded from process entropy (mirrors `rand::rng()`).
pub fn rng() -> rngs::ThreadRng {
    rngs::ThreadRng(<rngs::StdRng as SeedableRng>::seed_from_u64(entropy_seed()))
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn random_array_and_ints() {
        let mut rng = StdRng::seed_from_u64(9);
        let arr: [u8; 32] = rng.random();
        assert!(arr.iter().any(|&b| b != 0));
        let _: u32 = rng.random();
        let _: bool = rng.random();
        let f: f64 = rng.random();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn process_rng_distinct_streams() {
        let mut a = super::rng();
        let mut b = super::rng();
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
