//! Umbrella crate re-exporting the Clarens reproduction workspace.
pub use clarens;
pub use clarens_db;
pub use clarens_httpd;
pub use clarens_pki;
pub use clarens_wire;
pub use gt3_baseline;
pub use monalisa_sim;
