//! Failure injection across the whole stack over real sockets: malformed
//! wire data, protocol abuse, credential problems, and crash recovery.

use std::io::{Read, Write};
use std::net::TcpStream;

use clarens::testkit::{now, GridOptions, TestGrid};
use clarens::ClientError;
use clarens_wire::fault::codes;
use clarens_wire::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Raw bytes in, response (or closed connection) out.
fn raw_exchange(addr: &str, payload: &[u8]) -> Vec<u8> {
    let mut sock = TcpStream::connect(addr).unwrap();
    sock.set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .ok();
    sock.write_all(payload).unwrap();
    let _ = sock.shutdown(std::net::Shutdown::Write);
    let mut out = Vec::new();
    let _ = sock.read_to_end(&mut out);
    out
}

#[test]
fn random_garbage_never_kills_the_server() {
    let grid = TestGrid::start_with(GridOptions {
        seed: 0xF00D,
        ..Default::default()
    });
    let addr = grid.addr();
    let mut rng = StdRng::seed_from_u64(1);
    for len in [0usize, 1, 10, 100, 4096] {
        let mut garbage = vec![0u8; len];
        rng.fill_bytes(&mut garbage);
        let _ = raw_exchange(&addr, &garbage);
    }
    // Half-valid HTTP with garbage bodies.
    for body in ["\u{0}\u{0}\u{0}", "<xml", "{]", "%%%%"] {
        let req = format!(
            "POST /clarens HTTP/1.1\r\nHost: x\r\nContent-Type: text/xml\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let _ = raw_exchange(&addr, req.as_bytes());
    }
    // The server is still fully functional afterwards.
    let mut client = grid.logged_in_client(&grid.user);
    assert!(client.list_methods().unwrap().len() > 30);
    grid.cleanup();
}

#[test]
fn slow_loris_header_drip_is_bounded() {
    let grid = TestGrid::start_with(GridOptions {
        seed: 0xF11D,
        ..Default::default()
    });
    // A client that sends an endless header never gets unbounded memory:
    // the server answers 431 once the header block exceeds its limit.
    let mut sock = TcpStream::connect(grid.addr()).unwrap();
    sock.write_all(b"GET / HTTP/1.1\r\n").unwrap();
    let mut rejected = false;
    for i in 0..10_000 {
        if sock
            .write_all(format!("X-Pad-{i}: {}\r\n", "y".repeat(64)).as_bytes())
            .is_err()
        {
            rejected = true; // server closed on us
            break;
        }
    }
    if !rejected {
        let mut buf = [0u8; 256];
        let n = sock.read(&mut buf).unwrap_or(0);
        let head = String::from_utf8_lossy(&buf[..n]);
        assert!(head.contains("431"), "{head}");
    }
    // Server still healthy.
    let mut client = grid.logged_in_client(&grid.user);
    assert!(client.call("system.ping", vec![]).is_ok());
    grid.cleanup();
}

#[test]
fn wrong_key_for_certificate_rejected() {
    let grid = TestGrid::start_with(GridOptions {
        seed: 0xF22D,
        ..Default::default()
    });
    // A credential pairing uma's certificate with ADA's key: the chain
    // validates but the challenge signature must not.
    let frankenstein = clarens_pki::Credential {
        certificate: grid.user.certificate.clone(),
        key: grid.admin.key.clone(),
        chain: vec![],
    };
    let mut client = grid.client(&frankenstein);
    match client.login() {
        Err(ClientError::Fault(f)) => {
            assert_eq!(f.code, codes::NOT_AUTHENTICATED);
            assert!(f.message.contains("signature"), "{}", f.message);
        }
        other => panic!("unexpected {other:?}"),
    }
    grid.cleanup();
}

#[test]
fn replayed_auth_challenge_is_scoped_to_its_timestamp() {
    let grid = TestGrid::start_with(GridOptions {
        seed: 0xF33D,
        ..Default::default()
    });
    let mut client = grid.client(&grid.user);
    // Capture a valid auth call, then replay it with a different (fresher)
    // timestamp: the signature no longer matches.
    let t = now();
    let signature = grid
        .user
        .key
        .sign(clarens::services::system::auth_challenge(t).as_bytes());
    // Legitimate call succeeds.
    let ok = client.call(
        "system.auth",
        vec![
            Value::Array(vec![Value::from(grid.user.certificate.to_text())]),
            Value::Int(t),
            Value::Bytes(signature.clone()),
        ],
    );
    assert!(ok.is_ok());
    // Same signature, shifted timestamp: rejected.
    let replay = client.call(
        "system.auth",
        vec![
            Value::Array(vec![Value::from(grid.user.certificate.to_text())]),
            Value::Int(t + 1),
            Value::Bytes(signature),
        ],
    );
    match replay {
        Err(ClientError::Fault(f)) => assert_eq!(f.code, codes::NOT_AUTHENTICATED),
        other => panic!("unexpected {other:?}"),
    }
    grid.cleanup();
}

#[test]
fn session_expiry_enforced_mid_use() {
    let grid = TestGrid::start_with(GridOptions {
        seed: 0xF44D,
        ..Default::default()
    });
    let mut client = grid.logged_in_client(&grid.user);
    assert!(client.call("system.whoami", vec![]).is_ok());
    // Expire every session behind the server's back (operator sweep).
    let swept = grid
        .core()
        .sessions
        .sweep(now() + grid.core().config.session_ttl + 1);
    assert!(swept >= 1);
    match client.call("system.whoami", vec![]) {
        Err(ClientError::Fault(f)) => assert_eq!(f.code, codes::NOT_AUTHENTICATED),
        other => panic!("unexpected {other:?}"),
    }
    grid.cleanup();
}

#[test]
fn oversized_rpc_parameters_rejected_cleanly() {
    let grid = TestGrid::start_with(GridOptions {
        seed: 0xF55D,
        ..Default::default()
    });
    let mut client = grid.logged_in_client(&grid.user);
    // file.read with a negative length / absurd offset.
    for (offset, nbytes) in [(-1i64, 10i64), (0, -5), (0, i64::MAX)] {
        match client.call(
            "file.read",
            vec![Value::from("/x"), Value::Int(offset), Value::Int(nbytes)],
        ) {
            Err(ClientError::Fault(f)) => assert_eq!(f.code, codes::BAD_PARAMS),
            other => panic!("unexpected {other:?}"),
        }
    }
    // Wrong parameter types.
    match client.call("echo.sum", vec![Value::from("a"), Value::from("b")]) {
        Err(ClientError::Fault(f)) => assert_eq!(f.code, codes::BAD_PARAMS),
        other => panic!("unexpected {other:?}"),
    }
    // Integer overflow in the service.
    match client.call("echo.sum", vec![Value::Int(i64::MAX), Value::Int(1)]) {
        Err(ClientError::Fault(f)) => assert_eq!(f.code, codes::BAD_PARAMS),
        other => panic!("unexpected {other:?}"),
    }
    grid.cleanup();
}

#[test]
fn torn_database_recovers_and_serves() {
    // Crash the DB mid-write (simulated torn tail), restart the server on
    // it, and verify sessions from before the tear still work.
    let db = std::env::temp_dir().join(format!("clarens-fi-torn-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&db);

    let session_id;
    {
        let grid = TestGrid::start_with(GridOptions {
            seed: 0xF66D,
            db_path: Some(db.clone()),
            ..Default::default()
        });
        let client = grid.logged_in_client(&grid.user);
        session_id = client.session_id().unwrap().to_owned();
        grid.core().store.sync().unwrap();
        grid.cleanup();
    }
    // Tear the log tail (a crash mid-append).
    let len = std::fs::metadata(&db).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&db).unwrap();
    f.set_len(len - 3).unwrap();
    drop(f);

    {
        let grid = TestGrid::start_with(GridOptions {
            seed: 0xF66D,
            db_path: Some(db.clone()),
            ..Default::default()
        });
        // The server comes up; the (earlier-synced) session survives the
        // tear because only the torn tail record is dropped.
        let mut client = grid.client(&grid.user);
        client.set_session(session_id);
        // Either the session survived (tail was a later record) or it was
        // in the torn record — both are *consistent* outcomes; what must
        // hold is that the server works and can mint new sessions.
        let _ = client.call("system.whoami", vec![]);
        let mut fresh = grid.logged_in_client(&grid.user);
        assert!(fresh.list_methods().unwrap().len() > 30);
        grid.cleanup();
    }
    let _ = std::fs::remove_file(&db);
}

#[test]
fn tls_handshake_garbage_then_valid_clients() {
    let grid = TestGrid::start_with(GridOptions {
        seed: 0xF77D,
        tls: true,
        ..Default::default()
    });
    // Garbage to the TLS port.
    for payload in [&b"GET / HTTP/1.1\r\n\r\n"[..], &[0xFF; 64][..], &[][..]] {
        let _ = raw_exchange(&grid.addr(), payload);
    }
    // Valid TLS client still works.
    let mut client = grid.tls_client(&grid.user);
    assert!(client.call("system.whoami", vec![]).is_ok());
    grid.cleanup();
}
