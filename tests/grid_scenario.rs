//! Whole-grid integration: two Clarens servers, a MonALISA-style station
//! network, and a client that *discovers* a file service through the
//! aggregated registry and then downloads data from the discovered server
//! — the paper's "location independent" service-call workflow (§2.4).

use std::sync::Arc;
use std::time::Duration;

use clarens::testkit::{now, GridOptions, TestGrid};
use clarens::ClarensClient;
use clarens_db::Store;
use monalisa_sim::station::wait_until;
use monalisa_sim::{
    DiscoveryAggregator, Publication, ServiceDescriptor, ServiceQuery, StationServer, UdpPublisher,
};

#[test]
fn discover_then_download_across_two_servers() {
    // Two independent Clarens "sites" with different data.
    let site_a = TestGrid::start_with(GridOptions {
        seed: 1,
        ..Default::default()
    });
    let site_b = TestGrid::start_with(GridOptions {
        seed: 2,
        ..Default::default()
    });
    site_a.write_file("/dataset/alpha.dat", b"alpha events");
    site_b.write_file("/dataset/beta.dat", b"beta events");

    // A station network; both sites publish their file service over UDP.
    let station = Arc::new(StationServer::spawn("s0", "127.0.0.1:0").unwrap());
    let publisher = UdpPublisher::new(vec![station.local_addr()]).unwrap();
    let t = now();
    for (grid, site_name) in [(&site_a, "site-a"), (&site_b, "site-b")] {
        publisher
            .publish(&Publication::Service(ServiceDescriptor {
                url: format!("http://{}", grid.addr()),
                server_dn: grid.server_credential.certificate.subject.to_string(),
                service: "file".into(),
                methods: vec!["file.read".into(), "file.ls".into()],
                attributes: [("site".to_string(), site_name.to_string())].into(),
                timestamp: t,
            }))
            .unwrap();
    }

    // A discovery server aggregates into its local DB.
    let aggregator =
        DiscoveryAggregator::new(vec![Arc::clone(&station)], Arc::new(Store::in_memory()));
    assert!(wait_until(Duration::from_secs(5), || aggregator
        .local_service_count()
        == 2));

    // The client asks discovery for a file service at site-b...
    let hits = aggregator
        .query_local(&ServiceQuery::by_method("file.read").with_attribute("site", "site-b"));
    assert_eq!(hits.len(), 1);
    let url = hits[0].url.clone();
    let addr = url.strip_prefix("http://").unwrap().to_owned();

    // ...binds to the discovered location at call time, authenticates, and
    // reads the remote file. (Credentials work across sites because both
    // grids share the process-wide test CA.)
    let mut client = ClarensClient::new(addr).with_credential(site_b.user.clone());
    client.login().unwrap();
    let bytes = client.file_read("/dataset/beta.dat", 0, 1024).unwrap();
    assert_eq!(bytes, b"beta events");

    // The other site's data is NOT on the discovered server.
    assert!(client.file_read("/dataset/alpha.dat", 0, 16).is_err());

    aggregator.shutdown();
    site_a.cleanup();
    site_b.cleanup();
}

#[test]
fn discovery_service_exposed_over_rpc() {
    // The discovery *service* (module `discovery`) wired into a Clarens
    // server: clients query the aggregated registry via RPC.
    let station = Arc::new(StationServer::spawn("s0", "127.0.0.1:0").unwrap());
    station.publish_local(Publication::Service(ServiceDescriptor {
        url: "http://tier2.example.edu/clarens".into(),
        server_dn: "/O=grid/CN=host".into(),
        service: "proof".into(),
        methods: vec!["proof.query".into()],
        attributes: Default::default(),
        timestamp: now(),
    }));

    // Build a core manually so we can attach the discovery service.
    let grid = TestGrid::start_with(GridOptions {
        seed: 3,
        ..Default::default()
    });
    let aggregator = Arc::new(DiscoveryAggregator::new(
        vec![Arc::clone(&station)],
        Arc::new(Store::in_memory()),
    ));
    assert!(wait_until(Duration::from_secs(5), || aggregator
        .local_service_count()
        == 1));
    grid.core()
        .register(Arc::new(clarens::services::DiscoveryService::new(
            Arc::clone(&aggregator),
            None,
        )));

    let mut client = grid.logged_in_client(&grid.user);
    let hits = client
        .call("discovery.find", vec![clarens_wire::Value::from("proof")])
        .unwrap();
    let hits = hits.as_array().unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(
        hits[0].get("url").unwrap().as_str().unwrap(),
        "http://tier2.example.edu/clarens"
    );

    // find_remote goes to the stations over TCP and agrees.
    let remote = client
        .call(
            "discovery.find_remote",
            vec![clarens_wire::Value::from("proof")],
        )
        .unwrap();
    assert_eq!(remote.as_array().unwrap().len(), 1);

    // status is visible.
    let status = client.call("discovery.status", vec![]).unwrap();
    assert_eq!(status.get("local_services").unwrap().as_int(), Some(1));

    grid.cleanup();
}
