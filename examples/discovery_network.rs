//! Dynamic service discovery over a MonALISA-style network (paper §2.4,
//! Figure 3): many Clarens "sites" publish their services over UDP to
//! station servers; a discovery server aggregates the network into a local
//! database and answers queries "far more rapidly by using the local
//! database" — which this example measures directly.
//!
//! ```sh
//! cargo run --example discovery_network
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use clarens_db::Store;
use monalisa_sim::station::wait_until;
use monalisa_sim::{
    DiscoveryAggregator, MonitorSample, Publication, ServiceDescriptor, ServiceQuery,
    StationServer, UdpPublisher,
};

fn now() -> i64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_secs() as i64
}

fn main() {
    // Three station servers (real UDP sockets on localhost).
    let stations: Vec<Arc<StationServer>> = (0..3)
        .map(|i| Arc::new(StationServer::spawn(format!("station-{i}"), "127.0.0.1:0").unwrap()))
        .collect();
    println!("Station servers:");
    for s in &stations {
        println!("  {} on udp://{}", s.name, s.local_addr());
    }

    // 30 grid sites, each publishing a few services to every station —
    // the MonALISA deployment the paper describes monitored "more than 90
    // sites"; we scale to 30 here for a quick run.
    let publisher = UdpPublisher::new(stations.iter().map(|s| s.local_addr()).collect()).unwrap();
    let t = now();
    let mut published = 0;
    for site in 0..30 {
        for service in ["file", "proof", "runjob"] {
            let descriptor = ServiceDescriptor {
                url: format!("http://tier2-{site:02}.example.edu:8080/clarens"),
                server_dn: format!("/O=grid/OU=Services/CN=host\\/tier2-{site:02}"),
                service: service.into(),
                methods: vec![format!("{service}.status"), format!("{service}.run")],
                attributes: [
                    ("site".to_string(), format!("site-{site:02}")),
                    (
                        "experiment".to_string(),
                        if site % 2 == 0 { "cms" } else { "atlas" }.to_string(),
                    ),
                ]
                .into(),
                timestamp: t,
            };
            publisher
                .publish(&Publication::Service(descriptor))
                .unwrap();
            published += 1;
        }
        // Each site also reports GLUE-style monitoring samples.
        for (key, value) in [("cpu_load", 0.42), ("free_disk_gb", 512.0)] {
            publisher
                .publish(&Publication::Sample(MonitorSample {
                    farm: format!("site-{site:02}"),
                    node: "node001".into(),
                    key: key.into(),
                    value,
                    timestamp: t,
                }))
                .unwrap();
        }
    }
    println!("\nPublished {published} service descriptors (plus monitoring samples) over UDP.");

    // The discovery server subscribes to all stations and mirrors into a
    // local DB (the JINI-client role of Figure 3).
    let store = Arc::new(Store::in_memory());
    let aggregator = DiscoveryAggregator::new(stations.clone(), Arc::clone(&store));
    let target = 90; // 30 sites x 3 services
    assert!(
        wait_until(Duration::from_secs(5), || aggregator.local_service_count()
            == target),
        "aggregation did not converge"
    );
    println!(
        "Discovery server aggregated {} service entries into its local database.",
        aggregator.local_service_count()
    );

    // Query both ways and compare.
    let query = ServiceQuery::by_service("proof").with_attribute("experiment", "cms");
    let local_hits = aggregator.query_local(&query);
    let remote_hits = aggregator.query_remote(&query);
    println!(
        "\nQuery: proof services of experiment=cms -> {} hits (local) / {} (remote fan-out)",
        local_hits.len(),
        remote_hits.len()
    );
    for hit in local_hits.iter().take(5) {
        println!("  {}", hit.url);
    }

    // The paper's speed claim, measured.
    const N: usize = 300;
    let t0 = Instant::now();
    for _ in 0..N {
        let _ = aggregator.query_local(&query);
    }
    let local_time = t0.elapsed();
    let t0 = Instant::now();
    for _ in 0..N {
        let _ = aggregator.query_remote(&query);
    }
    let remote_time = t0.elapsed();
    println!(
        "\n{N} queries: local DB {:.2} ms total, station fan-out {:.2} ms total ({:.1}x)",
        local_time.as_secs_f64() * 1e3,
        remote_time.as_secs_f64() * 1e3,
        remote_time.as_secs_f64() / local_time.as_secs_f64().max(1e-9),
    );

    // Stale services disappear after expiry, new publications re-appear —
    // "services will appear, disappear, and be moved in an unpredictable
    // manner".
    for station in &stations {
        station.expire(t + 3600, 60);
    }
    println!(
        "\nAfter a 1-hour expiry sweep the stations hold {} services (all stale).",
        stations.iter().map(|s| s.service_count()).sum::<usize>()
    );

    aggregator.shutdown();
    for station in stations {
        if let Ok(s) = Arc::try_unwrap(station) {
            s.shutdown()
        }
    }
    println!("Done.");
}
