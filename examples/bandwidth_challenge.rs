//! SuperComputing-2003 bandwidth-challenge style streaming (paper §1:
//! "Clarens servers generated a peak of 3.2 Gb/s disk-to-disk streams
//! consisting of CMS detector events"): several concurrent clients pull a
//! large event file over the streaming HTTP GET path, and the example
//! reports the aggregate disk-to-client throughput.
//!
//! ```sh
//! cargo run --release --example bandwidth_challenge
//! ```

use std::time::Instant;

use clarens::testkit::TestGrid;

const FILE_MB: usize = 32;
const STREAMS: usize = 4;

fn main() {
    let grid = TestGrid::start();
    println!("Clarens server at http://{}", grid.addr());

    // A synthetic CMS event file (deterministic pseudo-events).
    println!("Writing a {FILE_MB} MiB event file...");
    let mut data = Vec::with_capacity(FILE_MB * 1024 * 1024);
    let mut state = 0x2003u64;
    while data.len() < FILE_MB * 1024 * 1024 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        data.extend_from_slice(&state.to_le_bytes());
    }
    grid.write_file("/events/challenge.dat", &data);
    let expected_md5 = clarens_pki::md5::md5_hex(&data);

    // One session shared by all streams (like the SC03 demo's clients).
    let session = {
        let c = grid.logged_in_client(&grid.user);
        c.session_id().unwrap().to_owned()
    };

    println!("Starting {STREAMS} parallel GET streams...");
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for stream_no in 0..STREAMS {
        let addr = grid.addr();
        let session = session.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = clarens::ClarensClient::new(addr);
            client.set_session(session);
            let t = Instant::now();
            let bytes = client
                .http_get_file("/events/challenge.dat")
                .expect("download");
            (stream_no, bytes, t.elapsed())
        }));
    }

    let mut total_bytes = 0u64;
    for handle in handles {
        let (stream_no, bytes, elapsed) = handle.join().unwrap();
        let mbps = bytes.len() as f64 * 8.0 / elapsed.as_secs_f64() / 1e6;
        println!(
            "  stream {stream_no}: {} MiB in {:.2}s = {:.0} Mb/s",
            bytes.len() / (1024 * 1024),
            elapsed.as_secs_f64(),
            mbps
        );
        assert_eq!(clarens_pki::md5::md5_hex(&bytes), expected_md5, "integrity");
        total_bytes += bytes.len() as u64;
    }
    let wall = t0.elapsed();
    println!(
        "\nAggregate: {} MiB in {:.2}s = {:.2} Gb/s (integrity verified by MD5 on every stream)",
        total_bytes / (1024 * 1024),
        wall.as_secs_f64(),
        total_bytes as f64 * 8.0 / wall.as_secs_f64() / 1e9
    );
    println!(
        "(The 2003 demo's 3.2 Gb/s was across a transatlantic WAN fleet; this is one\n localhost server — the point is the zero-copy-style streaming path.)"
    );

    grid.cleanup();
}
