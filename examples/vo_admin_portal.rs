//! VO administration and portal walkthrough: builds the exact group tree
//! from the paper's Figure 2 (admins root; top-level A, B, C; second level
//! A.1, A.2, A.3), delegates administration, exercises the hierarchical
//! membership rules, and renders the portal pages a browser user would
//! see (paper §3).
//!
//! ```sh
//! cargo run --example vo_admin_portal
//! ```

use clarens::testkit::TestGrid;
use clarens_wire::Value;

fn main() {
    let grid = TestGrid::start();
    println!("Clarens server at http://{}\n", grid.addr());

    let mut admin = grid.logged_in_client(&grid.admin);
    let user_dn = grid.user.certificate.subject.to_string();

    // --- Figure 2: the group tree.
    println!("Building the Figure-2 VO tree:");
    for group in ["A", "B", "C", "A.1", "A.2", "A.3"] {
        admin
            .call("vo.create_group", vec![Value::from(group)])
            .unwrap();
        println!("  created group {group}");
    }

    // Delegate: uma becomes an admin of branch A.
    admin
        .call(
            "vo.add_admin",
            vec![Value::from("A"), Value::from(user_dn.clone())],
        )
        .unwrap();
    println!("\nDelegated: {user_dn} is now an admin of branch A");

    // The branch admin manages members of A.1 without being a site admin.
    let mut branch_admin = grid.logged_in_client(&grid.user);
    branch_admin
        .call(
            "vo.add_member",
            vec![
                Value::from("A.1"),
                Value::from("/O=cern.ch/OU=People/CN=collab"),
            ],
        )
        .unwrap();
    branch_admin
        .call(
            "vo.add_member",
            vec![Value::from("A"), Value::from("/O=fnal.gov/OU=People")],
        )
        .unwrap();
    println!("Branch admin added members to A and A.1");

    // ...but cannot touch branch B.
    match branch_admin.call(
        "vo.add_member",
        vec![Value::from("B"), Value::from("/O=x/CN=y")],
    ) {
        Err(e) => println!("Branch admin denied on B as expected: {e}"),
        Ok(_) => panic!("privilege isolation failed"),
    }

    // Hierarchical membership: a member of A is automatically a member of
    // A.1/A.2/A.3 (paper §2.1).
    println!("\nHierarchical membership (member entry /O=fnal.gov/OU=People on A):");
    for group in ["A", "A.1", "A.2", "A.3", "B"] {
        let is_member = branch_admin
            .call(
                "vo.is_member",
                vec![
                    Value::from(group),
                    Value::from("/O=fnal.gov/OU=People/CN=Some Physicist"),
                ],
            )
            .unwrap();
        println!("  member of {group:<4}? {is_member}");
    }

    // Inspect a group record.
    let info = admin.call("vo.group_info", vec![Value::from("A")]).unwrap();
    println!("\nvo.group_info(A) = {info}");

    // --- Portal pages (server-rendered HTML).
    println!("\nPortal pages as seen by the branch admin:");
    for page in ["/", "/portal/vo", "/portal/methods"] {
        let (status, html) = branch_admin.get_page(page).unwrap();
        let title = html
            .split("<h1>")
            .nth(1)
            .and_then(|rest| rest.split("</h1>").next())
            .unwrap_or("?");
        println!(
            "  GET {page:<18} -> {status} ({title}, {} bytes)",
            html.len()
        );
    }

    // The VO page contains the tree we built.
    let (_, vo_html) = branch_admin.get_page("/portal/vo").unwrap();
    for group in ["A.1", "A.2", "A.3"] {
        assert!(vo_html.contains(group), "portal missing group {group}");
    }
    println!("\nThe VO portal page lists all {} groups.", 7);

    grid.cleanup();
    println!("Done.");
}
