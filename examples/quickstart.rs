//! Quickstart: bring up a complete Clarens server (CA, credentials, core
//! services) and talk to it with the client API.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use clarens::testkit::TestGrid;
use clarens_wire::{Protocol, Value};

fn main() {
    // A TestGrid is a miniature deployment: a CA, a server credential, two
    // user credentials, and a running server with all built-in services
    // (system, echo, file, shell, proxy, vo, acl).
    println!("Starting a Clarens server (generating the PKI)...");
    let grid = TestGrid::start();
    println!("Server listening on http://{}", grid.addr());
    println!("Server DN: {}", grid.server_credential.certificate.subject);

    // Authenticate with a certificate: the client signs a challenge with
    // its key and presents its chain; the server returns a session id.
    let mut client = grid.client(&grid.user);
    let session = client.login().expect("certificate login");
    println!("\nLogged in as {}", grid.user.certificate.subject);
    println!("Session: {}...", &session[..16]);

    // The Figure-4 method: list every registered method.
    let methods = client.list_methods().expect("list_methods");
    println!("\nThe server exports {} methods, e.g.:", methods.len());
    for method in methods.iter().take(8) {
        println!("  {method}");
    }

    // Call a couple of services.
    let sum = client
        .call("echo.sum", vec![Value::Int(40), Value::Int(2)])
        .expect("echo.sum");
    println!("\necho.sum(40, 2) = {sum}");

    let who = client.call("system.whoami", vec![]).expect("whoami");
    println!("system.whoami() = {who}");

    // The same server speaks JSON-RPC and SOAP too.
    for protocol in [Protocol::JsonRpc, Protocol::Soap] {
        let mut alt = grid.client(&grid.user).with_protocol(protocol);
        alt.login().expect("login");
        let pong = alt.call("system.ping", vec![]).expect("ping");
        println!("system.ping() over {protocol:?} = {pong}");
    }

    // Use the file service.
    grid.write_file("/data/hello.txt", b"hello from the grid");
    let bytes = client
        .file_read("/data/hello.txt", 0, 1024)
        .expect("file.read");
    println!(
        "\nfile.read(/data/hello.txt) = {:?}",
        String::from_utf8_lossy(&bytes)
    );

    client.logout().expect("logout");
    println!("\nLogged out. Shutting down.");
    grid.cleanup();
}
