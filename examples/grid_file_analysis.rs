//! Distributed physics analysis scenario (the paper's motivating
//! workload): a Tier-2 site serves CMS event files; access is organized
//! through a virtual organization, and collaborators read remote data via
//! `file.read` and streamed HTTP GET — with ACLs keeping outsiders away
//! from the collaboration's datasets.
//!
//! ```sh
//! cargo run --example grid_file_analysis
//! ```

use clarens::acl::{Acl, FileAcl, Order};
use clarens::testkit::TestGrid;
use clarens_wire::Value;

fn main() {
    let grid = TestGrid::start();
    println!("Tier-2 Clarens server up at http://{}\n", grid.addr());

    // The site hosts CMS detector event files plus some public docs.
    let event_data: Vec<u8> = (0..200_000u32).flat_map(|i| i.to_le_bytes()).collect();
    grid.write_file("/data/cms/run2005A/events-001.dat", &event_data);
    grid.write_file("/data/cms/run2005A/events-002.dat", &event_data[..400_000]);
    grid.write_file("/public/README.txt", b"public documentation");

    // --- VO setup (paper SS2.1): the site admin creates the cms group and
    // admits everyone under the collaboration's CA People branch.
    let mut admin = grid.logged_in_client(&grid.admin);
    admin
        .call("vo.create_group", vec![Value::from("cms")])
        .unwrap();
    admin
        .call(
            "vo.add_member",
            vec![
                Value::from("cms"),
                Value::from("/O=doesciencegrid.org/OU=People"),
            ],
        )
        .unwrap();
    println!("VO group 'cms' created; members: /O=doesciencegrid.org/OU=People (DN prefix)");

    // --- ACL setup (paper SS2.2/SS2.3): /data/cms readable by the cms group
    // only; /public readable by anyone authenticated.
    // /data/cms: `deny,allow` with a deny-everyone entry plus an allow for
    // the cms group — members win the same-level conflict, everyone else is
    // explicitly denied at this level (so the permissive grant at "/" never
    // applies; see paper §2.2's lowest-level-first evaluation).
    let cms_only = Acl {
        order: Order::DenyAllow,
        allow_groups: vec!["cms".into()],
        deny_dns: vec!["*".into()],
        ..Default::default()
    };
    let core = grid.core();
    core.acl.set_file_acl(
        "/data/cms",
        &FileAcl {
            read: cms_only.clone(),
            write: cms_only,
        },
    );
    core.acl.set_file_acl(
        "/",
        &FileAcl {
            read: Acl::allow_dn("*"),
            write: Acl::default(),
        },
    );
    println!("File ACLs installed: /data/cms -> group cms only; / -> read for all\n");

    // --- A physicist (uma, under the People branch) analyses the data.
    let mut physicist = grid.logged_in_client(&grid.user);
    println!("Physicist {} logs in.", grid.user.certificate.subject);

    let listing = physicist
        .call("file.ls", vec![Value::from("/data/cms/run2005A")])
        .unwrap();
    println!("file.ls(/data/cms/run2005A):");
    for entry in listing.as_array().unwrap() {
        println!(
            "  {:<18} {:>9} bytes",
            entry.get("name").unwrap().as_str().unwrap(),
            entry.get("size").unwrap().as_int().unwrap()
        );
    }

    // Chunked analysis read: pull the first 64 KiB in 16 KiB chunks and
    // "reconstruct" a histogram (here: a checksum per chunk).
    println!("\nReading events in 16 KiB chunks via file.read:");
    let mut offset = 0i64;
    for chunk_no in 0..4 {
        let chunk = physicist
            .file_read("/data/cms/run2005A/events-001.dat", offset, 16 * 1024)
            .unwrap();
        let sum: u64 = chunk.iter().map(|&b| b as u64).sum();
        println!("  chunk {chunk_no}: {} bytes, byte-sum {sum}", chunk.len());
        offset += chunk.len() as i64;
    }

    // Integrity check with file.md5 (paper SS2.3) against a local hash.
    let remote_md5 = physicist
        .call(
            "file.md5",
            vec![Value::from("/data/cms/run2005A/events-001.dat")],
        )
        .unwrap();
    let local_md5 = clarens_pki::md5::md5_hex(&event_data);
    println!(
        "\nfile.md5 = {} (matches local: {})",
        remote_md5.as_str().unwrap(),
        remote_md5.as_str().unwrap() == local_md5
    );

    // Bulk download over the streaming HTTP GET path.
    let t0 = std::time::Instant::now();
    let downloaded = physicist
        .http_get_file("/data/cms/run2005A/events-001.dat")
        .unwrap();
    let dt = t0.elapsed();
    println!(
        "HTTP GET download: {} bytes in {:.1} ms ({:.1} MiB/s)",
        downloaded.len(),
        dt.as_secs_f64() * 1e3,
        downloaded.len() as f64 / dt.as_secs_f64() / (1024.0 * 1024.0)
    );
    assert_eq!(downloaded, event_data);

    // --- An outsider (a service certificate, outside the People branch)
    // is kept out of the collaboration data but can read /public.
    let mut outsider = grid.logged_in_client(&grid.server_credential);
    println!(
        "\nOutsider {} logs in.",
        grid.server_credential.certificate.subject
    );
    match outsider.file_read("/data/cms/run2005A/events-001.dat", 0, 16) {
        Err(e) => println!("  /data/cms read denied as expected: {e}"),
        Ok(_) => panic!("ACL failed to protect collaboration data!"),
    }
    let public = outsider.file_read("/public/README.txt", 0, 1024).unwrap();
    println!(
        "  /public read allowed: {:?}",
        String::from_utf8_lossy(&public)
    );

    grid.cleanup();
    println!("\nDone.");
}
