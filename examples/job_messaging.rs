//! Asynchronous job↔analyst messaging — the paper's §6 future-work IM
//! architecture, implemented as an extension service.
//!
//! A batch "job" running behind NAT cannot accept connections, but it can
//! make outbound HTTP calls; so it reports progress into its analyst's
//! server-side mailbox and polls its own mailbox for steering commands.
//!
//! ```sh
//! cargo run --example job_messaging
//! ```

use clarens::testkit::TestGrid;
use clarens_wire::Value;

fn main() {
    let grid = TestGrid::start();
    println!("Clarens server at http://{}\n", grid.addr());

    let analyst_dn = grid.admin.certificate.subject.to_string();
    let job_dn = grid.user.certificate.subject.to_string();

    // The "job": a thread that processes work units, reports progress via
    // im.send, and polls for steering between units.
    let job_addr = grid.addr();
    let job_credential = grid.user.clone();
    let analyst_dn_for_job = analyst_dn.clone();
    let job = std::thread::spawn(move || {
        let mut client = clarens::ClarensClient::new(job_addr).with_credential(job_credential);
        client.login().expect("job login");
        for unit in 0..20 {
            // "Process" a work unit.
            std::thread::sleep(std::time::Duration::from_millis(30));
            client
                .call(
                    "im.send",
                    vec![
                        Value::from(analyst_dn_for_job.clone()),
                        Value::from(format!("unit {unit}: 10k events reconstructed")),
                    ],
                )
                .expect("progress report");
            // Check for steering.
            let inbox = client.call("im.poll", vec![Value::Int(10)]).expect("poll");
            for message in inbox.as_array().unwrap() {
                let body = message.get("body").unwrap().as_str().unwrap();
                println!("  [job] received steering: {body:?}");
                if body == "stop" {
                    client
                        .call(
                            "im.send",
                            vec![
                                Value::from(analyst_dn_for_job.clone()),
                                Value::from(format!("stopped after unit {unit}")),
                            ],
                        )
                        .expect("final report");
                    return unit;
                }
            }
        }
        19
    });

    // The "analyst": watches progress, then tells the job to stop.
    let mut analyst = grid.logged_in_client(&grid.admin);
    let mut seen = 0;
    while seen < 5 {
        let inbox = analyst.call("im.poll", vec![Value::Int(50)]).unwrap();
        for message in inbox.as_array().unwrap() {
            println!(
                "[analyst] {}: {}",
                message
                    .get("from")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .rsplit('=')
                    .next()
                    .unwrap(),
                message.get("body").unwrap().as_str().unwrap()
            );
            seen += 1;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    println!("[analyst] five progress reports seen — sending 'stop'");
    analyst
        .call("im.send", vec![Value::from(job_dn), Value::from("stop")])
        .unwrap();

    let stopped_at = job.join().unwrap();
    // Drain the final acknowledgement.
    loop {
        let inbox = analyst.call("im.poll", vec![Value::Int(50)]).unwrap();
        let messages = inbox.as_array().unwrap().to_vec();
        let done = messages.iter().any(|m| {
            m.get("body")
                .unwrap()
                .as_str()
                .unwrap()
                .starts_with("stopped after")
        });
        for message in &messages {
            println!(
                "[analyst] {}",
                message.get("body").unwrap().as_str().unwrap()
            );
        }
        if done {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    println!("\nJob stopped at unit {stopped_at} by asynchronous steering. Done.");
    grid.cleanup();
}
